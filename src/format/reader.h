// PixelsReader: opens a .pxl object, exposes schema and stats, and scans
// projected columns with zone-map-based row-group skipping.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "common/thread_pool.h"
#include "format/batch.h"
#include "format/file_format.h"
#include "storage/buffer_cache.h"
#include "storage/storage.h"

namespace pixels {

/// A simple comparison predicate pushed into the scan for row-group
/// pruning. Conjunction semantics across a vector of these.
struct ScanPredicate {
  std::string column;
  std::string op;  // "=", "<", "<=", ">", ">=", "<>"
  Value literal;
};

/// Scan configuration: which columns to materialize (empty = all) and
/// which predicates to use for pruning.
struct ScanOptions {
  std::vector<std::string> columns;
  std::vector<ScanPredicate> predicates;
};

/// Counters describing one scan, fed into billing ($/TB-scan) and the
/// storage benches.
struct ScanStats {
  uint64_t row_groups_total = 0;
  uint64_t row_groups_read = 0;
  uint64_t rows_read = 0;
  /// Encoded chunk bytes the scan consumed — the $/TB-scan billing unit.
  /// A chunk served from the buffer cache bills exactly like one fetched
  /// from storage, so cold and warm runs produce identical bills.
  uint64_t bytes_scanned = 0;
  /// Chunk reads served from / missed in the buffer cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  void Merge(const ScanStats& other) {
    row_groups_total += other.row_groups_total;
    row_groups_read += other.row_groups_read;
    rows_read += other.rows_read;
    bytes_scanned += other.bytes_scanned;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }
};

/// Random-access reader over one Pixels file.
class PixelsReader {
 public:
  /// Opens a file with default I/O options: consults the process-wide
  /// footer cache, and on a miss fetches trailer + footer in a single
  /// speculative tail read (a second read only for oversized footers).
  static Result<std::unique_ptr<PixelsReader>> Open(Storage* storage,
                                                    const std::string& path);

  /// Opens with explicit I/O policy (coalescing gap, chunk cache, footer
  /// cache opt-out).
  static Result<std::unique_ptr<PixelsReader>> Open(Storage* storage,
                                                    const std::string& path,
                                                    const IoOptions& io);

  const FileSchema& schema() const { return footer_->schema; }
  uint64_t NumRows() const { return footer_->NumRows(); }
  size_t NumRowGroups() const { return footer_->row_groups.size(); }

  /// File-level stats of one column (merged across row groups).
  Result<ColumnStats> FileStats(const std::string& column) const;

  /// Reads one row group with projection; `options.predicates` are NOT
  /// applied row-wise here — only used by `Scan` for pruning. Accumulates
  /// fetched chunk bytes into `scan_stats()`.
  Result<RowBatchPtr> ReadRowGroup(size_t index,
                                   const std::vector<std::string>& columns);

  /// Thread-safe variant: accumulates into the caller-supplied `stats`
  /// instead of the reader's internal counters. Concurrent calls with
  /// distinct `stats` objects are safe (this is the morsel entry point of
  /// the parallel scan path). Projected chunks missing from the chunk
  /// cache are fetched in one gap-coalesced `ReadRanges` call.
  Result<RowBatchPtr> ReadRowGroup(size_t index,
                                   const std::vector<std::string>& columns,
                                   ScanStats* stats) const;

  /// Fused decode+filter variant of the thread-safe ReadRowGroup: lowers
  /// the comparison `predicates` that name projected columns into typed
  /// predicates, evaluates them on the encoded chunks (once per
  /// dictionary entry / RLE run), and materializes only the selected
  /// rows. Predicates with unsupported operators or non-projected columns
  /// are ignored (the executor's retained Filter keeps results exact).
  /// Billing is identical to ReadRowGroup: every projected chunk's bytes
  /// are charged whether or not any of its rows survive.
  Result<RowBatchPtr> ReadRowGroupFiltered(
      size_t index, const std::vector<std::string>& columns,
      const std::vector<ScanPredicate>& predicates, ScanStats* stats) const;

  /// Fetches the projected chunks of one row group into the chunk cache
  /// (one coalesced read for the misses) without decoding and without
  /// billing `bytes_scanned` — billing accrues when a consumer decodes
  /// the chunk. No-op unless the reader was opened with a chunk cache.
  /// Thread-safe; the streaming scan issues this window-ahead on the
  /// shared pool.
  Status PrefetchRowGroup(size_t index,
                          const std::vector<std::string>& columns) const;

  /// Indices of row groups whose zone maps may match `predicates`, in
  /// file order. Pure metadata; thread-safe.
  std::vector<size_t> PruneRowGroups(
      const std::vector<ScanPredicate>& predicates) const;

  /// Zone-map check for a single row group (false for an out-of-range
  /// index). Pure metadata; thread-safe. Used by runtime-filter morsel
  /// pruning, where the min/max of a published join-key filter becomes a
  /// pair of range predicates.
  bool RowGroupMayMatch(size_t index,
                        const std::vector<ScanPredicate>& predicates) const;

  /// Encoded bytes ReadRowGroup would bill for this row group under the
  /// given projection (sum of projected chunk lengths). Pure metadata;
  /// thread-safe. Lets callers that skip a row group account for the
  /// billed bytes they avoided.
  Result<uint64_t> RowGroupProjectedBytes(
      size_t index, const std::vector<std::string>& columns) const;

  /// Rows in one row group (0 for an out-of-range index).
  uint64_t RowGroupRows(size_t index) const;

  /// Scans the whole file: prunes row groups whose zone maps cannot match
  /// the predicates, reads remaining ones with projection. Returns the
  /// surviving batches; exact filtering is the executor's job.
  Result<std::vector<RowBatchPtr>> Scan(const ScanOptions& options);

  /// Parallel scan: surviving row groups are decoded concurrently on
  /// `pool` (one morsel per row group), up to `parallelism` at a time
  /// (<= 1 degenerates to the serial scan). Batch order and scan_stats()
  /// totals are identical to the serial scan.
  Result<std::vector<RowBatchPtr>> Scan(const ScanOptions& options,
                                        ThreadPool* pool, int parallelism);

  /// Stats of the most recent Scan.
  const ScanStats& scan_stats() const { return scan_stats_; }

 private:
  PixelsReader(Storage* storage, std::string path,
               std::shared_ptr<const FileFooter> footer, uint64_t file_size,
               const IoOptions& io);

  Result<int> ColumnIndex(const std::string& name) const;
  Result<std::vector<int>> ResolveColumns(
      const std::vector<std::string>& columns) const;
  /// Chunk buffers of one row group's projected columns, cache-aware and
  /// gap-coalesced; `stats` (optional) gets hit/miss counts.
  Result<std::vector<BufferCache::Buffer>> FetchChunks(
      const RowGroupMeta& rg, const std::vector<int>& col_indexes,
      ScanStats* stats) const;
  bool RowGroupMayMatch(const RowGroupMeta& rg,
                        const std::vector<ScanPredicate>& predicates) const;

  Storage* storage_;
  std::string path_;
  std::shared_ptr<const FileFooter> footer_;
  uint64_t file_size_;
  IoOptions io_;
  /// Column name -> schema position, built once at Open so per-chunk
  /// lookups are O(1) even under the paper's thousand-column tables.
  std::unordered_map<std::string, int> column_index_;
  ScanStats scan_stats_;  // not touched by the const/thread-safe paths
};

}  // namespace pixels
