#include "format/encoding.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace pixels {

namespace {

void WriteValidity(const ColumnVector& col, ByteWriter* out) {
  const size_t n = col.size();
  uint8_t byte = 0;
  int bit = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!col.IsNull(i)) byte |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      out->PutU8(byte);
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) out->PutU8(byte);
}

Result<std::vector<uint8_t>> ReadValidity(ByteReader* in, size_t num_rows) {
  std::vector<uint8_t> valid(num_rows, 0);
  const size_t num_bytes = (num_rows + 7) / 8;
  for (size_t b = 0; b < num_bytes; ++b) {
    PIXELS_ASSIGN_OR_RETURN(uint8_t byte, in->GetU8());
    for (int bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + static_cast<size_t>(bit);
      if (i >= num_rows) break;
      valid[i] = (byte >> bit) & 1;
    }
  }
  return valid;
}

/// True when the validity vector marks every row non-null — the common
/// case, where run-oriented codecs can skip whole runs at once.
bool AllValid(const std::vector<uint8_t>& valid) {
  return valid.empty() ||
         std::memchr(valid.data(), 0, valid.size()) == nullptr;
}

// --- plain ---

Status EncodePlain(const ColumnVector& col, ByteWriter* out) {
  WriteValidity(col, out);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    switch (col.type()) {
      case TypeId::kBool:
        out->PutU8(col.GetBool(i) ? 1 : 0);
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        out->PutI32(static_cast<int32_t>(col.GetInt(i)));
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        out->PutI64(col.GetInt(i));
        break;
      case TypeId::kDouble:
        out->PutF64(col.GetDouble(i));
        break;
      case TypeId::kString:
        out->PutString(col.GetString(i));
        break;
    }
  }
  return Status::OK();
}

Result<ColumnVectorPtr> DecodePlain(TypeId type, ByteReader* in,
                                    size_t num_rows) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  auto col = MakeVector(type);
  col->Reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) {
      col->AppendNull();
      continue;
    }
    switch (type) {
      case TypeId::kBool: {
        PIXELS_ASSIGN_OR_RETURN(uint8_t v, in->GetU8());
        col->AppendBool(v != 0);
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        PIXELS_ASSIGN_OR_RETURN(int32_t v, in->GetI32());
        col->AppendInt(v);
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
        col->AppendInt(v);
        break;
      }
      case TypeId::kDouble: {
        PIXELS_ASSIGN_OR_RETURN(double v, in->GetF64());
        col->AppendDouble(v);
        break;
      }
      case TypeId::kString: {
        PIXELS_ASSIGN_OR_RETURN(std::string v, in->GetString());
        col->AppendString(std::move(v));
        break;
      }
    }
  }
  return col;
}

// --- run length (integer-like) ---

Status EncodeRunLength(const ColumnVector& col, ByteWriter* out) {
  WriteValidity(col, out);
  // Collect non-null values, then emit (value, run) pairs.
  std::vector<int64_t> vals;
  vals.reserve(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) vals.push_back(col.GetInt(i));
  }
  out->PutVarint(vals.size());
  size_t i = 0;
  while (i < vals.size()) {
    size_t j = i + 1;
    while (j < vals.size() && vals[j] == vals[i]) ++j;
    out->PutSignedVarint(vals[i]);
    out->PutVarint(j - i);
    i = j;
  }
  return Status::OK();
}

Result<ColumnVectorPtr> DecodeRunLength(TypeId type, ByteReader* in,
                                        size_t num_rows) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  std::vector<int64_t> vals;
  vals.reserve(num_vals);
  while (vals.size() < num_vals) {
    PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
    PIXELS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
    if (run == 0 || vals.size() + run > num_vals) {
      return Status::Corruption("rle: bad run length");
    }
    vals.insert(vals.end(), run, v);
  }
  auto col = MakeVector(type);
  col->Reserve(num_rows);
  size_t next = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) {
      col->AppendNull();
    } else {
      if (next >= vals.size()) return Status::Corruption("rle: value underflow");
      if (type == TypeId::kBool) {
        col->AppendBool(vals[next++] != 0);
      } else {
        col->AppendInt(vals[next++]);
      }
    }
  }
  return col;
}

// --- delta (integer-like) ---

Status EncodeDelta(const ColumnVector& col, ByteWriter* out) {
  WriteValidity(col, out);
  int64_t prev = 0;
  bool first = true;
  uint64_t count = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) ++count;
  }
  out->PutVarint(count);
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    int64_t v = col.GetInt(i);
    if (first) {
      out->PutSignedVarint(v);
      first = false;
    } else {
      out->PutSignedVarint(v - prev);
    }
    prev = v;
  }
  return Status::OK();
}

Result<ColumnVectorPtr> DecodeDelta(TypeId type, ByteReader* in,
                                    size_t num_rows) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  auto col = MakeVector(type);
  col->Reserve(num_rows);
  int64_t prev = 0;
  bool first = true;
  uint64_t consumed = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) {
      col->AppendNull();
      continue;
    }
    if (consumed >= num_vals) return Status::Corruption("delta: value underflow");
    PIXELS_ASSIGN_OR_RETURN(int64_t d, in->GetSignedVarint());
    int64_t v = first ? d : prev + d;
    first = false;
    prev = v;
    ++consumed;
    if (type == TypeId::kBool) {
      col->AppendBool(v != 0);
    } else {
      col->AppendInt(v);
    }
  }
  return col;
}

// --- dictionary (strings) ---

Status EncodeDictionary(const ColumnVector& col, ByteWriter* out) {
  WriteValidity(col, out);
  std::map<std::string, uint32_t> dict;
  std::vector<const std::string*> order;
  std::vector<uint32_t> codes;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    const std::string& s = col.GetString(i);
    auto [it, inserted] = dict.emplace(s, static_cast<uint32_t>(dict.size()));
    if (inserted) order.push_back(&it->first);
    codes.push_back(it->second);
  }
  out->PutVarint(order.size());
  for (const auto* s : order) out->PutString(*s);
  out->PutVarint(codes.size());
  for (uint32_t c : codes) out->PutVarint(c);
  return Status::OK();
}

Result<ColumnVectorPtr> DecodeDictionary(TypeId type, ByteReader* in,
                                         size_t num_rows) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t dict_size, in->GetVarint());
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    PIXELS_ASSIGN_OR_RETURN(std::string s, in->GetString());
    dict.push_back(std::move(s));
  }
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_codes, in->GetVarint());
  auto col = MakeVector(type);
  col->Reserve(num_rows);
  uint64_t consumed = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) {
      col->AppendNull();
      continue;
    }
    if (consumed >= num_codes) return Status::Corruption("dict: code underflow");
    PIXELS_ASSIGN_OR_RETURN(uint64_t code, in->GetVarint());
    ++consumed;
    if (code >= dict.size()) return Status::Corruption("dict: code out of range");
    col->AppendString(dict[code]);
  }
  return col;
}

// --- bit-packed (bools) ---

Status EncodeBitPacked(const ColumnVector& col, ByteWriter* out) {
  WriteValidity(col, out);
  uint8_t byte = 0;
  int bit = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    bool v = !col.IsNull(i) && col.GetBool(i);
    if (v) byte |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      out->PutU8(byte);
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) out->PutU8(byte);
  return Status::OK();
}

Result<ColumnVectorPtr> DecodeBitPacked(TypeId type, ByteReader* in,
                                        size_t num_rows) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  const size_t num_bytes = (num_rows + 7) / 8;
  std::vector<uint8_t> bits(num_rows, 0);
  for (size_t b = 0; b < num_bytes; ++b) {
    PIXELS_ASSIGN_OR_RETURN(uint8_t byte, in->GetU8());
    for (int bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + static_cast<size_t>(bit);
      if (i >= num_rows) break;
      bits[i] = (byte >> bit) & 1;
    }
  }
  auto col = MakeVector(type);
  col->Reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) {
      col->AppendNull();
    } else {
      col->AppendBool(bits[i] != 0);
    }
  }
  return col;
}

}  // namespace

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kRunLength:
      return "rle";
    case Encoding::kDelta:
      return "delta";
    case Encoding::kDictionary:
      return "dictionary";
    case Encoding::kBitPacked:
      return "bitpacked";
  }
  return "unknown";
}

bool EncodingSupports(Encoding e, TypeId t) {
  switch (e) {
    case Encoding::kPlain:
      return true;
    case Encoding::kRunLength:
    case Encoding::kDelta:
      return IsIntegerLike(t);
    case Encoding::kDictionary:
      return t == TypeId::kString;
    case Encoding::kBitPacked:
      return t == TypeId::kBool;
  }
  return false;
}

Status EncodeColumn(const ColumnVector& col, Encoding encoding,
                    ByteWriter* out) {
  if (!EncodingSupports(encoding, col.type())) {
    return Status::InvalidArgument(std::string("encoding ") +
                                   EncodingName(encoding) +
                                   " does not support type " +
                                   TypeName(col.type()));
  }
  switch (encoding) {
    case Encoding::kPlain:
      return EncodePlain(col, out);
    case Encoding::kRunLength:
      return EncodeRunLength(col, out);
    case Encoding::kDelta:
      return EncodeDelta(col, out);
    case Encoding::kDictionary:
      return EncodeDictionary(col, out);
    case Encoding::kBitPacked:
      return EncodeBitPacked(col, out);
  }
  return Status::InvalidArgument("unknown encoding");
}

Result<ColumnVectorPtr> DecodeColumn(TypeId type, Encoding encoding,
                                     ByteReader* in, size_t num_rows) {
  if (!EncodingSupports(encoding, type)) {
    return Status::Corruption(std::string("encoding ") + EncodingName(encoding) +
                              " invalid for type " + TypeName(type));
  }
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(type, in, num_rows);
    case Encoding::kRunLength:
      return DecodeRunLength(type, in, num_rows);
    case Encoding::kDelta:
      return DecodeDelta(type, in, num_rows);
    case Encoding::kDictionary:
      return DecodeDictionary(type, in, num_rows);
    case Encoding::kBitPacked:
      return DecodeBitPacked(type, in, num_rows);
  }
  return Status::Corruption("unknown encoding tag");
}

Encoding ChooseEncoding(const ColumnVector& col) {
  if (col.type() == TypeId::kBool) return Encoding::kBitPacked;
  if (col.type() == TypeId::kString) {
    // Dictionary-encode when the column repeats values.
    std::map<std::string, int> seen;
    size_t sampled = 0;
    for (size_t i = 0; i < col.size() && sampled < 512; ++i) {
      if (col.IsNull(i)) continue;
      ++sampled;
      seen[col.GetString(i)]++;
    }
    if (sampled >= 16 && seen.size() * 2 <= sampled) return Encoding::kDictionary;
    return Encoding::kPlain;
  }
  if (col.type() == TypeId::kDouble) return Encoding::kPlain;
  // Integer-like: measure run-length and sortedness on a prefix.
  size_t runs = 0, ascending = 0, total = 0;
  int64_t prev = 0;
  bool have_prev = false;
  for (size_t i = 0; i < col.size() && total < 1024; ++i) {
    if (col.IsNull(i)) continue;
    int64_t v = col.GetInt(i);
    if (have_prev) {
      ++total;
      if (v == prev) ++runs;
      if (v >= prev) ++ascending;
    }
    prev = v;
    have_prev = true;
  }
  if (total >= 8) {
    if (runs * 2 >= total) return Encoding::kRunLength;
    if (ascending * 10 >= total * 9) return Encoding::kDelta;
  }
  // Small-magnitude integers still benefit from delta+varint; default plain.
  return Encoding::kPlain;
}

namespace {

bool MatchAllInt(const std::vector<TypedPredicate>& preds, int64_t v) {
  for (const auto& p : preds) {
    if (!p.MatchInt(v)) return false;
  }
  return true;
}

bool MatchAllDouble(const std::vector<TypedPredicate>& preds, double v) {
  for (const auto& p : preds) {
    if (!p.MatchDouble(v)) return false;
  }
  return true;
}

bool MatchAllString(const std::vector<TypedPredicate>& preds,
                    std::string_view v) {
  for (const auto& p : preds) {
    if (!p.MatchString(v)) return false;
  }
  return true;
}

Result<std::vector<uint32_t>> FilterPlain(
    TypeId type, ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) continue;
    bool match = false;
    switch (type) {
      case TypeId::kBool: {
        PIXELS_ASSIGN_OR_RETURN(uint8_t v, in->GetU8());
        match = MatchAllInt(preds, v != 0 ? 1 : 0);
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        PIXELS_ASSIGN_OR_RETURN(int32_t v, in->GetI32());
        match = MatchAllInt(preds, v);
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
        match = MatchAllInt(preds, v);
        break;
      }
      case TypeId::kDouble: {
        PIXELS_ASSIGN_OR_RETURN(double v, in->GetF64());
        match = MatchAllDouble(preds, v);
        break;
      }
      case TypeId::kString: {
        // Length-prefixed bytes; test through a view, no allocation.
        PIXELS_ASSIGN_OR_RETURN(uint64_t len, in->GetVarint());
        PIXELS_ASSIGN_OR_RETURN(std::string_view v,
                                in->GetView(static_cast<size_t>(len)));
        match = MatchAllString(preds, v);
        break;
      }
    }
    if (match) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

Result<std::vector<uint32_t>> FilterRunLength(
    ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  std::vector<uint32_t> sel;
  // Fast path (no nulls): rows and values are one-to-one, so each run is
  // one predicate evaluation followed by a bulk append (match) or a pure
  // skip (no match) of the whole row range — no per-row state machine.
  if (AllValid(valid)) {
    uint64_t consumed = 0;
    while (consumed < num_vals && consumed < num_rows) {
      PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
      PIXELS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
      if (run == 0 || consumed + run > num_vals) {
        return Status::Corruption("rle: bad run length");
      }
      const uint64_t start = consumed;
      consumed += run;
      if (!MatchAllInt(preds, v)) continue;
      const uint64_t run_end = std::min<uint64_t>(consumed, num_rows);
      for (uint64_t i = start; i < run_end; ++i) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    if (consumed < num_rows) {
      return Status::Corruption("rle: value underflow");
    }
    return sel;
  }
  uint64_t consumed = 0;
  uint64_t remaining_in_run = 0;
  bool run_match = false;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) continue;
    if (remaining_in_run == 0) {
      // One predicate evaluation per run, however long.
      PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
      PIXELS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
      if (run == 0 || consumed + run > num_vals) {
        return Status::Corruption("rle: bad run length");
      }
      consumed += run;
      remaining_in_run = run;
      run_match = MatchAllInt(preds, v);
    }
    --remaining_in_run;
    if (run_match) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

Result<std::vector<uint32_t>> FilterDelta(
    ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  std::vector<uint32_t> sel;
  int64_t prev = 0;
  bool first = true;
  uint64_t consumed = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) continue;
    if (consumed >= num_vals) return Status::Corruption("delta: value underflow");
    PIXELS_ASSIGN_OR_RETURN(int64_t d, in->GetSignedVarint());
    int64_t v = first ? d : prev + d;
    first = false;
    prev = v;
    ++consumed;
    if (MatchAllInt(preds, v)) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

Result<std::vector<uint32_t>> FilterDictionary(
    ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t dict_size, in->GetVarint());
  // One predicate evaluation per distinct entry; rows test a bit.
  std::vector<uint8_t> entry_match(dict_size, 0);
  for (uint64_t d = 0; d < dict_size; ++d) {
    PIXELS_ASSIGN_OR_RETURN(uint64_t len, in->GetVarint());
    PIXELS_ASSIGN_OR_RETURN(std::string_view s,
                            in->GetView(static_cast<size_t>(len)));
    entry_match[d] = MatchAllString(preds, s) ? 1 : 0;
  }
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_codes, in->GetVarint());
  std::vector<uint32_t> sel;
  uint64_t consumed = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (!valid[i]) continue;
    if (consumed >= num_codes) return Status::Corruption("dict: code underflow");
    PIXELS_ASSIGN_OR_RETURN(uint64_t code, in->GetVarint());
    ++consumed;
    if (code >= dict_size) return Status::Corruption("dict: code out of range");
    if (entry_match[code]) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

Result<std::vector<uint32_t>> FilterBitPacked(
    ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  // Two predicate evaluations total: once for false, once for true.
  const bool match0 = MatchAllInt(preds, 0);
  const bool match1 = MatchAllInt(preds, 1);
  std::vector<uint32_t> sel;
  const size_t num_bytes = (num_rows + 7) / 8;
  for (size_t b = 0; b < num_bytes; ++b) {
    PIXELS_ASSIGN_OR_RETURN(uint8_t byte, in->GetU8());
    for (int bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + static_cast<size_t>(bit);
      if (i >= num_rows) break;
      if (!valid[i]) continue;
      if (((byte >> bit) & 1) ? match1 : match0) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return sel;
}

// --- selected decode: materialize only chosen rows ---

Result<ColumnVectorPtr> DecodePlainSelected(TypeId type, ByteReader* in,
                                            size_t num_rows,
                                            const std::vector<uint32_t>& sel) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  auto col = MakeVector(type);
  col->Reserve(sel.size());
  size_t sp = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (sp >= sel.size()) break;  // reader position is not reused afterwards
    const bool want = sel[sp] == i;
    if (!valid[i]) {
      // The selection may come from predicates on other columns, so a
      // selected row can still be null here.
      if (want) {
        col->AppendNull();
        ++sp;
      }
      continue;
    }
    switch (type) {
      case TypeId::kBool: {
        if (want) {
          PIXELS_ASSIGN_OR_RETURN(uint8_t v, in->GetU8());
          col->AppendBool(v != 0);
        } else {
          PIXELS_RETURN_NOT_OK(in->Skip(1));
        }
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        if (want) {
          PIXELS_ASSIGN_OR_RETURN(int32_t v, in->GetI32());
          col->AppendInt(v);
        } else {
          PIXELS_RETURN_NOT_OK(in->Skip(4));
        }
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        if (want) {
          PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
          col->AppendInt(v);
        } else {
          PIXELS_RETURN_NOT_OK(in->Skip(8));
        }
        break;
      }
      case TypeId::kDouble: {
        if (want) {
          PIXELS_ASSIGN_OR_RETURN(double v, in->GetF64());
          col->AppendDouble(v);
        } else {
          PIXELS_RETURN_NOT_OK(in->Skip(8));
        }
        break;
      }
      case TypeId::kString: {
        PIXELS_ASSIGN_OR_RETURN(uint64_t len, in->GetVarint());
        if (want) {
          PIXELS_ASSIGN_OR_RETURN(std::string_view v,
                                  in->GetView(static_cast<size_t>(len)));
          col->AppendString(std::string(v));
        } else {
          PIXELS_RETURN_NOT_OK(in->Skip(static_cast<size_t>(len)));
        }
        break;
      }
    }
    if (want) ++sp;
  }
  if (sp != sel.size()) {
    return Status::Corruption("selected decode: selection out of range");
  }
  return col;
}

Result<ColumnVectorPtr> DecodeRunLengthSelected(
    TypeId type, ByteReader* in, size_t num_rows,
    const std::vector<uint32_t>& sel) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  auto col = MakeVector(type);
  col->Reserve(sel.size());
  // Fast path (no nulls): walk runs and intersect each with the sorted
  // selection — runs containing no selected row cost one varint pair,
  // and the loop stops as soon as the selection is exhausted.
  if (AllValid(valid)) {
    uint64_t consumed = 0;
    size_t spf = 0;
    while (spf < sel.size() && consumed < num_vals && consumed < num_rows) {
      PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
      PIXELS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
      if (run == 0 || consumed + run > num_vals) {
        return Status::Corruption("rle: bad run length");
      }
      consumed += run;
      const uint64_t run_end = std::min<uint64_t>(consumed, num_rows);
      while (spf < sel.size() && sel[spf] < run_end) {
        if (type == TypeId::kBool) {
          col->AppendBool(v != 0);
        } else {
          col->AppendInt(v);
        }
        ++spf;
      }
    }
    if (spf != sel.size()) {
      return Status::Corruption("selected decode: selection out of range");
    }
    return col;
  }
  size_t sp = 0;
  uint64_t consumed = 0;
  uint64_t remaining_in_run = 0;
  int64_t run_val = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (sp >= sel.size()) break;
    const bool want = sel[sp] == i;
    if (!valid[i]) {
      if (want) {
        col->AppendNull();
        ++sp;
      }
      continue;
    }
    if (remaining_in_run == 0) {
      PIXELS_ASSIGN_OR_RETURN(int64_t v, in->GetSignedVarint());
      PIXELS_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
      if (run == 0 || consumed + run > num_vals) {
        return Status::Corruption("rle: bad run length");
      }
      consumed += run;
      remaining_in_run = run;
      run_val = v;
    }
    --remaining_in_run;
    if (want) {
      if (type == TypeId::kBool) {
        col->AppendBool(run_val != 0);
      } else {
        col->AppendInt(run_val);
      }
      ++sp;
    }
  }
  if (sp != sel.size()) {
    return Status::Corruption("selected decode: selection out of range");
  }
  return col;
}

Result<ColumnVectorPtr> DecodeDeltaSelected(TypeId type, ByteReader* in,
                                            size_t num_rows,
                                            const std::vector<uint32_t>& sel) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_vals, in->GetVarint());
  auto col = MakeVector(type);
  col->Reserve(sel.size());
  size_t sp = 0;
  int64_t prev = 0;
  bool first = true;
  uint64_t consumed = 0;
  // Deltas must be prefix-summed sequentially even past rejected rows.
  for (size_t i = 0; i < num_rows; ++i) {
    if (sp >= sel.size()) break;
    const bool want = sel[sp] == i;
    if (!valid[i]) {
      if (want) {
        col->AppendNull();
        ++sp;
      }
      continue;
    }
    if (consumed >= num_vals) return Status::Corruption("delta: value underflow");
    PIXELS_ASSIGN_OR_RETURN(int64_t d, in->GetSignedVarint());
    int64_t v = first ? d : prev + d;
    first = false;
    prev = v;
    ++consumed;
    if (want) {
      if (type == TypeId::kBool) {
        col->AppendBool(v != 0);
      } else {
        col->AppendInt(v);
      }
      ++sp;
    }
  }
  if (sp != sel.size()) {
    return Status::Corruption("selected decode: selection out of range");
  }
  return col;
}

Result<ColumnVectorPtr> DecodeDictionarySelected(
    TypeId type, ByteReader* in, size_t num_rows,
    const std::vector<uint32_t>& sel) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  PIXELS_ASSIGN_OR_RETURN(uint64_t dict_size, in->GetVarint());
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint64_t d = 0; d < dict_size; ++d) {
    PIXELS_ASSIGN_OR_RETURN(std::string s, in->GetString());
    dict.push_back(std::move(s));
  }
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_codes, in->GetVarint());
  auto col = MakeVector(type);
  col->Reserve(sel.size());
  size_t sp = 0;
  uint64_t consumed = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (sp >= sel.size()) break;
    const bool want = sel[sp] == i;
    if (!valid[i]) {
      if (want) {
        col->AppendNull();
        ++sp;
      }
      continue;
    }
    if (consumed >= num_codes) return Status::Corruption("dict: code underflow");
    PIXELS_ASSIGN_OR_RETURN(uint64_t code, in->GetVarint());
    ++consumed;
    if (code >= dict.size()) return Status::Corruption("dict: code out of range");
    if (want) {
      col->AppendString(dict[code]);
      ++sp;
    }
  }
  if (sp != sel.size()) {
    return Status::Corruption("selected decode: selection out of range");
  }
  return col;
}

Result<ColumnVectorPtr> DecodeBitPackedSelected(
    TypeId type, ByteReader* in, size_t num_rows,
    const std::vector<uint32_t>& sel) {
  // Bits are dense (nulls occupy a 0 bit), so reuse the full decoder's
  // layout and just gather.
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> valid, ReadValidity(in, num_rows));
  const size_t num_bytes = (num_rows + 7) / 8;
  std::vector<uint8_t> bits(num_rows, 0);
  for (size_t b = 0; b < num_bytes; ++b) {
    PIXELS_ASSIGN_OR_RETURN(uint8_t byte, in->GetU8());
    for (int bit = 0; bit < 8; ++bit) {
      size_t i = b * 8 + static_cast<size_t>(bit);
      if (i >= num_rows) break;
      bits[i] = (byte >> bit) & 1;
    }
  }
  auto col = MakeVector(type);
  col->Reserve(sel.size());
  for (uint32_t i : sel) {
    if (i >= num_rows) {
      return Status::Corruption("selected decode: selection out of range");
    }
    if (!valid[i]) {
      col->AppendNull();
    } else {
      col->AppendBool(bits[i] != 0);
    }
  }
  return col;
}

}  // namespace

Result<std::vector<uint32_t>> FilterEncodedChunk(
    TypeId type, Encoding encoding, ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds) {
  if (!EncodingSupports(encoding, type)) {
    return Status::Corruption(std::string("encoding ") + EncodingName(encoding) +
                              " invalid for type " + TypeName(type));
  }
  switch (encoding) {
    case Encoding::kPlain:
      return FilterPlain(type, in, num_rows, preds);
    case Encoding::kRunLength:
      return FilterRunLength(in, num_rows, preds);
    case Encoding::kDelta:
      return FilterDelta(in, num_rows, preds);
    case Encoding::kDictionary:
      return FilterDictionary(in, num_rows, preds);
    case Encoding::kBitPacked:
      return FilterBitPacked(in, num_rows, preds);
  }
  return Status::Corruption("unknown encoding tag");
}

Result<ColumnVectorPtr> DecodeColumnSelected(TypeId type, Encoding encoding,
                                             ByteReader* in, size_t num_rows,
                                             const std::vector<uint32_t>& sel) {
  if (!EncodingSupports(encoding, type)) {
    return Status::Corruption(std::string("encoding ") + EncodingName(encoding) +
                              " invalid for type " + TypeName(type));
  }
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlainSelected(type, in, num_rows, sel);
    case Encoding::kRunLength:
      return DecodeRunLengthSelected(type, in, num_rows, sel);
    case Encoding::kDelta:
      return DecodeDeltaSelected(type, in, num_rows, sel);
    case Encoding::kDictionary:
      return DecodeDictionarySelected(type, in, num_rows, sel);
    case Encoding::kBitPacked:
      return DecodeBitPackedSelected(type, in, num_rows, sel);
  }
  return Status::Corruption("unknown encoding tag");
}

}  // namespace pixels
