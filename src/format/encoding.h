// Lightweight column-chunk encodings: plain, run-length, delta,
// dictionary, and bit-packing. The writer chooses an encoding per chunk
// (heuristically or forced); the chunk header records the choice.
//
// All encodings serialize the validity mask first (bit-packed), then the
// non-null payload, so nulls cost one bit regardless of encoding.
#pragma once

#include "common/bytes.h"
#include "format/compare.h"
#include "format/vector.h"

namespace pixels {

/// Encoding identifiers stored in chunk headers.
enum class Encoding : uint8_t {
  kPlain = 0,      // fixed-width values / length-prefixed strings
  kRunLength = 1,  // (value, run) pairs; integer-like only
  kDelta = 2,      // first value + zigzag deltas; integer-like only
  kDictionary = 3, // distinct values + indexes; strings only
  kBitPacked = 4,  // 1 bit per value; bools only
};

/// Human-readable encoding name.
const char* EncodingName(Encoding e);

/// True when `e` can encode columns of type `t`.
bool EncodingSupports(Encoding e, TypeId t);

/// Encodes `col` with the given encoding. Returns InvalidArgument when the
/// encoding does not support the column type.
Status EncodeColumn(const ColumnVector& col, Encoding encoding,
                    ByteWriter* out);

/// Decodes `num_rows` values of type `type` written with `encoding`.
Result<ColumnVectorPtr> DecodeColumn(TypeId type, Encoding encoding,
                                     ByteReader* in, size_t num_rows);

/// Picks a cheap encoding for the column: bools bit-pack, strings
/// dictionary-encode when repetitive, integers run-length-encode when
/// runs dominate, sorted-ish integers delta-encode, else plain.
Encoding ChooseEncoding(const ColumnVector& col);

/// Fused decode+filter: evaluates the conjunction of `preds` directly on
/// an encoded chunk and returns the selected row indices (ascending)
/// without materializing a ColumnVector. Exploits the encoding: a
/// dictionary entry is tested once and codes compared as integers, an RLE
/// run is tested once per run, bit-packed bools once per bit value.
/// Selects exactly the rows DecodeColumn + per-row predicate evaluation
/// would (nulls never match).
Result<std::vector<uint32_t>> FilterEncodedChunk(
    TypeId type, Encoding encoding, ByteReader* in, size_t num_rows,
    const std::vector<TypedPredicate>& preds);

/// Decodes only the rows listed in `sel` (ascending indices into the
/// chunk's rows), skipping the payload of rejected rows where the
/// encoding allows. Output row i corresponds to chunk row sel[i].
Result<ColumnVectorPtr> DecodeColumnSelected(TypeId type, Encoding encoding,
                                             ByteReader* in, size_t num_rows,
                                             const std::vector<uint32_t>& sel);

}  // namespace pixels
