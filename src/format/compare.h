// Typed single-column comparison predicates, pre-lowered so inner loops
// run over raw payloads with no per-row Value boxing. Mirrors
// Value::Compare exactly (int/int exact, any-double widening, string vs
// numeric ordered by kind, NaN compares equal to everything it is not
// less/greater than), so a kernel or fused-decode evaluation of
// `col op literal` selects exactly the rows the scalar evaluator would.
// Lives in the format layer because both exec kernels and the fused
// encoded-chunk filter depend on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "format/type.h"

namespace pixels {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Parses a SQL comparison operator ("=", "<>", "<", "<=", ">", ">=").
inline std::optional<CmpOp> ParseCmpOp(const std::string& op) {
  if (op == "=") return CmpOp::kEq;
  if (op == "<>" || op == "!=") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  if (op == ">=") return CmpOp::kGe;
  return std::nullopt;
}

/// Mirror image for `literal op col` rewritten as `col op' literal`.
inline CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

/// Applies `op` to a three-way comparison result (-1/0/+1).
inline bool ApplyCmp(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

/// `col op literal`, lowered once for a column type so the per-value test
/// is a flat typed comparison. Null column values never match (SQL
/// three-valued logic: the comparison is Null, and Null is not true) —
/// callers combine Match* with the validity mask.
struct TypedPredicate {
  enum class Mode : uint8_t {
    kConstFalse,  // no non-null value matches (e.g. null literal)
    kConstTrue,   // every non-null value matches (kind-ordered compare)
    kInt,         // exact int64 compare against int_lit
    kDouble,      // widen value to double, compare against dbl_lit
    kString,      // lexical compare against str_lit
  };

  Mode mode = Mode::kConstFalse;
  CmpOp op = CmpOp::kEq;
  int64_t int_lit = 0;
  double dbl_lit = 0;
  std::string str_lit;

  /// Lowers `col_type op literal`. Kind mismatches (string column vs
  /// numeric literal and vice versa) fold to a constant per
  /// Value::Compare's kind ordering (numerics sort before strings).
  static TypedPredicate Make(TypeId col_type, CmpOp op, const Value& literal) {
    TypedPredicate p;
    p.op = op;
    if (literal.is_null()) {
      p.mode = Mode::kConstFalse;  // comparison with null is Null
      return p;
    }
    const bool col_string = col_type == TypeId::kString;
    const bool lit_string = literal.kind == Value::Kind::kString;
    if (col_string != lit_string) {
      // Value::Compare: numerics order before strings, so the three-way
      // result is the same for every non-null value.
      const int c = col_string ? 1 : -1;
      p.mode = ApplyCmp(op, c) ? Mode::kConstTrue : Mode::kConstFalse;
      return p;
    }
    if (col_string) {
      p.mode = Mode::kString;
      p.str_lit = literal.s;
    } else if (col_type == TypeId::kDouble ||
               literal.kind == Value::Kind::kDouble) {
      p.mode = Mode::kDouble;
      p.dbl_lit = literal.AsDouble();
    } else {
      p.mode = Mode::kInt;
      p.int_lit = literal.AsInt();
    }
    return p;
  }

  bool MatchInt(int64_t v) const {
    if (mode == Mode::kDouble) return MatchDouble(static_cast<double>(v));
    if (mode != Mode::kInt) return mode == Mode::kConstTrue;
    return ApplyCmp(op, v < int_lit ? -1 : (v > int_lit ? 1 : 0));
  }

  bool MatchDouble(double v) const {
    if (mode != Mode::kDouble) return mode == Mode::kConstTrue;
    // Same NaN behavior as Value::Compare: not-less and not-greater → 0.
    return ApplyCmp(op, v < dbl_lit ? -1 : (v > dbl_lit ? 1 : 0));
  }

  bool MatchString(std::string_view v) const {
    if (mode != Mode::kString) return mode == Mode::kConstTrue;
    const int c = v.compare(str_lit);
    return ApplyCmp(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
  }

  /// Dispatch on a scalar (dictionary entries, RLE run values).
  bool MatchValue(const Value& v) const {
    if (v.is_null()) return false;
    switch (v.kind) {
      case Value::Kind::kDouble: return MatchDouble(v.d);
      case Value::Kind::kString: return MatchString(v.s);
      default: return MatchInt(v.i);  // int and bool share the int payload
    }
  }
};

}  // namespace pixels
