// On-disk layout of a Pixels (.pxl) file:
//
//   [magic "PXL1"]
//   [row group 0: column chunk 0][column chunk 1]...
//   [row group 1: ...]...
//   [footer: schema, row-group metadata, per-chunk stats]
//   [footer offset: u64][magic "PXL1"]
//
// Chunks are independently encoded (encoding.h) and located by absolute
// (offset, length), so a reader fetches exactly the projected columns of
// the row groups that survive zone-map pruning — the behaviour $/TB-scan
// billing rewards.
#pragma once

#include <string>
#include <vector>

#include "format/encoding.h"
#include "format/stats.h"
#include "format/type.h"

namespace pixels {

/// File magic, also used as the trailing sentinel.
inline constexpr char kPixelsMagic[4] = {'P', 'X', 'L', '1'};

/// One column of a file schema.
struct ColumnDef {
  std::string name;
  TypeId type;

  bool operator==(const ColumnDef& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered column definitions of one file/table.
using FileSchema = std::vector<ColumnDef>;

/// Location + encoding + stats of one column chunk.
struct ChunkMeta {
  uint64_t offset = 0;
  uint64_t length = 0;
  Encoding encoding = Encoding::kPlain;
  ColumnStats stats;
};

/// Metadata of one row group.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ChunkMeta> chunks;  // one per schema column
};

/// Parsed file footer.
struct FileFooter {
  FileSchema schema;
  std::vector<RowGroupMeta> row_groups;

  uint64_t NumRows() const {
    uint64_t n = 0;
    for (const auto& rg : row_groups) n += rg.num_rows;
    return n;
  }

  void Serialize(ByteWriter* out) const;
  static Result<FileFooter> Deserialize(ByteReader* in);
};

}  // namespace pixels
