#include "format/stats.h"

namespace pixels {

namespace stats_internal {

void SerializeValue(const Value& v, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(v.kind));
  switch (v.kind) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
    case Value::Kind::kInt:
      out->PutSignedVarint(v.i);
      break;
    case Value::Kind::kDouble:
      out->PutF64(v.d);
      break;
    case Value::Kind::kString:
      out->PutString(v.s);
      break;
  }
}

Result<Value> DeserializeValue(ByteReader* in) {
  PIXELS_ASSIGN_OR_RETURN(uint8_t kind, in->GetU8());
  Value v;
  if (kind > static_cast<uint8_t>(Value::Kind::kBool)) {
    return Status::Corruption("bad value kind tag");
  }
  v.kind = static_cast<Value::Kind>(kind);
  switch (v.kind) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
    case Value::Kind::kInt: {
      PIXELS_ASSIGN_OR_RETURN(v.i, in->GetSignedVarint());
      break;
    }
    case Value::Kind::kDouble: {
      PIXELS_ASSIGN_OR_RETURN(v.d, in->GetF64());
      break;
    }
    case Value::Kind::kString: {
      PIXELS_ASSIGN_OR_RETURN(v.s, in->GetString());
      break;
    }
  }
  return v;
}

}  // namespace stats_internal

void ColumnStats::Update(const Value& v) {
  ++num_values;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (!has_min_max) {
    min = v;
    max = v;
    has_min_max = true;
    return;
  }
  if (v.Compare(min) < 0) min = v;
  if (v.Compare(max) > 0) max = v;
}

void ColumnStats::UpdateVector(const ColumnVector& col) {
  for (size_t i = 0; i < col.size(); ++i) Update(col.GetValue(i));
}

void ColumnStats::Merge(const ColumnStats& other) {
  num_values += other.num_values;
  null_count += other.null_count;
  if (!other.has_min_max) return;
  if (!has_min_max) {
    min = other.min;
    max = other.max;
    has_min_max = true;
    return;
  }
  if (other.min.Compare(min) < 0) min = other.min;
  if (other.max.Compare(max) > 0) max = other.max;
}

bool ColumnStats::MayMatch(const std::string& op, const Value& literal) const {
  if (!has_min_max || literal.is_null()) return true;
  if (op == "=") {
    return literal.Compare(min) >= 0 && literal.Compare(max) <= 0;
  }
  if (op == "<") return min.Compare(literal) < 0;
  if (op == "<=") return min.Compare(literal) <= 0;
  if (op == ">") return max.Compare(literal) > 0;
  if (op == ">=") return max.Compare(literal) >= 0;
  if (op == "<>" || op == "!=") {
    // Only prunable when the chunk is a single constant equal to the literal.
    return !(min.Compare(max) == 0 && min.Compare(literal) == 0);
  }
  return true;
}

void ColumnStats::Serialize(ByteWriter* out) const {
  out->PutVarint(num_values);
  out->PutVarint(null_count);
  out->PutU8(has_min_max ? 1 : 0);
  if (has_min_max) {
    stats_internal::SerializeValue(min, out);
    stats_internal::SerializeValue(max, out);
  }
}

Result<ColumnStats> ColumnStats::Deserialize(ByteReader* in) {
  ColumnStats s;
  PIXELS_ASSIGN_OR_RETURN(s.num_values, in->GetVarint());
  PIXELS_ASSIGN_OR_RETURN(s.null_count, in->GetVarint());
  PIXELS_ASSIGN_OR_RETURN(uint8_t flag, in->GetU8());
  s.has_min_max = flag != 0;
  if (s.has_min_max) {
    PIXELS_ASSIGN_OR_RETURN(s.min, stats_internal::DeserializeValue(in));
    PIXELS_ASSIGN_OR_RETURN(s.max, stats_internal::DeserializeValue(in));
  }
  return s;
}

}  // namespace pixels
