#include "format/type.h"

#include <cmath>
#include <cstdio>

namespace pixels {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return "boolean";
    case TypeId::kInt32:
      return "int";
    case TypeId::kInt64:
      return "bigint";
    case TypeId::kDouble:
      return "double";
    case TypeId::kString:
      return "varchar";
    case TypeId::kDate:
      return "date";
    case TypeId::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Result<TypeId> TypeFromName(const std::string& name) {
  if (name == "boolean" || name == "bool") return TypeId::kBool;
  if (name == "int" || name == "integer") return TypeId::kInt32;
  if (name == "bigint" || name == "long") return TypeId::kInt64;
  if (name == "double" || name == "float" || name == "real" ||
      name == "decimal") {
    return TypeId::kDouble;
  }
  if (name == "varchar" || name == "string" || name == "text" ||
      name == "char") {
    return TypeId::kString;
  }
  if (name == "date") return TypeId::kDate;
  if (name == "timestamp") return TypeId::kTimestamp;
  return Status::InvalidArgument("unknown type name: " + name);
}

bool IsIntegerLike(TypeId t) {
  switch (t) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return true;
    default:
      return false;
  }
}

bool IsOrdered(TypeId) { return true; }

size_t FixedWidth(TypeId t) {
  switch (t) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
    case TypeId::kDate:
      return 4;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kDouble:
      return 8;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind) {
    case Kind::kNull:
      return "NULL";
    case Kind::kBool:
      return i != 0 ? "true" : "false";
    case Kind::kInt:
      return std::to_string(i);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case Kind::kString:
      return "'" + s + "'";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  const bool a_str = kind == Kind::kString;
  const bool b_str = other.kind == Kind::kString;
  if (a_str != b_str) return a_str ? 1 : -1;  // order by kind, numerics first
  if (a_str) {
    int c = s.compare(other.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Exact comparison for int-int; double path otherwise.
  if (kind != Kind::kDouble && other.kind != Kind::kDouble) {
    return i < other.i ? -1 : (i > other.i ? 1 : 0);
  }
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

namespace {
constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInYear(int y) { return IsLeap(y) ? 366 : 365; }

int DaysInMonth(int y, int m) {
  if (m == 2 && IsLeap(y)) return 29;
  return kDaysPerMonth[m - 1];
}
}  // namespace

std::string FormatDate(int32_t days) {
  int y = 1970;
  int32_t rem = days;
  while (rem < 0) {
    --y;
    rem += DaysInYear(y);
  }
  while (rem >= DaysInYear(y)) {
    rem -= DaysInYear(y);
    ++y;
  }
  int m = 1;
  while (rem >= DaysInMonth(y, m)) {
    rem -= DaysInMonth(y, m);
    ++m;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, rem + 1);
  return buf;
}

Result<int32_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || y < 1 || d > DaysInMonth(y, m)) {
    return Status::ParseError("invalid date: " + text);
  }
  int32_t days = 0;
  if (y >= 1970) {
    for (int yy = 1970; yy < y; ++yy) days += DaysInYear(yy);
  } else {
    for (int yy = y; yy < 1970; ++yy) days -= DaysInYear(yy);
  }
  for (int mm = 1; mm < m; ++mm) days += DaysInMonth(y, mm);
  return days + (d - 1);
}

}  // namespace pixels
