// PixelsWriter: buffers rows into row groups, encodes column chunks, and
// writes one .pxl object through a Storage backend.
#pragma once

#include <memory>
#include <optional>

#include "format/batch.h"
#include "format/file_format.h"
#include "storage/storage.h"

namespace pixels {

/// Writer options.
struct WriterOptions {
  /// Rows buffered per row group before a flush.
  size_t row_group_size = 65536;
  /// Forces one encoding for every chunk; unset = per-chunk heuristic.
  std::optional<Encoding> forced_encoding;
};

/// Streaming writer for one Pixels file. Usage:
///   PixelsWriter w(schema, options);
///   w.Append(batch); ...
///   w.Finish(storage, "db/table/f0.pxl");
class PixelsWriter {
 public:
  PixelsWriter(FileSchema schema, WriterOptions options = {});

  /// Appends a batch whose columns match the schema by position and type
  /// family (integer-like columns interchange; string needs string).
  Status Append(const RowBatch& batch);

  /// Appends one row of scalar values (schema order).
  Status AppendRow(const std::vector<Value>& row);

  /// Encodes all buffered data and writes the complete file.
  Status Finish(Storage* storage, const std::string& path);

  /// Rows appended so far.
  uint64_t rows_appended() const { return rows_appended_; }

 private:
  Status FlushRowGroup();
  void ResetBuffer();

  FileSchema schema_;
  WriterOptions options_;
  std::vector<ColumnVectorPtr> buffer_;
  uint64_t rows_appended_ = 0;
  ByteWriter body_;
  FileFooter footer_;
  bool finished_ = false;
};

}  // namespace pixels
