// Column statistics (zone maps): min/max/null-count per column chunk,
// used by the reader for predicate-based row-group skipping and by the
// optimizer for cardinality estimates.
#pragma once

#include "common/bytes.h"
#include "format/vector.h"

namespace pixels {

/// Min/max/null-count statistics of one column chunk.
struct ColumnStats {
  uint64_t num_values = 0;
  uint64_t null_count = 0;
  bool has_min_max = false;
  Value min;
  Value max;

  /// Folds one value into the stats.
  void Update(const Value& v);

  /// Folds a whole vector into the stats.
  void UpdateVector(const ColumnVector& col);

  /// Merges another chunk's stats (for file-level stats).
  void Merge(const ColumnStats& other);

  /// True when a chunk with these stats could contain a value satisfying
  /// `op` against `literal` (ops: "=", "<", "<=", ">", ">=", "<>").
  /// Conservative: returns true when unknown.
  bool MayMatch(const std::string& op, const Value& literal) const;

  void Serialize(ByteWriter* out) const;
  static Result<ColumnStats> Deserialize(ByteReader* in);
};

namespace stats_internal {
/// Serializes a Value (kind tag + payload).
void SerializeValue(const Value& v, ByteWriter* out);
Result<Value> DeserializeValue(ByteReader* in);
}  // namespace stats_internal

}  // namespace pixels
