#include "format/vector.h"

namespace pixels {

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(ints_[i] != 0);
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return Value::Int(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kString:
      return Value::String(strings_[i]);
  }
  return Value::Null();
}

void ColumnVector::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  if (type_ == TypeId::kDouble) {
    doubles_.push_back(0);
  } else if (type_ == TypeId::kString) {
    strings_.emplace_back();
  } else {
    ints_.push_back(0);
  }
}

void ColumnVector::AppendInt(int64_t v) {
  valid_.push_back(1);
  if (type_ == TypeId::kDouble) {
    doubles_.push_back(static_cast<double>(v));
  } else {
    ints_.push_back(v);
  }
}

void ColumnVector::AppendDouble(double v) {
  valid_.push_back(1);
  if (type_ == TypeId::kDouble) {
    doubles_.push_back(v);
  } else {
    ints_.push_back(static_cast<int64_t>(v));
  }
}

void ColumnVector::AppendString(std::string v) {
  valid_.push_back(1);
  strings_.push_back(std::move(v));
}

void ColumnVector::AppendBool(bool v) {
  valid_.push_back(1);
  ints_.push_back(v ? 1 : 0);
}

Status ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  const bool want_string = type_ == TypeId::kString;
  const bool have_string = v.kind == Value::Kind::kString;
  if (want_string != have_string) {
    return Status::TypeError(std::string("cannot append ") +
                             (have_string ? "string" : "numeric") +
                             " value to " + TypeName(type_) + " column");
  }
  if (want_string) {
    AppendString(v.s);
  } else if (type_ == TypeId::kDouble) {
    AppendDouble(v.AsDouble());
  } else {
    AppendInt(v.AsInt());
  }
  return Status::OK();
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  if (type_ == TypeId::kDouble) {
    valid_.push_back(1);
    doubles_.push_back(other.type_ == TypeId::kDouble
                           ? other.doubles_[i]
                           : static_cast<double>(other.ints_[i]));
  } else if (type_ == TypeId::kString) {
    valid_.push_back(1);
    strings_.push_back(other.strings_[i]);
  } else {
    valid_.push_back(1);
    ints_.push_back(other.type_ == TypeId::kDouble
                        ? static_cast<int64_t>(other.doubles_[i])
                        : other.ints_[i]);
  }
}

void ColumnVector::Reserve(size_t n) {
  valid_.reserve(n);
  if (type_ == TypeId::kDouble) {
    doubles_.reserve(n);
  } else if (type_ == TypeId::kString) {
    strings_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

void ColumnVector::Clear() {
  null_count_ = 0;
  valid_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

std::shared_ptr<ColumnVector> ColumnVector::Gather(
    const std::vector<uint32_t>& sel) const {
  auto out = std::make_shared<ColumnVector>(type_);
  const size_t n = sel.size();
  out->valid_.resize(n);
  for (size_t i = 0; i < n; ++i) out->valid_[i] = valid_[sel[i]];
  size_t nulls = 0;
  for (size_t i = 0; i < n; ++i) nulls += (out->valid_[i] == 0);
  out->null_count_ = nulls;
  if (type_ == TypeId::kDouble) {
    out->doubles_.resize(n);
    for (size_t i = 0; i < n; ++i) out->doubles_[i] = doubles_[sel[i]];
  } else if (type_ == TypeId::kString) {
    out->strings_.resize(n);
    for (size_t i = 0; i < n; ++i) out->strings_[i] = strings_[sel[i]];
  } else {
    out->ints_.resize(n);
    for (size_t i = 0; i < n; ++i) out->ints_[i] = ints_[sel[i]];
  }
  return out;
}

ColumnVectorPtr MakeVector(TypeId type) {
  return std::make_shared<ColumnVector>(type);
}

}  // namespace pixels
