// RowBatch: the unit of data flow between operators — a set of equally
// sized column vectors with names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/vector.h"

namespace pixels {

/// Ascending row indices selected out of a batch (produced by the filter
/// kernels in exec/kernels.h, consumed by Gather and the selection-aware
/// operators).
using SelectionVector = std::vector<uint32_t>;

/// A batch of rows in columnar layout. Column names are carried alongside
/// so operators can resolve columns produced by upstream operators.
class RowBatch {
 public:
  RowBatch() = default;

  /// Adds a column; all columns must end up the same length.
  void AddColumn(std::string name, ColumnVectorPtr col);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->size(); }

  const std::string& name(size_t i) const { return names_[i]; }
  const ColumnVectorPtr& column(size_t i) const { return columns_[i]; }

  /// Index of the named column, or -1. Accepts both bare names ("x") and
  /// qualified ones ("t.x"): a bare lookup matches a qualified column when
  /// unambiguous, and vice versa.
  int FindColumn(const std::string& name) const;

  /// Returns a batch with only the rows whose indices appear in `sel`.
  std::shared_ptr<RowBatch> Gather(const std::vector<uint32_t>& sel) const;

  /// Renders row `i` as tab-separated values.
  std::string RowToString(size_t i) const;

  /// Rough in-memory footprint in bytes (payload only).
  uint64_t ApproxBytes() const;

 private:
  std::vector<std::string> names_;
  std::vector<ColumnVectorPtr> columns_;
};

using RowBatchPtr = std::shared_ptr<RowBatch>;

/// A fully materialized table: a schema-compatible list of batches. Used
/// for query results and CF-produced materialized views.
class Table {
 public:
  Table() = default;

  void AddBatch(RowBatchPtr batch) { batches_.push_back(std::move(batch)); }

  const std::vector<RowBatchPtr>& batches() const { return batches_; }
  size_t num_rows() const;

  /// Column names of the first batch (empty if no batches).
  std::vector<std::string> ColumnNames() const;

  /// Renders up to `limit` rows as text with a header line.
  std::string ToString(size_t limit = 20) const;

  /// Collects one column across batches as Values (for tests).
  std::vector<Value> CollectColumn(const std::string& name) const;

 private:
  std::vector<RowBatchPtr> batches_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace pixels
