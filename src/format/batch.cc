#include "format/batch.h"

namespace pixels {

namespace {
// Returns the part after the last '.'.
std::string BaseName(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}
}  // namespace

void RowBatch::AddColumn(std::string name, ColumnVectorPtr col) {
  names_.push_back(std::move(name));
  columns_.push_back(std::move(col));
}

int RowBatch::FindColumn(const std::string& name) const {
  // Pass 1: exact match.
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  // Pass 2: unqualified lookup against qualified columns (and vice versa),
  // only when unambiguous.
  int found = -1;
  const std::string base = BaseName(name);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (BaseName(names_[i]) == base) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

std::shared_ptr<RowBatch> RowBatch::Gather(
    const std::vector<uint32_t>& sel) const {
  auto out = std::make_shared<RowBatch>();
  for (size_t c = 0; c < columns_.size(); ++c) {
    out->AddColumn(names_[c], columns_[c]->Gather(sel));
  }
  return out;
}

std::string RowBatch::RowToString(size_t i) const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += '\t';
    Value v = columns_[c]->GetValue(i);
    // Strings render unquoted in result listings.
    out += v.kind == Value::Kind::kString ? v.s : v.ToString();
  }
  return out;
}

uint64_t RowBatch::ApproxBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) {
    size_t w = FixedWidth(col->type());
    if (w > 0) {
      total += col->size() * (w + 1);
    } else {
      for (size_t i = 0; i < col->size(); ++i) {
        total += (col->IsNull(i) ? 0 : col->GetString(i).size()) + 5;
      }
    }
  }
  return total;
}

size_t Table::num_rows() const {
  size_t n = 0;
  for (const auto& b : batches_) n += b->num_rows();
  return n;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  if (!batches_.empty()) {
    for (size_t i = 0; i < batches_[0]->num_columns(); ++i) {
      names.push_back(batches_[0]->name(i));
    }
  }
  return names;
}

std::string Table::ToString(size_t limit) const {
  std::string out;
  auto names = ColumnNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += '\t';
    out += names[i];
  }
  out += '\n';
  size_t printed = 0;
  for (const auto& b : batches_) {
    for (size_t r = 0; r < b->num_rows() && printed < limit; ++r, ++printed) {
      out += b->RowToString(r);
      out += '\n';
    }
    if (printed >= limit) break;
  }
  size_t total = num_rows();
  if (total > printed) {
    out += "... (" + std::to_string(total - printed) + " more rows)\n";
  }
  return out;
}

std::vector<Value> Table::CollectColumn(const std::string& name) const {
  std::vector<Value> out;
  for (const auto& b : batches_) {
    int idx = b->FindColumn(name);
    if (idx < 0) continue;
    const auto& col = b->column(static_cast<size_t>(idx));
    for (size_t i = 0; i < col->size(); ++i) out.push_back(col->GetValue(i));
  }
  return out;
}

}  // namespace pixels
