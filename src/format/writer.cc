#include "format/writer.h"

#include "format/footer_cache.h"
#include "storage/buffer_cache.h"

namespace pixels {

void FileFooter::Serialize(ByteWriter* out) const {
  out->PutVarint(schema.size());
  for (const auto& col : schema) {
    out->PutString(col.name);
    out->PutU8(static_cast<uint8_t>(col.type));
  }
  out->PutVarint(row_groups.size());
  for (const auto& rg : row_groups) {
    out->PutVarint(rg.num_rows);
    for (const auto& chunk : rg.chunks) {
      out->PutVarint(chunk.offset);
      out->PutVarint(chunk.length);
      out->PutU8(static_cast<uint8_t>(chunk.encoding));
      chunk.stats.Serialize(out);
    }
  }
}

Result<FileFooter> FileFooter::Deserialize(ByteReader* in) {
  FileFooter footer;
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_cols, in->GetVarint());
  for (uint64_t i = 0; i < num_cols; ++i) {
    ColumnDef col;
    PIXELS_ASSIGN_OR_RETURN(col.name, in->GetString());
    PIXELS_ASSIGN_OR_RETURN(uint8_t t, in->GetU8());
    if (t > static_cast<uint8_t>(TypeId::kTimestamp)) {
      return Status::Corruption("bad type tag in footer");
    }
    col.type = static_cast<TypeId>(t);
    footer.schema.push_back(std::move(col));
  }
  PIXELS_ASSIGN_OR_RETURN(uint64_t num_rgs, in->GetVarint());
  for (uint64_t g = 0; g < num_rgs; ++g) {
    RowGroupMeta rg;
    PIXELS_ASSIGN_OR_RETURN(rg.num_rows, in->GetVarint());
    for (uint64_t c = 0; c < num_cols; ++c) {
      ChunkMeta chunk;
      PIXELS_ASSIGN_OR_RETURN(chunk.offset, in->GetVarint());
      PIXELS_ASSIGN_OR_RETURN(chunk.length, in->GetVarint());
      PIXELS_ASSIGN_OR_RETURN(uint8_t e, in->GetU8());
      if (e > static_cast<uint8_t>(Encoding::kBitPacked)) {
        return Status::Corruption("bad encoding tag in footer");
      }
      chunk.encoding = static_cast<Encoding>(e);
      PIXELS_ASSIGN_OR_RETURN(chunk.stats, ColumnStats::Deserialize(in));
      rg.chunks.push_back(std::move(chunk));
    }
    footer.row_groups.push_back(std::move(rg));
  }
  return footer;
}

PixelsWriter::PixelsWriter(FileSchema schema, WriterOptions options)
    : schema_(std::move(schema)), options_(options) {
  // File body starts with the magic.
  body_.PutBytes(kPixelsMagic, sizeof(kPixelsMagic));
  ResetBuffer();
  footer_.schema = schema_;
}

void PixelsWriter::ResetBuffer() {
  buffer_.clear();
  for (const auto& col : schema_) buffer_.push_back(MakeVector(col.type));
}

Status PixelsWriter::Append(const RowBatch& batch) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (batch.num_columns() != schema_.size()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(batch.num_columns()) +
        " columns, schema has " + std::to_string(schema_.size()));
  }
  for (size_t c = 0; c < schema_.size(); ++c) {
    const bool want_str = schema_[c].type == TypeId::kString;
    const bool have_str = batch.column(c)->type() == TypeId::kString;
    if (want_str != have_str) {
      return Status::TypeError("column " + schema_[c].name +
                               ": type family mismatch");
    }
  }
  const size_t n = batch.num_rows();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      buffer_[c]->AppendFrom(*batch.column(c), r);
    }
    ++rows_appended_;
    if (buffer_[0]->size() >= options_.row_group_size) {
      PIXELS_RETURN_NOT_OK(FlushRowGroup());
    }
  }
  return Status::OK();
}

Status PixelsWriter::AppendRow(const std::vector<Value>& row) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (size_t c = 0; c < schema_.size(); ++c) {
    PIXELS_RETURN_NOT_OK(buffer_[c]->AppendValue(row[c]));
  }
  ++rows_appended_;
  if (buffer_[0]->size() >= options_.row_group_size) {
    PIXELS_RETURN_NOT_OK(FlushRowGroup());
  }
  return Status::OK();
}

Status PixelsWriter::FlushRowGroup() {
  const size_t rows = buffer_[0]->size();
  if (rows == 0) return Status::OK();
  RowGroupMeta rg;
  rg.num_rows = rows;
  for (size_t c = 0; c < schema_.size(); ++c) {
    ChunkMeta chunk;
    chunk.encoding = options_.forced_encoding.has_value()
                         ? *options_.forced_encoding
                         : ChooseEncoding(*buffer_[c]);
    if (!EncodingSupports(chunk.encoding, schema_[c].type)) {
      chunk.encoding = Encoding::kPlain;
    }
    chunk.offset = body_.size();
    chunk.stats.UpdateVector(*buffer_[c]);
    PIXELS_RETURN_NOT_OK(EncodeColumn(*buffer_[c], chunk.encoding, &body_));
    chunk.length = body_.size() - chunk.offset;
    rg.chunks.push_back(std::move(chunk));
  }
  footer_.row_groups.push_back(std::move(rg));
  ResetBuffer();
  return Status::OK();
}

Status PixelsWriter::Finish(Storage* storage, const std::string& path) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  PIXELS_RETURN_NOT_OK(FlushRowGroup());
  finished_ = true;
  const uint64_t footer_offset = body_.size();
  footer_.Serialize(&body_);
  body_.PutU64(footer_offset);
  body_.PutBytes(kPixelsMagic, sizeof(kPixelsMagic));
  PIXELS_RETURN_NOT_OK(storage->Write(path, body_.data()));
  // Every .pxl write in this process goes through Finish, so dropping the
  // overwritten object here keeps the footer and chunk caches coherent
  // even for same-size rewrites that size-based validation cannot catch.
  FooterCache::Shared()->Invalidate(storage, path);
  BufferCache::InvalidateAllCaches(storage, path);
  return Status::OK();
}

}  // namespace pixels
