#include "format/footer_cache.h"

namespace pixels {

std::shared_ptr<const FileFooter> FooterCache::Get(const Storage* storage,
                                                   const std::string& path,
                                                   uint64_t expected_size) {
  Key key{storage, path};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second->file_size != expected_size) {
    // Object was replaced since it was cached.
    lru_.erase(it->second);
    map_.erase(it);
    ++invalidations_;
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->footer;
}

void FooterCache::Put(const Storage* storage, const std::string& path,
                      uint64_t file_size,
                      std::shared_ptr<const FileFooter> footer) {
  if (footer == nullptr || capacity_ == 0) return;
  Key key{storage, path};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->file_size = file_size;
    it->second->footer = std::move(footer);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, file_size, std::move(footer)});
  map_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void FooterCache::Invalidate(const Storage* storage, const std::string& path) {
  Key key{storage, path};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
  ++invalidations_;
}

void FooterCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
}

FooterCacheStats FooterCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FooterCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.invalidations = invalidations_;
  out.entries = lru_.size();
  return out;
}

FooterCache* FooterCache::Shared() {
  // Leaked singleton: avoids destruction-order races with readers that
  // outlive main().
  static FooterCache* cache = new FooterCache();
  return cache;
}

}  // namespace pixels
