// Null-aware typed column vectors — the unit of vectorized execution and
// of column-chunk encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/type.h"

namespace pixels {

/// A column of values of a single type with a validity (non-null) mask.
/// Integer-like types (bool, int32, int64, date, timestamp) share the
/// int64 payload; doubles and strings have their own payloads.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return valid_.size(); }
  bool empty() const { return valid_.empty(); }

  bool IsNull(size_t i) const { return !valid_[i]; }
  /// O(1): maintained incrementally by the append paths.
  size_t NullCount() const { return null_count_; }

  /// Typed accessors; callers must respect the vector's type and nullness.
  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }
  bool GetBool(size_t i) const { return ints_[i] != 0; }

  /// Generic accessor producing a scalar Value (numeric widening applied).
  Value GetValue(size_t i) const;

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendBool(bool v);

  /// Appends a Value, coercing numerics to this vector's type. Null-kind
  /// appends a null. Returns TypeError on string/numeric mismatch.
  Status AppendValue(const Value& v);

  /// Appends row `i` of `other` (must be the same type).
  void AppendFrom(const ColumnVector& other, size_t i);

  void Reserve(size_t n);
  void Clear();

  /// Returns a new vector containing rows `sel` in order. Bulk-copies the
  /// payload arrays (one type dispatch per call, not per row).
  std::shared_ptr<ColumnVector> Gather(const std::vector<uint32_t>& sel) const;

  /// Raw payload access for vectorized kernels. The payload that matches
  /// the vector's type class is dense (one slot per row, nulls zeroed);
  /// the others are empty.
  const uint8_t* valid_data() const { return valid_.data(); }
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }
  const std::string* strings_data() const { return strings_.data(); }

 private:
  TypeId type_;
  size_t null_count_ = 0;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

/// Creates an empty vector of the given type.
ColumnVectorPtr MakeVector(TypeId type);

}  // namespace pixels
