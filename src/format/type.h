// Type system and scalar Value used across the format, SQL, and execution
// layers.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pixels {

/// Physical/logical column types supported by the Pixels format.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kDate = 5,       // days since 1970-01-01, stored as int32
  kTimestamp = 6,  // milliseconds since epoch, stored as int64
};

/// SQL-facing type name, e.g. "bigint".
const char* TypeName(TypeId t);

/// Parses a SQL type name ("int", "bigint", "double", "varchar", ...).
Result<TypeId> TypeFromName(const std::string& name);

/// True for bool/int32/int64/date/timestamp (stored as integers).
bool IsIntegerLike(TypeId t);

/// True for types on which ordering comparisons are defined (all current types).
bool IsOrdered(TypeId t);

/// Fixed-width storage size in bytes; 0 for variable-width (string).
size_t FixedWidth(TypeId t);

/// A nullable scalar value. Integer-like types share the `i` payload,
/// doubles use `d`, strings use `s`.
struct Value {
  enum class Kind : uint8_t { kNull, kInt, kDouble, kString, kBool };

  Kind kind = Kind::kNull;
  int64_t i = 0;
  double d = 0;
  std::string s;

  Value() = default;

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.kind = Kind::kDouble;
    x.d = v;
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.kind = Kind::kString;
    x.s = std::move(v);
    return x;
  }
  static Value Bool(bool v) {
    Value x;
    x.kind = Kind::kBool;
    x.i = v ? 1 : 0;
    return x;
  }

  bool is_null() const { return kind == Kind::kNull; }

  /// Numeric view: ints and bools widen to double.
  double AsDouble() const { return kind == Kind::kDouble ? d : static_cast<double>(i); }

  /// Integer view: doubles truncate.
  int64_t AsInt() const { return kind == Kind::kDouble ? static_cast<int64_t>(d) : i; }

  bool AsBool() const { return kind == Kind::kDouble ? d != 0 : i != 0; }

  /// SQL-style rendering: NULL, 42, 3.14, 'text', true.
  std::string ToString() const;

  /// Three-way comparison; null sorts first. Numeric kinds compare
  /// numerically across int/double/bool; strings compare lexically.
  /// Comparing a string against a numeric kind orders by kind.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
};

/// Formats a date (days since epoch) as YYYY-MM-DD.
std::string FormatDate(int32_t days);

/// Parses YYYY-MM-DD into days since epoch.
Result<int32_t> ParseDate(const std::string& text);

}  // namespace pixels
