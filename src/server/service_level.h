// Service levels and prices (paper §3.2): Immediate ($5/TB-scan, CF
// acceleration allowed, immediate start), Relaxed ($1/TB-scan, CF
// disabled, queued up to a grace period while the cluster scales), and
// Best-of-effort ($0.5/TB-scan, scheduled only when concurrency is below
// the low watermark).
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pixels {

enum class ServiceLevel : uint8_t {
  kImmediate = 0,
  kRelaxed = 1,
  kBestEffort = 2,
};

const char* ServiceLevelName(ServiceLevel level);

Result<ServiceLevel> ServiceLevelFromName(const std::string& name);

/// $/TB-scan price list (paper §3.2 demo prices).
struct PriceList {
  double immediate_per_tb = 5.0;    // matches AWS Athena
  double relaxed_per_tb = 1.0;      // 20% of immediate
  double best_effort_per_tb = 0.5;  // 10% of immediate

  double RateFor(ServiceLevel level) const {
    switch (level) {
      case ServiceLevel::kImmediate:
        return immediate_per_tb;
      case ServiceLevel::kRelaxed:
        return relaxed_per_tb;
      case ServiceLevel::kBestEffort:
        return best_effort_per_tb;
    }
    return immediate_per_tb;
  }

  /// The bill for a query that scanned `bytes` at `level`.
  double Bill(ServiceLevel level, uint64_t bytes) const;
};

}  // namespace pixels
