#include "server/slo_monitor.h"

#include <string>

namespace pixels {

namespace {

/// Signed margin buckets (ms): negative = started past deadline. The
/// default millisecond ladder in cloud/metrics.h starts at 1, which would
/// collapse every violation into one bucket.
std::vector<double> MarginBounds() {
  return {-1800000, -300000, -60000, -30000, -10000, -5000, -1000, 0,
          1000,     5000,    10000,  30000,  60000,  300000, 1800000};
}

}  // namespace

const char* SloVerdictName(SloVerdict v) {
  switch (v) {
    case SloVerdict::kMet:
      return "met";
    case SloVerdict::kViolated:
      return "violated";
    case SloVerdict::kExcluded:
      return "excluded";
  }
  return "excluded";
}

SloMonitor::SloMonitor(const SloParams& params, SimTime default_relaxed_grace)
    : params_(params), queue_depth_(params.window) {
  graces_[0] = params_.immediate_grace;
  graces_[1] =
      params_.relaxed_grace < 0 ? default_relaxed_grace : params_.relaxed_grace;
  graces_[2] = params_.best_effort_grace;
  levels_.reserve(3);
  for (int i = 0; i < 3; ++i) {
    levels_.emplace_back(params_.window, MarginBounds());
  }
}

SloOutcome SloMonitor::OnSettled(ServiceLevel level, QueryState state,
                                 bool cancelled, SimTime received,
                                 SimTime start, SimTime now) {
  LevelState& st = StateFor(level);
  ++st.settled;
  SloOutcome out;
  if (cancelled) {
    // Settled without running (e.g. held at Stop()): neither met nor
    // violated, and no budget impact — the system never promised a start.
    ++st.cancelled;
    out.verdict = SloVerdict::kExcluded;
    return out;
  }
  if (state != QueryState::kFinished) {
    // Failed: the contract was not honored, so the error budget burns, but
    // compliance only judges queries the system actually completed.
    ++st.failed;
    out.verdict = SloVerdict::kExcluded;
    out.budget_consumed = true;
    return out;
  }
  const SimTime grace = GraceFor(level);
  if (grace <= 0) {
    // No deadline: completing at all is meeting the contract.
    ++st.met;
    st.violations.Add(now, /*hit=*/false);
    out.verdict = SloVerdict::kMet;
    return out;
  }
  const SimTime pending = (start >= 0 && start >= received)
                              ? start - received
                              : 0;
  const bool violated = pending > grace;
  out.margin_ms = grace - pending;
  out.scored_margin = true;
  st.margin_ms.Observe(static_cast<double>(out.margin_ms));
  st.violations.Add(now, violated);
  if (violated) {
    ++st.violated;
    out.verdict = SloVerdict::kViolated;
    out.budget_consumed = true;
  } else {
    ++st.met;
    out.verdict = SloVerdict::kMet;
  }
  return out;
}

void SloMonitor::ObserveQueueWait(ServiceLevel level, SimTime now,
                                  double wait_ms) {
  StateFor(level).queue_wait.Add(now, wait_ms);
}

void SloMonitor::ObserveQueueDepth(SimTime now, double depth) {
  queue_depth_.Add(now, depth);
}

double SloMonitor::WindowViolationRate(ServiceLevel level, SimTime now) {
  LevelState& st = StateFor(level);
  st.violations.AdvanceTo(now);
  return st.violations.Rate();
}

double SloMonitor::WindowQueueWaitQuantile(ServiceLevel level, double p,
                                           SimTime now) {
  LevelState& st = StateFor(level);
  st.queue_wait.AdvanceTo(now);
  return st.queue_wait.Quantile(p);
}

void SloMonitor::FillLevelReport(ServiceLevel level, SimTime now,
                                 SloLevelReport* out) {
  LevelState& st = StateFor(level);
  st.violations.AdvanceTo(now);
  st.queue_wait.AdvanceTo(now);
  out->grace = GraceFor(level);
  out->settled = st.settled;
  out->met = st.met;
  out->violated = st.violated;
  out->failed = st.failed;
  out->cancelled = st.cancelled;
  out->excluded = st.failed + st.cancelled;
  const uint64_t scored = st.met + st.violated;
  out->compliance =
      scored == 0 ? 1.0
                  : static_cast<double>(st.met) / static_cast<double>(scored);
  out->window_violation_rate = st.violations.Rate();
  out->window_queue_wait_p50_ms = st.queue_wait.Quantile(50);
  out->window_queue_wait_p99_ms = st.queue_wait.Quantile(99);
  out->budget_allowed =
      params_.violation_budget * static_cast<double>(scored + st.failed);
  out->budget_consumed = static_cast<double>(st.violated + st.failed);
  out->budget_remaining = out->budget_allowed - out->budget_consumed;
}

SloReport SloMonitor::Report(SimTime now) {
  SloReport report;
  report.window = params_.window;
  queue_depth_.AdvanceTo(now);
  report.window_queue_depth_mean = queue_depth_.Mean();
  report.window_queue_depth_max = queue_depth_.Max();
  for (int i = 0; i < 3; ++i) {
    FillLevelReport(static_cast<ServiceLevel>(i), now, &report.levels[i]);
  }
  return report;
}

void SloMonitor::MergeInto(MetricsRegistry* out, SimTime now) {
  const SloReport report = Report(now);
  for (int i = 0; i < 3; ++i) {
    const ServiceLevel level = static_cast<ServiceLevel>(i);
    const SloLevelReport& lr = report.levels[i];
    const std::string tag =
        std::string("{level=\"") + ServiceLevelName(level) + "\"}";
    out->Add("slo_settled_total" + tag, static_cast<double>(lr.settled));
    out->Add("slo_met_total" + tag, static_cast<double>(lr.met));
    out->Add("slo_violated_total" + tag, static_cast<double>(lr.violated));
    out->Add("slo_excluded_total" + tag, static_cast<double>(lr.excluded));
    out->Add("slo_failed_total" + tag, static_cast<double>(lr.failed));
    out->Add("slo_cancelled_total" + tag, static_cast<double>(lr.cancelled));
    out->SetGauge("slo_compliance" + tag, lr.compliance);
    out->SetGauge("slo_window_violation_rate" + tag,
                  lr.window_violation_rate);
    out->SetGauge("slo_error_budget_remaining" + tag, lr.budget_remaining);
    out->SetGauge("slo_grace_ms" + tag, static_cast<double>(lr.grace));
    out->MergeHistogram("slo_margin_ms" + tag, StateFor(level).margin_ms);
  }
  out->SetGauge("slo_window_queue_depth_mean",
                report.window_queue_depth_mean);
}

}  // namespace pixels
