// Client-facing submission types shared by the query server, the session
// shards, and the admission controller: what a client hands in, the
// billing/scheduling record kept per submission, and the client-session
// state machine the sharded tables hold.
#pragma once

#include <cstdint>
#include <functional>

#include "server/service_level.h"
#include "turbo/query_task.h"

namespace pixels {

/// A submission through the query server.
struct Submission {
  QuerySpec query;
  ServiceLevel level = ServiceLevel::kImmediate;
  /// Overrides the server's default result-size limit when positive.
  int64_t result_limit = 0;
  /// Client session this submission belongs to (0 = sessionless). Opened
  /// with QueryServer::OpenSession; per-session aggregates accumulate on
  /// settle.
  int64_t session_id = 0;
};

/// Billing + scheduling record kept per submission.
struct SubmissionRecord {
  int64_t server_id = 0;       // id in the query server
  int64_t coordinator_id = 0;  // id once submitted to the coordinator (0 = held)
  ServiceLevel level = ServiceLevel::kImmediate;
  int64_t session_id = 0;      // owning client session (0 = sessionless)
  SimTime received_time = 0;
  SimTime dispatch_time = -1;  // when handed to the coordinator
  double bill_usd = 0;         // $/TB-scan price charged to the user
  /// Billing idempotence guard: set when the finish callback settles this
  /// submission (bill accumulated, or waived for a failed query). A
  /// double-fired or re-invoked completion — a live hazard with CF worker
  /// re-invocation — can never accumulate the bill twice.
  bool billed = false;
  /// The submission was cancelled while held (server stopped before it
  /// could dispatch). Settled with a zero bill; `error` says why.
  bool cancelled = false;
  /// Server-side failure reason for submissions that never reached the
  /// coordinator (cancellation); coordinator-side errors live on the
  /// QueryRecord.
  std::string error;
  /// The whole query was answered from the materialized-view store.
  bool mv_hit = false;
  /// Scan bytes MV reuse avoided; billed at `mv_reuse_bill_fraction`.
  uint64_t mv_saved_bytes = 0;
  /// The result as returned to the client, after the submission form's
  /// result-size limit was applied (null until finished).
  TablePtr result;
  /// Root "query" span covering the submission from receipt to billing
  /// (0 when the coordinator's tracer is off).
  uint64_t span_id = 0;
};

/// Fires with both the server-side record (incl. the bill) and the
/// engine-side record when a submission settles.
using FinishCallback =
    std::function<void(const SubmissionRecord&, const QueryRecord&)>;

/// A client session: the cheap per-user state machine the sharded tables
/// are sized for (millions of open sessions, a small working set of
/// active queries). Aggregates update when submissions arrive and settle.
struct ClientSession {
  int64_t id = 0;
  SimTime opened_time = 0;
  bool open = true;
  int64_t queries_submitted = 0;
  int64_t queries_settled = 0;
  double billed_usd = 0;
};

}  // namespace pixels
