#include "server/service_level.h"

#include "cloud/pricing.h"

namespace pixels {

const char* ServiceLevelName(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kImmediate:
      return "immediate";
    case ServiceLevel::kRelaxed:
      return "relaxed";
    case ServiceLevel::kBestEffort:
      return "best-of-effort";
  }
  return "?";
}

Result<ServiceLevel> ServiceLevelFromName(const std::string& name) {
  if (name == "immediate") return ServiceLevel::kImmediate;
  if (name == "relaxed") return ServiceLevel::kRelaxed;
  if (name == "best-of-effort" || name == "best-effort" || name == "besteffort") {
    return ServiceLevel::kBestEffort;
  }
  return Status::InvalidArgument("unknown service level: " + name);
}

double PriceList::Bill(ServiceLevel level, uint64_t bytes) const {
  return RateFor(level) * static_cast<double>(bytes) / kBytesPerTB;
}

}  // namespace pixels
