// SLA-aware admission control and placement for the query server.
//
// Generalizes the seed's two hardcoded service-level gates (relaxed:
// engine concurrency below the VM high watermark; best-of-effort: total
// concurrency below the VM low watermark) into per-level watermark knobs,
// and layers two optional policies on top, shaped after the companion SLA
// paper (arXiv 2409.01388) and *Resource Allocation in Serverless Query
// Processing* (arXiv 2208.09519):
//
//  - Cost-based VM-vs-CF placement: an Immediate query only keeps CF
//    acceleration enabled when the estimated CF burst cost (scan work at
//    the CF unit price + invocation fees) stays within a configured
//    fraction of the query's own $/TB-scan bill. Queries too cheap to
//    justify a fleet fall back to the VM queue instead of burning margin.
//  - Burst-driven deferral/preemption of Best-of-effort work: when
//    Immediate arrivals within a sliding window exceed a threshold, the
//    admission gate for best-effort closes and already-queued (not yet
//    running) best-effort queries are recalled from the coordinator back
//    into the server's hold queue.
//
// With every knob at its default the controller reproduces the seed
// policy decision-for-decision — the async-vs-sync byte-identity
// invariant depends on this.
#pragma once

#include <algorithm>
#include <deque>

#include "cloud/pricing.h"
#include "common/sim_clock.h"
#include "server/service_level.h"

namespace pixels {

/// Admission-policy knobs (defaults reproduce the seed policy exactly).
struct AdmissionParams {
  /// Relaxed queries dispatch while ENGINE concurrency (running +
  /// coordinator queue) is below this watermark; negative = use the VM
  /// cluster's high watermark (the seed gate).
  double relaxed_admit_watermark = -1;
  /// Best-of-effort queries dispatch while TOTAL concurrency (running +
  /// queued + relaxed holds) is below this watermark; negative = use the
  /// VM cluster's low watermark (the seed gate).
  double best_effort_admit_watermark = -1;
  /// Cost-based CF placement for Immediate queries (off = seed behavior:
  /// CF always enabled for Immediate).
  bool cost_based_placement = false;
  /// With cost-based placement on: CF stays enabled only while the
  /// estimated CF cost is at most this fraction of the query's bill.
  double cf_bill_fraction_cap = 0.5;
  /// Defer + preempt best-effort work during Immediate bursts.
  bool preempt_best_effort = false;
  /// An Immediate burst = at least `burst_threshold` Immediate arrivals
  /// within the trailing `burst_window`.
  SimTime burst_window = 10 * kSeconds;
  int burst_threshold = 8;
  /// Feedback-driven best-effort watermark: raise the admission gate while
  /// the observed best-effort violation rate burns past its error budget,
  /// decay back toward the static watermark when it recovers. Off = static
  /// watermark (seed behavior). Adaptivity changes *scheduling* only —
  /// per-query results, bytes, and bills are invariant by construction.
  bool adaptive_watermarks = false;
  /// Slots added/removed per adjustment step.
  double adaptive_step = 1.0;
  /// Ceiling for the adaptive watermark, as a multiple of the static base.
  double adaptive_max_factor = 8.0;
  /// Windowed violation-rate threshold that triggers a raise (the error
  /// budget the controller defends).
  double adaptive_target_violation_rate = 0.05;
};

/// Point-in-time load signals the server gathers from the coordinator
/// for each admission decision.
struct AdmissionSignals {
  double engine_concurrency = 0;  // running + coordinator queue
  double total_concurrency = 0;   // + external (relaxed) holds
  double high_watermark = 0;      // VM cluster scale-out watermark
  double low_watermark = 0;       // VM cluster scale-in watermark
  int free_slots = 0;
  size_t queue_depth = 0;
  bool cf_available = false;      // CF service can invoke a default fleet
  double bytes_per_vcpu_second = 100e6;
};

/// Outcome of one admission decision, carrying the values it compared so
/// the audit event log can record *why* (watermark, load, predicted cost).
struct AdmissionDecision {
  bool dispatch = false;    // hand to the coordinator now vs hold
  bool cf_enabled = false;  // CF acceleration flag on the dispatched spec
  /// Policy that produced the decision (span/metric annotation).
  const char* reason = "";
  /// Gate the level was judged against (0 for Immediate: no gate).
  double watermark = 0;
  /// Load signal compared against the gate.
  double concurrency = 0;
  /// Predicted bill at the submitted estimate (actual bill uses scanned
  /// bytes — the audit log records both for predicted-vs-actual).
  double predicted_bill_usd = 0;
  /// Estimated CF burst cost (0 when CF is not available).
  double predicted_cf_cost_usd = 0;
};

/// One adaptive-watermark adjustment (for the audit log / metrics).
struct WatermarkUpdate {
  bool changed = false;
  bool raised = false;
  double old_value = 0;
  double new_value = 0;
};

/// Windowed observations the SLO monitor feeds back into the controller.
struct AdaptiveInputs {
  double violation_rate = 0;    // windowed best-effort violation rate
  double queue_wait_p99_ms = 0; // windowed best-effort queue-wait p99
  double oldest_hold_ms = 0;    // age of the oldest still-held best-effort
  double grace_ms = 0;          // best-effort grace (0 = no deadline)
};

/// Pure policy object: decides dispatch-vs-hold and VM-vs-CF placement
/// from load signals. Owns only the burst-detection window; all queue
/// state stays in the query server. Single-threaded (dispatcher thread).
class AdmissionController {
 public:
  AdmissionController(AdmissionParams params, PriceList prices,
                      PricingModel pricing, int default_cf_workers)
      : params_(params),
        prices_(prices),
        pricing_(pricing),
        default_cf_workers_(default_cf_workers) {}

  /// Records an Immediate arrival for burst detection.
  void NoteImmediateArrival(SimTime now) {
    if (!params_.preempt_best_effort) return;
    arrivals_.push_back(now);
    TrimWindow(now);
  }

  /// True while the trailing window holds a qualifying Immediate burst.
  bool BurstActive(SimTime now) {
    if (!params_.preempt_best_effort) return false;
    TrimWindow(now);
    return static_cast<int>(arrivals_.size()) >= params_.burst_threshold;
  }

  /// Admission decision for a fresh submission.
  AdmissionDecision Decide(ServiceLevel level, uint64_t estimated_bytes,
                           const AdmissionSignals& sig, SimTime now) {
    AdmissionDecision d;
    d.predicted_bill_usd = prices_.Bill(level, estimated_bytes);
    if (sig.cf_available) {
      d.predicted_cf_cost_usd = EstimatedCfCost(estimated_bytes, sig);
    }
    switch (level) {
      case ServiceLevel::kImmediate:
        d.dispatch = true;
        d.cf_enabled = PlaceOnCf(level, estimated_bytes, sig, &d.reason);
        d.concurrency = sig.engine_concurrency;
        break;
      case ServiceLevel::kRelaxed:
        d.dispatch = ShouldReleaseRelaxed(sig);
        d.reason = d.dispatch ? "below-relaxed-watermark" : "held-relaxed";
        d.watermark = RelaxedWatermark(sig);
        d.concurrency = sig.engine_concurrency;
        break;
      case ServiceLevel::kBestEffort:
        d.dispatch = ShouldReleaseBestEffort(sig, now);
        d.reason = d.dispatch ? "below-best-effort-watermark"
                              : (BurstActive(now) ? "held-immediate-burst"
                                                  : "held-best-effort");
        d.watermark = BestEffortWatermark(sig);
        d.concurrency = sig.total_concurrency;
        break;
    }
    return d;
  }

  /// Release gate for held relaxed queries (grace expiry overrides it).
  bool ShouldReleaseRelaxed(const AdmissionSignals& sig) const {
    return sig.engine_concurrency < RelaxedWatermark(sig);
  }

  /// Release gate for held best-effort queries.
  bool ShouldReleaseBestEffort(const AdmissionSignals& sig, SimTime now) {
    if (BurstActive(now)) return false;
    return sig.total_concurrency < BestEffortWatermark(sig);
  }

  double RelaxedWatermark(const AdmissionSignals& sig) const {
    return params_.relaxed_admit_watermark >= 0
               ? params_.relaxed_admit_watermark
               : sig.high_watermark;
  }
  double BestEffortWatermark(const AdmissionSignals& sig) const {
    if (params_.adaptive_watermarks && adaptive_best_effort_ >= 0) {
      return adaptive_best_effort_;
    }
    return StaticBestEffortWatermark(sig);
  }

  /// One adaptive-controller step, driven by the SLO monitor's windows:
  /// raise the best-effort gate while the violation rate is over budget
  /// (or held/queue waits already exceed the grace), decay toward the
  /// static base otherwise. Returns the adjustment for audit logging.
  WatermarkUpdate UpdateAdaptiveWatermark(const AdaptiveInputs& in,
                                          const AdmissionSignals& sig) {
    WatermarkUpdate u;
    if (!params_.adaptive_watermarks) return u;
    const double base = StaticBestEffortWatermark(sig);
    const double ceiling = std::max(base * params_.adaptive_max_factor,
                                    base + params_.adaptive_step);
    const double cur = adaptive_best_effort_ >= 0 ? adaptive_best_effort_ : base;
    const bool over_budget =
        in.violation_rate > params_.adaptive_target_violation_rate ||
        (in.grace_ms > 0 && (in.queue_wait_p99_ms > in.grace_ms ||
                             in.oldest_hold_ms > in.grace_ms));
    const double next =
        over_budget ? std::min(cur + params_.adaptive_step, ceiling)
                    : std::max(cur - params_.adaptive_step, base);
    adaptive_best_effort_ = next;
    u.changed = next != cur;
    u.raised = next > cur;
    u.old_value = cur;
    u.new_value = next;
    return u;
  }

  /// Estimated provider-side cost of bursting `estimated_bytes` of scan
  /// to a default-size CF fleet.
  double EstimatedCfCost(uint64_t estimated_bytes,
                         const AdmissionSignals& sig) const {
    const double work = sig.bytes_per_vcpu_second > 0
                            ? static_cast<double>(estimated_bytes) /
                                  sig.bytes_per_vcpu_second
                            : 0;
    return pricing_.EstimatedCfCost(work, default_cf_workers_);
  }

  const AdmissionParams& params() const { return params_; }

 private:
  double StaticBestEffortWatermark(const AdmissionSignals& sig) const {
    return params_.best_effort_admit_watermark >= 0
               ? params_.best_effort_admit_watermark
               : sig.low_watermark;
  }

  /// VM-vs-CF placement for an Immediate query. Seed behavior (cost-based
  /// placement off): CF always enabled. On: CF only when available and
  /// economical relative to the query's own bill. The flag only engages
  /// when the cluster is saturated, so enabling it eagerly is free.
  bool PlaceOnCf(ServiceLevel level, uint64_t estimated_bytes,
                 const AdmissionSignals& sig, const char** reason) {
    if (!params_.cost_based_placement) {
      *reason = "immediate";
      return true;
    }
    if (!sig.cf_available) {
      *reason = "cf-unavailable";
      return false;
    }
    const double bill = prices_.Bill(level, estimated_bytes);
    const double cf_cost = EstimatedCfCost(estimated_bytes, sig);
    if (cf_cost <= bill * params_.cf_bill_fraction_cap) {
      *reason = "cf-economical";
      return true;
    }
    *reason = "cf-uneconomical";
    return false;
  }

  void TrimWindow(SimTime now) {
    while (!arrivals_.empty() && arrivals_.front() <= now - params_.burst_window) {
      arrivals_.pop_front();
    }
  }

  AdmissionParams params_;
  PriceList prices_;
  PricingModel pricing_;
  int default_cf_workers_;
  std::deque<SimTime> arrivals_;  // Immediate arrivals in the burst window
  /// Current adaptive best-effort watermark (< 0 = not yet initialized;
  /// falls back to the static base).
  double adaptive_best_effort_ = -1;
};

}  // namespace pixels
