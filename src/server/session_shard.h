// Sharded id-keyed state tables for the query server: submissions and
// client sessions live in N independently-locked shards so millions of
// cheap session state machines are tractable and concurrent status polls
// do not serialize against the dispatcher.
//
// Concurrency contract (the actor model's): the dispatcher thread is the
// ONLY writer (Emplace/Find-for-write/Erase); any thread may read through
// Project/ProjectBatch, which copy a projection of the entry out under
// the shard lock. Pointers returned by Find stay valid across inserts
// and rehashes (node-based map) but must only be dereferenced on the
// dispatcher thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pixels {

template <typename V>
class ShardedTable {
 public:
  /// `shards` is rounded up to a power of two (minimum 1).
  explicit ShardedTable(int shards = 16) {
    size_t n = 1;
    while (n < static_cast<size_t>(shards < 1 ? 1 : shards)) n <<= 1;
    shards_ = std::vector<Shard>(n);
    mask_ = n - 1;
  }

  /// Inserts a default-constructed entry; returns the existing one when
  /// the id is already present. The pointer is stable for the entry's
  /// lifetime. Dispatcher thread only.
  V* Emplace(int64_t id) {
    Shard& s = ShardOf(id);
    std::lock_guard<std::mutex> lock(s.mu);
    return &s.map[id];
  }

  /// Dispatcher thread only (see the concurrency contract above).
  V* Find(int64_t id) {
    Shard& s = ShardOf(id);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(id);
    return it == s.map.end() ? nullptr : &it->second;
  }
  const V* Find(int64_t id) const {
    return const_cast<ShardedTable*>(this)->Find(id);
  }

  bool Erase(int64_t id) {
    Shard& s = ShardOf(id);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.map.erase(id) > 0;
  }

  size_t Size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  /// Copies `fn(entry)` out under the shard lock. Safe from any thread.
  /// Returns false (and leaves `out` untouched) when the id is absent.
  template <typename Out, typename Fn>
  bool Project(int64_t id, Fn&& fn, Out* out) const {
    const Shard& s = ShardOf(id);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(id);
    if (it == s.map.end()) return false;
    *out = fn(it->second);
    return true;
  }

  /// Batched projection: one lock acquisition per *shard touched*, not
  /// per id — the batched-status-poll fast path. `out` and `present` are
  /// resized to `ids.size()`; absent ids leave a default `Out`.
  template <typename Out, typename Fn>
  void ProjectBatch(const std::vector<int64_t>& ids, Fn&& fn,
                    std::vector<Out>* out, std::vector<bool>* present) const {
    out->assign(ids.size(), Out{});
    present->assign(ids.size(), false);
    // Group requested indices by shard, then visit each shard once.
    std::vector<std::vector<size_t>> by_shard(shards_.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      by_shard[ShardIndex(ids[i])].push_back(i);
    }
    for (size_t sh = 0; sh < shards_.size(); ++sh) {
      if (by_shard[sh].empty()) continue;
      const Shard& s = shards_[sh];
      std::lock_guard<std::mutex> lock(s.mu);
      for (size_t i : by_shard[sh]) {
        auto it = s.map.find(ids[i]);
        if (it == s.map.end()) continue;
        (*out)[i] = fn(it->second);
        (*present)[i] = true;
      }
    }
  }

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int64_t, V> map;
  };

  size_t ShardIndex(int64_t id) const {
    // Fibonacci spread so sequential ids fan across shards.
    return (static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull >> 32) & mask_;
  }
  Shard& ShardOf(int64_t id) { return shards_[ShardIndex(id)]; }
  const Shard& ShardOf(int64_t id) const { return shards_[ShardIndex(id)]; }

  std::vector<Shard> shards_;
  size_t mask_ = 0;
};

}  // namespace pixels
