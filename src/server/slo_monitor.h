// SLA compliance monitor (paper §3.2: each service level is a price-backed
// latency contract). Every settled query is scored in virtual time against
// its level's grace period:
//
//   - finished within grace            -> met
//   - finished past grace              -> violated (consumes error budget)
//   - grace <= 0 (Immediate/BestEffort
//     by default: no deadline)         -> met-if-completed
//   - failed                           -> excluded from compliance, but
//                                         still consumes error budget
//   - cancelled (e.g. held at Stop())  -> excluded, no budget impact
//
// so per level `met + violated + excluded == settled` holds exactly.
//
// The "deadline" is time-to-start: a Relaxed query's contract is that it
// begins executing within the grace period (the hold + coordinator queue
// wait), matching `QueryRecord::PendingTime()` ground truth.
//
// Alongside the cumulative report the monitor keeps sliding windows
// (violation outcomes, per-level queue waits, queue depth) whose rates feed
// the adaptive-watermark controller in admission.h. Single-writer: only the
// simulation thread (the server's mailbox pump) touches it.
#pragma once

#include <cstdint>

#include "cloud/metrics.h"
#include "cloud/sliding_window.h"
#include "common/sim_clock.h"
#include "server/service_level.h"
#include "turbo/query_task.h"

namespace pixels {

struct SloParams {
  /// Sliding-window span for violation rates / queue-wait quantiles
  /// (`slo_window_ms` in docs).
  SimTime window = 60 * kSeconds;
  /// Per-level grace periods (time-to-start deadline). <= 0 means "no
  /// deadline": completed queries always score met. relaxed_grace < 0
  /// inherits the server's `relaxed_grace_period`.
  SimTime immediate_grace = 0;
  SimTime relaxed_grace = -1;
  SimTime best_effort_grace = 0;
  /// Allowed fraction of budget-scored queries (finished + failed) that may
  /// violate/fail before the error budget is exhausted.
  double violation_budget = 0.05;
};

enum class SloVerdict : uint8_t { kMet = 0, kViolated = 1, kExcluded = 2 };

const char* SloVerdictName(SloVerdict v);

/// The score of one settled query.
struct SloOutcome {
  SloVerdict verdict = SloVerdict::kExcluded;
  /// grace - time_to_start; only meaningful when `scored_margin` is true
  /// (finished under a positive grace).
  SimTime margin_ms = 0;
  bool scored_margin = false;
  /// True for violations and failures: both burn the error budget.
  bool budget_consumed = false;
};

struct SloLevelReport {
  SimTime grace = 0;
  uint64_t settled = 0;
  uint64_t met = 0;
  uint64_t violated = 0;
  uint64_t excluded = 0;  // == failed + cancelled
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  /// met / (met + violated); 1 when nothing was scored.
  double compliance = 1.0;
  /// Violations among finished queries inside the sliding window.
  double window_violation_rate = 0;
  double window_queue_wait_p50_ms = 0;
  double window_queue_wait_p99_ms = 0;
  /// Error budget: allowed = violation_budget * (met + violated + failed),
  /// consumed = violated + failed; remaining may go negative (budget burn).
  double budget_allowed = 0;
  double budget_consumed = 0;
  double budget_remaining = 0;
};

struct SloReport {
  SimTime window = 0;
  double window_queue_depth_mean = 0;
  double window_queue_depth_max = 0;
  SloLevelReport levels[3];

  const SloLevelReport& Level(ServiceLevel level) const {
    return levels[static_cast<size_t>(level)];
  }
};

class SloMonitor {
 public:
  /// `default_relaxed_grace` fills `relaxed_grace` when it is negative
  /// (the server passes its `relaxed_grace_period`).
  SloMonitor(const SloParams& params, SimTime default_relaxed_grace);

  /// Effective grace for a level (<= 0 means no deadline).
  SimTime GraceFor(ServiceLevel level) const {
    return graces_[static_cast<size_t>(level)];
  }
  SimTime window() const { return params_.window; }

  /// Scores one settled query. `received` is the server receipt time,
  /// `start` the execution start (< 0 when it never started), `state` the
  /// terminal QueryRecord state; `cancelled` marks queries settled without
  /// running (held at Stop()).
  SloOutcome OnSettled(ServiceLevel level, QueryState state, bool cancelled,
                       SimTime received, SimTime start, SimTime now);

  /// Feeds the windowed queue-wait distribution (observed at dispatch).
  void ObserveQueueWait(ServiceLevel level, SimTime now, double wait_ms);
  /// Feeds the windowed held-queue depth (observed at each poll).
  void ObserveQueueDepth(SimTime now, double depth);

  /// Windowed violation rate among finished queries of `level`.
  double WindowViolationRate(ServiceLevel level, SimTime now);
  /// Windowed queue-wait percentile (p in [0,100]) for `level`.
  double WindowQueueWaitQuantile(ServiceLevel level, double p, SimTime now);

  /// Full per-level report (trims windows to `now`).
  SloReport Report(SimTime now);

  /// Merges counters/gauges/margin-histograms into `out` under
  /// `slo_*{level="..."}` names.
  void MergeInto(MetricsRegistry* out, SimTime now);

 private:
  struct LevelState {
    uint64_t settled = 0;
    uint64_t met = 0;
    uint64_t violated = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    Histogram margin_ms;
    SlidingRatio violations;
    SlidingWindow queue_wait;

    LevelState(SimTime window, std::vector<double> margin_bounds)
        : margin_ms(std::move(margin_bounds)),
          violations(window),
          queue_wait(window) {}
  };

  LevelState& StateFor(ServiceLevel level) {
    return levels_[static_cast<size_t>(level)];
  }
  void FillLevelReport(ServiceLevel level, SimTime now, SloLevelReport* out);

  SloParams params_;
  SimTime graces_[3];
  std::vector<LevelState> levels_;
  SlidingWindow queue_depth_;
};

}  // namespace pixels
