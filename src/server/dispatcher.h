// The query server's actor-style mailbox: every state mutation of the
// server (submission admission, completion settlement, poll ticks, stop)
// flows through one MPSC queue drained by a run-to-completion pump.
//
// Determinism contract (the async-vs-sync byte-identity invariant rests
// on it): Enqueue pushes the message and pumps IMMEDIATELY on the calling
// (simulation) thread — messages are handled at the same virtual time
// they were produced, in production order. A message enqueued from inside
// a handler (a finish callback that Submits again, a completion arriving
// while a poll drains) is NOT handled recursively: the active pump's
// loop picks it up after the current message settles, exactly the order
// the synchronous seed path produced by direct calls.
#pragma once

#include <cstdint>
#include <utility>

#include "common/event_log.h"
#include "common/mpsc_queue.h"
#include "turbo/query_task.h"

namespace pixels {

/// One unit of dispatcher work.
struct ServerMessage {
  enum class Kind : uint8_t { kSubmit, kCompletion, kPoll };
  Kind kind = Kind::kSubmit;
  /// The submission this message concerns (kSubmit / kCompletion).
  int64_t server_id = 0;
  /// Engine-side record snapshot carried by kCompletion.
  QueryRecord completion;
};

/// Observability counters for the dispatcher (single-writer: the pump
/// thread; read via QueryServer::dispatcher_stats()).
struct DispatcherStats {
  uint64_t messages = 0;
  uint64_t submits = 0;
  uint64_t completions = 0;
  uint64_t polls = 0;
  /// Pump activations (an activation drains until empty).
  uint64_t pumps = 0;
  /// Largest number of messages one activation drained.
  uint64_t max_batch = 0;
  /// Messages enqueued from inside a handler and absorbed by the active
  /// pump instead of starting a nested one (re-entrancy made safe).
  uint64_t reentrant_enqueues = 0;
};

/// MPSC mailbox + non-reentrant pump. Push is thread-safe; Pump must only
/// run on the consumer (simulation) thread.
class ServerMailbox {
 public:
  void Push(ServerMessage msg) { queue_.Push(std::move(msg)); }

  /// Optional audit log: multi-message pump activations emit a
  /// `dispatcher.batch` event (nullptr = off).
  void set_event_log(EventLog* log) { event_log_ = log; }

  /// Drains the mailbox through `handler(ServerMessage&&)`. If a pump is
  /// already active on this thread (the caller sits inside a handler),
  /// returns immediately — the active pump's loop will reach the new
  /// message; handlers never nest.
  template <typename Handler>
  void Pump(Handler&& handler) {
    if (pumping_) {
      stats_.reentrant_enqueues++;
      return;
    }
    pumping_ = true;
    stats_.pumps++;
    uint64_t batch = 0;
    ServerMessage msg;
    while (queue_.Pop(&msg)) {
      batch++;
      stats_.messages++;
      switch (msg.kind) {
        case ServerMessage::Kind::kSubmit: stats_.submits++; break;
        case ServerMessage::Kind::kCompletion: stats_.completions++; break;
        case ServerMessage::Kind::kPoll: stats_.polls++; break;
      }
      handler(std::move(msg));
    }
    if (batch > stats_.max_batch) stats_.max_batch = batch;
    if (event_log_ != nullptr && batch >= 2) {
      // Single-message activations are the common case and would swamp the
      // bounded log; only genuine batches (a drain absorbing re-entrant
      // messages) are audit-worthy.
      Json f = Json::Object();
      f.Set("messages", Json(static_cast<int64_t>(batch)));
      event_log_->Emit("dispatcher.batch", std::move(f));
    }
    pumping_ = false;
  }

  bool pumping() const { return pumping_; }
  size_t Backlog() const { return queue_.ApproxSize(); }
  const DispatcherStats& stats() const { return stats_; }

 private:
  MpscQueue<ServerMessage> queue_;
  /// Consumer-thread-only re-entrancy guard.
  bool pumping_ = false;
  DispatcherStats stats_;
  EventLog* event_log_ = nullptr;
};

}  // namespace pixels
