#include "server/query_server.h"

#include <algorithm>

#include "common/logging.h"

namespace pixels {

QueryServer::QueryServer(SimClock* clock, Coordinator* coordinator,
                         QueryServerParams params)
    : clock_(clock),
      coordinator_(coordinator),
      params_(params),
      admission_(params.admission, params.prices,
                 coordinator->params().pricing,
                 coordinator->params().default_cf_workers),
      sessions_(params.session_shards),
      client_sessions_(params.session_shards),
      slo_(params.slo, params.relaxed_grace_period) {
  mailbox_.set_event_log(coordinator->event_log());
}

Tracer* QueryServer::SyncedTracer() {
  Tracer* tracer = coordinator_->tracer();
  if (tracer == nullptr || !tracer->enabled()) return nullptr;
  const SimTime now = clock_->Now();
  tracer->SyncTime(now);
  SyncLogTime(now);
  return tracer;
}

EventLog* QueryServer::SyncedLog() {
  EventLog* log = coordinator_->event_log();
  if (log != nullptr) log->SyncTime(clock_->Now());
  return log;
}

// ---------------------------------------------------------------------------
// Message routing

void QueryServer::Enqueue(ServerMessage msg) {
  if (params_.async_dispatch) {
    mailbox_.Push(std::move(msg));
    // Pump immediately on the calling (simulation) thread: messages are
    // handled at the virtual time they were produced, in production
    // order. If a pump is already active (this enqueue came from inside
    // a handler), the active pump's loop absorbs the message after the
    // current one settles — handlers never nest, which is exactly the
    // re-entrancy fix the synchronous path needed.
    mailbox_.Pump([this](ServerMessage&& m) { HandleMessage(std::move(m)); });
  } else {
    HandleMessage(std::move(msg));
  }
}

void QueryServer::HandleMessage(ServerMessage&& msg) {
  switch (msg.kind) {
    case ServerMessage::Kind::kSubmit:
      HandleSubmit(msg.server_id);
      break;
    case ServerMessage::Kind::kCompletion:
      HandleCompletion(msg.server_id, msg.completion);
      break;
    case ServerMessage::Kind::kPoll:
      HandlePoll();
      break;
  }
}

// ---------------------------------------------------------------------------
// Lifecycle

void QueryServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (polling_) {
    clock_->Cancel(poll_event_);
    polling_ = false;
  }
  // Held queries could never dispatch once polling stops: fail each with
  // an explicit cancelled status instead of stranding it (and its
  // callback, and its open hold span) forever.
  Tracer* tracer = SyncedTracer();
  std::deque<Held> relaxed, best_effort;
  relaxed.swap(relaxed_held_);
  best_effort.swap(best_effort_held_);
  for (const Held& h : relaxed) CancelHeld(h, tracer);
  for (const Held& h : best_effort) CancelHeld(h, tracer);
  dispatched_best_effort_.clear();
  UpdateExternalPending();
  // Export the audit log once everything held has settled, so the file
  // includes the cancel events above.
  if (!params_.event_log_path.empty()) {
    if (EventLog* log = SyncedLog()) {
      const Status st = log->WriteTo(params_.event_log_path);
      if (!st.ok()) {
        PIXELS_LOG(kWarn) << "event-log export failed: " << st.message();
      }
    }
  }
}

void QueryServer::CancelHeld(const Held& held, Tracer* tracer) {
  Session* sess = sessions_.Find(held.server_id);
  if (sess == nullptr) return;
  SubmissionRecord& srec = sess->record;
  if (srec.billed) return;
  srec.billed = true;
  srec.cancelled = true;
  srec.bill_usd = 0;
  srec.error = "query server stopped before dispatch";
  // Cancelled-at-Stop is an operator action, not a service failure:
  // excluded from compliance and charged to nobody's error budget.
  slo_.OnSettled(srec.level, QueryState::kFailed, /*cancelled=*/true,
                 srec.received_time, /*start_time=*/-1, clock_->Now());
  if (EventLog* log = SyncedLog()) {
    Json f = Json::Object();
    f.Set("server_id", srec.server_id);
    f.Set("level", ServiceLevelName(srec.level));
    f.Set("reason", "server-stopped");
    log->Emit("admission.cancel", std::move(f));
  }
  metrics_.Add("submissions_cancelled", 1);
  metrics_.Add(std::string("submissions_cancelled_") +
                   ServiceLevelName(srec.level),
               1);
  if (tracer != nullptr) {
    if (held.hold_span != 0) {
      tracer->Annotate(held.hold_span, "released_by", "server-stopped");
      tracer->EndSpan(held.hold_span);
    }
    if (srec.span_id != 0) {
      tracer->Annotate(srec.span_id, "state", "cancelled");
      tracer->Annotate(srec.span_id, "error", srec.error);
      tracer->EndSpan(srec.span_id);
    }
  }
  if (srec.session_id != 0) {
    if (ClientSession* cs = client_sessions_.Find(srec.session_id)) {
      cs->queries_settled++;
    }
  }
  // Synthetic engine-side record: the query never reached the
  // coordinator, so fabricate the failed view the callback expects.
  QueryRecord qrec;
  qrec.state = QueryState::kFailed;
  qrec.error = srec.error;
  qrec.submit_time = srec.received_time;
  if (sess->has_spec) qrec.spec = sess->spec;
  FinishCallback fn = std::move(sess->callback);
  sess->callback = nullptr;
  if (fn) {
    const SubmissionRecord snapshot = srec;  // settle fully, pass a copy
    fn(snapshot, qrec);
  }
}

// ---------------------------------------------------------------------------
// Submission

int64_t QueryServer::Submit(Submission submission, FinishCallback on_finish) {
  if (stopped_) {
    // A stopped server no longer polls, so a held query could never be
    // dispatched — reject instead of accepting work that would hang.
    metrics_.Add("submissions_rejected", 1);
    return -1;
  }
  const int64_t id = next_id_++;
  Session* sess = sessions_.Emplace(id);
  SubmissionRecord& rec = sess->record;
  rec.server_id = id;
  rec.level = submission.level;
  rec.session_id = submission.session_id;
  rec.received_time = clock_->Now();
  if (on_finish) sess->callback = std::move(on_finish);

  if (submission.session_id != 0) {
    if (ClientSession* cs = client_sessions_.Find(submission.session_id)) {
      cs->queries_submitted++;
    }
  }

  // Apply the result-size limit by wrapping the SQL? The engine applies
  // LIMIT in the plan; here we record the effective limit on the spec for
  // real executions (client-side truncation otherwise).
  sess->result_limit = submission.result_limit > 0
                           ? submission.result_limit
                           : params_.default_result_limit;
  sess->spec = std::move(submission.query);
  sess->has_spec = true;
  metrics_.Add("submissions", 1);
  metrics_.Add(std::string("submissions_") + ServiceLevelName(rec.level), 1);
  Tracer* tracer = SyncedTracer();
  if (tracer != nullptr) {
    rec.span_id = tracer->StartSpan("query");
    tracer->Annotate(rec.span_id, "server_id", static_cast<uint64_t>(id));
    tracer->Annotate(rec.span_id, "level", ServiceLevelName(rec.level));
    if (rec.session_id != 0) {
      tracer->Annotate(rec.span_id, "session_id",
                       static_cast<uint64_t>(rec.session_id));
    }
  }

  ServerMessage msg;
  msg.kind = ServerMessage::Kind::kSubmit;
  msg.server_id = id;
  Enqueue(std::move(msg));
  return id;
}

void QueryServer::HandleSubmit(int64_t server_id) {
  Session* sess = sessions_.Find(server_id);
  if (sess == nullptr || !sess->has_spec) return;
  const SimTime now = clock_->Now();
  SubmissionRecord& rec = sess->record;
  Tracer* tracer = SyncedTracer();

  if (rec.level == ServiceLevel::kImmediate) {
    admission_.NoteImmediateArrival(now);
    // A burst crossing the threshold preempts best-effort work still
    // waiting in the coordinator's VM queue, clearing the runway before
    // this query is placed.
    if (admission_.BurstActive(now)) {
      const size_t recalled = PreemptQueuedBestEffort(tracer);
      if (recalled > 0) {
        if (tracer != nullptr) {
          // Instant span under the triggering Immediate query, so the
          // preemption shows up in its trace subtree.
          const uint64_t burst = tracer->StartSpan("admission.burst",
                                                   rec.span_id);
          tracer->Annotate(burst, "reason", "immediate-burst");
          tracer->Annotate(burst, "recalled",
                           static_cast<uint64_t>(recalled));
          tracer->EndSpan(burst);
        }
        if (EventLog* log = SyncedLog()) {
          Json f = Json::Object();
          f.Set("server_id", rec.server_id);
          f.Set("recalled", static_cast<int64_t>(recalled));
          log->Emit("admission.burst", std::move(f));
        }
      }
    }
  }

  const AdmissionSignals sig = Signals();
  const AdmissionDecision d =
      admission_.Decide(rec.level, sess->spec.bytes_to_scan, sig, now);
  sess->predicted_bill = d.predicted_bill_usd;
  sess->predicted_cf_cost = d.predicted_cf_cost_usd;
  if (EventLog* log = SyncedLog()) {
    Json f = Json::Object();
    f.Set("server_id", rec.server_id);
    f.Set("level", ServiceLevelName(rec.level));
    f.Set("reason", d.reason);
    f.Set("watermark", d.watermark);
    f.Set("concurrency", d.concurrency);
    f.Set("queue_depth", static_cast<int64_t>(sig.queue_depth));
    f.Set("held", static_cast<int64_t>(HeldQueries()));
    f.Set("predicted_bill_usd", d.predicted_bill_usd);
    if (d.predicted_cf_cost_usd > 0) {
      f.Set("predicted_cf_cost_usd", d.predicted_cf_cost_usd);
    }
    if (d.dispatch) f.Set("cf_enabled", d.cf_enabled);
    log->Emit(d.dispatch ? "admission.dispatch" : "admission.hold",
              std::move(f));
  }
  if (d.dispatch) {
    DispatchToCoordinator(server_id, d.cf_enabled);
    return;
  }

  Held held{server_id,
            rec.level == ServiceLevel::kRelaxed
                ? now + params_.relaxed_grace_period
                : 0};
  if (tracer != nullptr) {
    held.hold_span = tracer->StartSpan("hold", rec.span_id);
    tracer->Annotate(held.hold_span, "level", ServiceLevelName(rec.level));
    tracer->Annotate(held.hold_span, "reason", d.reason);
  }
  if (rec.level == ServiceLevel::kRelaxed) {
    relaxed_held_.push_back(held);
  } else {
    best_effort_held_.push_back(held);
  }
  UpdateExternalPending();
  SchedulePoll();
}

void QueryServer::DispatchToCoordinator(int64_t server_id, bool cf_enabled) {
  Session* sess = sessions_.Find(server_id);
  if (sess == nullptr || !sess->has_spec) return;
  QuerySpec spec = std::move(sess->spec);
  sess->has_spec = false;

  SubmissionRecord& rec = sess->record;
  rec.dispatch_time = clock_->Now();
  if (!sess->wait_observed) {
    sess->wait_observed = true;
    const double wait =
        static_cast<double>(rec.dispatch_time - rec.received_time);
    metrics_.Observe(std::string("queue_wait_ms{level=\"") +
                         ServiceLevelName(rec.level) + "\"}",
                     wait);
    // Windowed queue-wait telemetry: the per-level p99 of this feeds the
    // adaptive-watermark controller.
    slo_.ObserveQueueWait(rec.level, rec.dispatch_time, wait);
  }

  spec.cf_enabled = cf_enabled;
  spec.trace_parent = rec.span_id;
  if (rec.level == ServiceLevel::kBestEffort &&
      admission_.params().preempt_best_effort) {
    dispatched_best_effort_.push_back(server_id);
  }

  rec.coordinator_id = coordinator_->Submit(
      std::move(spec), [this, server_id](const QueryRecord& qrec) {
        ServerMessage msg;
        msg.kind = ServerMessage::Kind::kCompletion;
        msg.server_id = server_id;
        msg.completion = qrec;
        Enqueue(std::move(msg));
      });
}

// ---------------------------------------------------------------------------
// Completion

void QueryServer::HandleCompletion(int64_t server_id,
                                   const QueryRecord& qrec) {
  Session* sess = sessions_.Find(server_id);
  if (sess == nullptr) return;
  SubmissionRecord& srec = sess->record;
  // Idempotence: the first completion settles the submission. A
  // double-fired or re-invoked completion (CF re-invocation makes this a
  // live hazard) must never accumulate the bill twice.
  if (srec.billed) return;
  srec.billed = true;
  const SimTime now = clock_->Now();
  metrics_.Observe(std::string("query_latency_ms{level=\"") +
                       ServiceLevelName(srec.level) + "\"}",
                   static_cast<double>(now - srec.received_time));
  // Score the deadline verdict before anything else settles: the verdict
  // is a pure function of (level, state, received, start), recomputable
  // from the records — the compliance tests rely on that.
  const SloOutcome slo_out =
      slo_.OnSettled(srec.level, qrec.state, /*cancelled=*/false,
                     srec.received_time, qrec.start_time, now);
  if (srec.level == ServiceLevel::kBestEffort &&
      !dispatched_best_effort_.empty()) {
    dispatched_best_effort_.erase(
        std::remove(dispatched_best_effort_.begin(),
                    dispatched_best_effort_.end(), server_id),
        dispatched_best_effort_.end());
  }
  Tracer* tracer = SyncedTracer();
  if (qrec.state == QueryState::kFailed) {
    // A failed query is never billed and delivers no result; the error
    // string stays visible through GetStatus.
    srec.bill_usd = 0;
    metrics_.Add("queries_failed", 1);
    if (EventLog* log = SyncedLog()) {
      Json f = Json::Object();
      f.Set("server_id", srec.server_id);
      f.Set("level", ServiceLevelName(srec.level));
      f.Set("state", "failed");
      f.Set("verdict", SloVerdictName(slo_out.verdict));
      f.Set("pending_ms",
            qrec.start_time >= 0
                ? static_cast<int64_t>(qrec.start_time - srec.received_time)
                : static_cast<int64_t>(now - srec.received_time));
      f.Set("bill_usd", srec.bill_usd);
      f.Set("predicted_bill_usd", sess->predicted_bill);
      log->Emit("query.settle", std::move(f));
    }
    MaybeUpdateAdaptiveWatermark(now);
    if (tracer != nullptr && srec.span_id != 0) {
      tracer->Annotate(srec.span_id, "state", "failed");
      tracer->Annotate(srec.span_id, "error", qrec.error);
      tracer->EndSpan(srec.span_id);
    }
    if (srec.session_id != 0) {
      if (ClientSession* cs = client_sessions_.Find(srec.session_id)) {
        cs->queries_settled++;
      }
    }
    // Settle the record fully, THEN invoke the callback with stable
    // copies: a callback that re-enters Submit() must never observe (or
    // invalidate) a half-settled record.
    FinishCallback fn = std::move(sess->callback);
    sess->callback = nullptr;
    if (fn) {
      const SubmissionRecord snapshot = srec;
      fn(snapshot, qrec);
    }
    return;
  }
  srec.mv_hit = qrec.mv_hit;
  srec.mv_saved_bytes = qrec.mv_saved_bytes;
  // Scanned bytes bill at the full service-level rate; bytes an MV hit
  // avoided scanning bill at the reuse fraction. A full hit therefore
  // costs `fraction × original bill` — strictly cheaper, never free, and
  // auditable from the counters below.
  srec.bill_usd =
      params_.prices.Bill(srec.level, qrec.bytes_scanned) +
      params_.mv_reuse_bill_fraction *
          params_.prices.Bill(srec.level, qrec.mv_saved_bytes);
  total_billed_ += srec.bill_usd;
  metrics_.Add("billed_usd", srec.bill_usd);
  if (qrec.mv_hit) metrics_.Add("mv_hits", 1);
  if (qrec.mv_saved_bytes > 0) {
    metrics_.Add("mv_saved_bytes", static_cast<double>(qrec.mv_saved_bytes));
    metrics_.Add("mv_discount_usd",
                 (1.0 - params_.mv_reuse_bill_fraction) *
                     params_.prices.Bill(srec.level, qrec.mv_saved_bytes));
  }
  // Enforce the result-size limit client-side.
  const int64_t result_limit = sess->result_limit;
  QueryRecord limited = qrec;
  if (result_limit > 0 && limited.result != nullptr &&
      limited.result->num_rows() > static_cast<uint64_t>(result_limit)) {
    auto truncated = std::make_shared<Table>();
    int64_t remaining = result_limit;
    for (const auto& batch : limited.result->batches()) {
      if (remaining <= 0) break;
      if (static_cast<int64_t>(batch->num_rows()) <= remaining) {
        truncated->AddBatch(batch);
        remaining -= static_cast<int64_t>(batch->num_rows());
      } else {
        std::vector<uint32_t> sel;
        for (int64_t i = 0; i < remaining; ++i) {
          sel.push_back(static_cast<uint32_t>(i));
        }
        truncated->AddBatch(batch->Gather(sel));
        remaining = 0;
      }
    }
    limited.result = truncated;
  }
  srec.result = limited.result;
  if (tracer != nullptr && srec.span_id != 0) {
    tracer->Annotate(srec.span_id, "state", "finished");
    tracer->Annotate(srec.span_id, "bytes_scanned", qrec.bytes_scanned);
    tracer->Annotate(srec.span_id, "bill_usd", std::to_string(srec.bill_usd));
    tracer->EndSpan(srec.span_id);
  }
  if (srec.session_id != 0) {
    if (ClientSession* cs = client_sessions_.Find(srec.session_id)) {
      cs->queries_settled++;
      cs->billed_usd += srec.bill_usd;
    }
  }
  if (EventLog* log = SyncedLog()) {
    Json f = Json::Object();
    f.Set("server_id", srec.server_id);
    f.Set("level", ServiceLevelName(srec.level));
    f.Set("state", "finished");
    f.Set("verdict", SloVerdictName(slo_out.verdict));
    if (slo_out.scored_margin) {
      f.Set("margin_ms", static_cast<int64_t>(slo_out.margin_ms));
    }
    f.Set("pending_ms",
          qrec.start_time >= 0
              ? static_cast<int64_t>(qrec.start_time - srec.received_time)
              : static_cast<int64_t>(0));
    f.Set("bill_usd", srec.bill_usd);
    f.Set("predicted_bill_usd", sess->predicted_bill);
    f.Set("bytes_scanned", static_cast<int64_t>(qrec.bytes_scanned));
    log->Emit("query.settle", std::move(f));
  }
  MaybeUpdateAdaptiveWatermark(now);
  // Settle fully first, then call out with stable copies (`limited` is a
  // local; the record snapshot survives any re-entrant Submit).
  FinishCallback fn = std::move(sess->callback);
  sess->callback = nullptr;
  if (fn) {
    const SubmissionRecord snapshot = srec;
    fn(snapshot, limited);
  }
}

// ---------------------------------------------------------------------------
// Held-query release

void QueryServer::SchedulePoll() {
  if (stopped_) return;
  if (relaxed_held_.empty() && best_effort_held_.empty()) return;
  SimTime delay = params_.poll_interval;
  if (!relaxed_held_.empty()) {
    // Deadlines are monotonic in arrival order (fixed grace period), so
    // the front of the deque is the nearest one.
    const SimTime until = relaxed_held_.front().deadline - clock_->Now();
    delay = std::min(delay, std::max<SimTime>(until, 0));
  }
  const SimTime fire = clock_->Now() + delay;
  if (polling_) {
    if (fire >= poll_fire_time_) return;  // a poll at least as early exists
    clock_->Cancel(poll_event_);
  }
  polling_ = true;
  poll_fire_time_ = fire;
  poll_event_ = clock_->Schedule(delay, [this] {
    ServerMessage msg;
    msg.kind = ServerMessage::Kind::kPoll;
    Enqueue(std::move(msg));
  });
}

void QueryServer::HandlePoll() {
  polling_ = false;
  if (stopped_) return;
  const SimTime now = clock_->Now();
  Tracer* tracer = SyncedTracer();
  // Windowed telemetry feed: combined hold-queue + coordinator-queue
  // depth, then let the adaptive controller react before this poll's
  // best-effort release gate runs.
  slo_.ObserveQueueDepth(
      now, static_cast<double>(HeldQueries() + coordinator_->QueueDepth()));
  MaybeUpdateAdaptiveWatermark(now);

  // Relaxed: dispatch when concurrency drops below the relaxed watermark
  // or the grace period expires (paper §3.2(2)). Signals are re-read per
  // iteration — each dispatch raises concurrency.
  while (!relaxed_held_.empty()) {
    const Held& h = relaxed_held_.front();
    if (admission_.ShouldReleaseRelaxed(Signals()) || now >= h.deadline) {
      const Held released = h;
      relaxed_held_.pop_front();
      UpdateExternalPending();
      const char* released_by =
          now >= released.deadline ? "grace-expired" : "capacity";
      if (tracer != nullptr && released.hold_span != 0) {
        tracer->Annotate(released.hold_span, "released_by", released_by);
        tracer->EndSpan(released.hold_span);
      }
      if (EventLog* log = SyncedLog()) {
        Json f = Json::Object();
        f.Set("server_id", released.server_id);
        f.Set("level", ServiceLevelName(ServiceLevel::kRelaxed));
        f.Set("released_by", released_by);
        if (const Session* s = sessions_.Find(released.server_id)) {
          f.Set("held_ms",
                static_cast<int64_t>(now - s->record.received_time));
        }
        log->Emit("admission.release", std::move(f));
      }
      DispatchToCoordinator(released.server_id, /*cf_enabled=*/false);
    } else {
      break;
    }
  }

  // Best-of-effort: dispatch one at a time while the cluster is nearly
  // idle (below the best-effort watermark), absorbing would-be
  // scale-ins. An active Immediate burst keeps the gate closed.
  while (!best_effort_held_.empty() &&
         admission_.ShouldReleaseBestEffort(Signals(), now)) {
    const Held released = best_effort_held_.front();
    best_effort_held_.pop_front();
    UpdateExternalPending();
    if (tracer != nullptr && released.hold_span != 0) {
      tracer->Annotate(released.hold_span, "released_by", "low-watermark");
      tracer->EndSpan(released.hold_span);
    }
    if (EventLog* log = SyncedLog()) {
      Json f = Json::Object();
      f.Set("server_id", released.server_id);
      f.Set("level", ServiceLevelName(ServiceLevel::kBestEffort));
      f.Set("released_by", "low-watermark");
      if (const Session* s = sessions_.Find(released.server_id)) {
        f.Set("held_ms",
              static_cast<int64_t>(now - s->record.received_time));
      }
      log->Emit("admission.release", std::move(f));
    }
    DispatchToCoordinator(released.server_id, /*cf_enabled=*/false);
    // Dispatch raises concurrency; the release gate re-checks naturally.
  }

  metrics_.Record("held_queries", now, static_cast<double>(HeldQueries()));
  if (!relaxed_held_.empty() || !best_effort_held_.empty()) {
    SchedulePoll();
  }
}

size_t QueryServer::PreemptQueuedBestEffort(Tracer* tracer) {
  if (dispatched_best_effort_.empty()) return 0;
  // Recall every best-effort query still waiting in the coordinator's VM
  // queue; running/finished ones stay (preemption is non-destructive).
  size_t recalled = 0;
  std::vector<int64_t> still_dispatched;
  still_dispatched.reserve(dispatched_best_effort_.size());
  for (const int64_t server_id : dispatched_best_effort_) {
    Session* sess = sessions_.Find(server_id);
    if (sess == nullptr || sess->record.billed) continue;
    QuerySpec spec;
    if (!coordinator_->TryRecall(sess->record.coordinator_id, &spec)) {
      still_dispatched.push_back(server_id);
      continue;
    }
    SubmissionRecord& rec = sess->record;
    rec.coordinator_id = 0;
    rec.dispatch_time = -1;
    sess->spec = std::move(spec);
    sess->has_spec = true;
    metrics_.Add("best_effort_preemptions", 1);
    recalled++;
    Held held{server_id, 0};
    if (tracer != nullptr) {
      held.hold_span = tracer->StartSpan("hold", rec.span_id);
      tracer->Annotate(held.hold_span, "level", ServiceLevelName(rec.level));
      tracer->Annotate(held.hold_span, "reason", "preempted-immediate-burst");
    }
    best_effort_held_.push_back(held);
  }
  dispatched_best_effort_.swap(still_dispatched);
  UpdateExternalPending();
  SchedulePoll();
  return recalled;
}

void QueryServer::MaybeUpdateAdaptiveWatermark(SimTime now) {
  if (!admission_.params().adaptive_watermarks) return;
  AdaptiveInputs in;
  in.violation_rate = slo_.WindowViolationRate(ServiceLevel::kBestEffort, now);
  in.queue_wait_p99_ms =
      slo_.WindowQueueWaitQuantile(ServiceLevel::kBestEffort, 99.0, now);
  in.grace_ms = static_cast<double>(slo_.GraceFor(ServiceLevel::kBestEffort));
  if (!best_effort_held_.empty()) {
    if (const Session* s = sessions_.Find(best_effort_held_.front().server_id)) {
      in.oldest_hold_ms = static_cast<double>(now - s->record.received_time);
    }
  }
  const WatermarkUpdate u = admission_.UpdateAdaptiveWatermark(in, Signals());
  if (!u.changed) return;
  metrics_.SetGauge("best_effort_watermark_adaptive", u.new_value);
  metrics_.Add(u.raised ? "adaptive_watermark_raises"
                        : "adaptive_watermark_decays",
               1);
  if (EventLog* log = SyncedLog()) {
    Json f = Json::Object();
    f.Set("old", u.old_value);
    f.Set("new", u.new_value);
    f.Set("violation_rate", in.violation_rate);
    f.Set("oldest_hold_ms", in.oldest_hold_ms);
    log->Emit("admission.watermark", std::move(f));
  }
}

SloReport QueryServer::SloReport() { return slo_.Report(clock_->Now()); }

AdmissionSignals QueryServer::Signals() const {
  AdmissionSignals sig;
  sig.engine_concurrency = coordinator_->EngineConcurrency();
  sig.total_concurrency = coordinator_->Concurrency();
  const CoordinatorParams& cp = coordinator_->params();
  sig.high_watermark = cp.vm.high_watermark;
  sig.low_watermark = cp.vm.low_watermark;
  sig.free_slots = coordinator_->vm_cluster().FreeSlots();
  sig.queue_depth = coordinator_->QueueDepth();
  sig.cf_available =
      coordinator_->cf_service().CanInvoke(cp.default_cf_workers);
  sig.bytes_per_vcpu_second = cp.bytes_per_vcpu_second;
  return sig;
}

void QueryServer::UpdateExternalPending() {
  coordinator_->SetExternalPending(
      static_cast<int>(relaxed_held_.size()),
      static_cast<int>(best_effort_held_.size()));
}

// ---------------------------------------------------------------------------
// Client sessions

int64_t QueryServer::OpenSession() {
  const int64_t id = next_session_id_++;
  ClientSession* cs = client_sessions_.Emplace(id);
  cs->id = id;
  cs->opened_time = clock_->Now();
  cs->open = true;
  open_sessions_++;
  metrics_.Add("sessions_opened", 1);
  return id;
}

bool QueryServer::CloseSession(int64_t session_id) {
  ClientSession* cs = client_sessions_.Find(session_id);
  if (cs == nullptr || !cs->open) return false;
  cs->open = false;
  open_sessions_--;
  metrics_.Add("sessions_closed", 1);
  return true;
}

const ClientSession* QueryServer::GetSession(int64_t session_id) const {
  return client_sessions_.Find(session_id);
}

// ---------------------------------------------------------------------------
// Status

Result<QueryServer::StatusView> QueryServer::GetStatus(
    int64_t server_id) const {
  const Session* sess = sessions_.Find(server_id);
  if (sess == nullptr) {
    return Status::NotFound("no such submission: " + std::to_string(server_id));
  }
  const SubmissionRecord& rec = sess->record;
  StatusView view;
  view.level = rec.level;
  view.bill_usd = rec.bill_usd;
  if (rec.cancelled) {
    view.state = QueryState::kFailed;
    view.cancelled = true;
    view.error = rec.error;
    view.pending_ms = clock_->Now() - rec.received_time;
    return view;
  }
  if (rec.coordinator_id == 0) {
    view.state = QueryState::kPending;
    view.pending_ms = clock_->Now() - rec.received_time;
    return view;
  }
  const QueryRecord* qrec = coordinator_->GetQuery(rec.coordinator_id);
  if (qrec == nullptr) return Status::Internal("dangling coordinator id");
  view.state = qrec->state;
  view.used_cf = qrec->used_cf;
  view.mv_hit = qrec->mv_hit;
  view.mv_saved_bytes = qrec->mv_saved_bytes;
  view.error = qrec->error;
  if (qrec->start_time >= 0) {
    // Pending covers server hold + coordinator queue.
    view.pending_ms = qrec->start_time - rec.received_time;
  } else {
    view.pending_ms = clock_->Now() - rec.received_time;
  }
  view.execution_ms = qrec->ExecutionTime();
  view.profile = qrec->profile;
  return view;
}

std::vector<QueryServer::StatusView> QueryServer::GetStatusBatch(
    const std::vector<int64_t>& ids, std::vector<bool>* found) const {
  // Stage 1: copy the server-side records out, one lock per shard
  // touched. Stage 2: resolve coordinator-side state lock-free (the
  // coordinator is simulation-thread-owned, like the seed's GetStatus).
  std::vector<SubmissionRecord> recs;
  std::vector<bool> present;
  sessions_.ProjectBatch(
      ids, [](const Session& s) { return s.record; }, &recs, &present);
  std::vector<StatusView> out(ids.size());
  if (found != nullptr) found->assign(ids.size(), false);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!present[i]) continue;
    if (found != nullptr) (*found)[i] = true;
    const SubmissionRecord& rec = recs[i];
    StatusView& view = out[i];
    view.level = rec.level;
    view.bill_usd = rec.bill_usd;
    if (rec.cancelled) {
      view.state = QueryState::kFailed;
      view.cancelled = true;
      view.error = rec.error;
      view.pending_ms = clock_->Now() - rec.received_time;
      continue;
    }
    if (rec.coordinator_id == 0) {
      view.state = QueryState::kPending;
      view.pending_ms = clock_->Now() - rec.received_time;
      continue;
    }
    const QueryRecord* qrec = coordinator_->GetQuery(rec.coordinator_id);
    if (qrec == nullptr) continue;
    view.state = qrec->state;
    view.used_cf = qrec->used_cf;
    view.mv_hit = qrec->mv_hit;
    view.mv_saved_bytes = qrec->mv_saved_bytes;
    view.error = qrec->error;
    if (qrec->start_time >= 0) {
      view.pending_ms = qrec->start_time - rec.received_time;
    } else {
      view.pending_ms = clock_->Now() - rec.received_time;
    }
    view.execution_ms = qrec->ExecutionTime();
    view.profile = qrec->profile;
  }
  return out;
}

MetricsRegistry QueryServer::MetricsSnapshot() {
  MetricsRegistry out = metrics_;
  out.MergeFrom(coordinator_->MetricsSnapshot());
  slo_.MergeInto(&out, clock_->Now());
  if (const EventLog* log = coordinator_->event_log()) {
    out.SetGauge("event_log_events_total",
                 static_cast<double>(log->total_emitted()));
    out.SetGauge("event_log_dropped", static_cast<double>(log->dropped()));
  }
  out.SetGauge("held_queries_now", static_cast<double>(HeldQueries()));
  out.SetGauge("total_billed_usd", total_billed_);
  out.SetGauge("open_sessions", static_cast<double>(open_sessions_));
  const DispatcherStats& ds = mailbox_.stats();
  out.SetGauge("dispatcher_messages", static_cast<double>(ds.messages));
  out.SetGauge("dispatcher_pumps", static_cast<double>(ds.pumps));
  out.SetGauge("dispatcher_max_batch", static_cast<double>(ds.max_batch));
  out.SetGauge("dispatcher_reentrant_enqueues",
               static_cast<double>(ds.reentrant_enqueues));
  return out;
}

const SubmissionRecord* QueryServer::GetRecord(int64_t server_id) const {
  const Session* sess = sessions_.Find(server_id);
  return sess == nullptr ? nullptr : &sess->record;
}

}  // namespace pixels
