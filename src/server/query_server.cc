#include "server/query_server.h"

#include <algorithm>

#include "common/logging.h"

namespace pixels {

QueryServer::QueryServer(SimClock* clock, Coordinator* coordinator,
                         QueryServerParams params)
    : clock_(clock), coordinator_(coordinator), params_(params) {}

Tracer* QueryServer::SyncedTracer() {
  Tracer* tracer = coordinator_->tracer();
  if (tracer == nullptr || !tracer->enabled()) return nullptr;
  const SimTime now = clock_->Now();
  tracer->SyncTime(now);
  SyncLogTime(now);
  return tracer;
}

void QueryServer::Stop() {
  stopped_ = true;
  if (polling_) {
    clock_->Cancel(poll_event_);
    polling_ = false;
  }
}

void QueryServer::SchedulePoll() {
  if (stopped_) return;
  if (relaxed_held_.empty() && best_effort_held_.empty()) return;
  SimTime delay = params_.poll_interval;
  if (!relaxed_held_.empty()) {
    // Deadlines are monotonic in arrival order (fixed grace period), so
    // the front of the deque is the nearest one.
    const SimTime until = relaxed_held_.front().deadline - clock_->Now();
    delay = std::min(delay, std::max<SimTime>(until, 0));
  }
  const SimTime fire = clock_->Now() + delay;
  if (polling_) {
    if (fire >= poll_fire_time_) return;  // a poll at least as early exists
    clock_->Cancel(poll_event_);
  }
  polling_ = true;
  poll_fire_time_ = fire;
  poll_event_ = clock_->Schedule(delay, [this] { Poll(); });
}

int64_t QueryServer::Submit(Submission submission, FinishCallback on_finish) {
  if (stopped_) {
    // A stopped server no longer polls, so a held query could never be
    // dispatched — reject instead of accepting work that would hang.
    metrics_.Add("submissions_rejected", 1);
    return -1;
  }
  const int64_t id = next_id_++;
  SubmissionRecord rec;
  rec.server_id = id;
  rec.level = submission.level;
  rec.received_time = clock_->Now();
  records_[id] = rec;
  if (on_finish) callbacks_[id] = std::move(on_finish);

  // Apply the result-size limit by wrapping the SQL? The engine applies
  // LIMIT in the plan; here we record the effective limit on the spec for
  // real executions (client-side truncation otherwise).
  if (submission.result_limit <= 0) {
    submission.result_limit = params_.default_result_limit;
  }
  pending_specs_[id] = std::move(submission);
  metrics_.Add("submissions", 1);
  metrics_.Add(std::string("submissions_") +
                   ServiceLevelName(records_[id].level),
               1);
  Tracer* tracer = SyncedTracer();
  if (tracer != nullptr) {
    SubmissionRecord& srec = records_[id];
    srec.span_id = tracer->StartSpan("query");
    tracer->Annotate(srec.span_id, "server_id", static_cast<uint64_t>(id));
    tracer->Annotate(srec.span_id, "level", ServiceLevelName(srec.level));
  }

  switch (records_[id].level) {
    case ServiceLevel::kImmediate:
      // Paper: received and immediately submitted, CF enabled.
      DispatchToCoordinator(id, /*cf_enabled=*/true);
      break;
    case ServiceLevel::kRelaxed:
      // Paper: submitted with CF disabled if concurrency below the high
      // watermark; otherwise held until the grace period expires.
      if (!coordinator_->EngineAboveHighWatermark()) {
        DispatchToCoordinator(id, /*cf_enabled=*/false);
      } else {
        Held held{id, clock_->Now() + params_.relaxed_grace_period};
        if (tracer != nullptr) {
          held.hold_span = tracer->StartSpan("hold", records_[id].span_id);
          tracer->Annotate(held.hold_span, "level",
                           ServiceLevelName(ServiceLevel::kRelaxed));
        }
        relaxed_held_.push_back(held);
        coordinator_->SetExternalPending(
            static_cast<int>(relaxed_held_.size()));
        SchedulePoll();
      }
      break;
    case ServiceLevel::kBestEffort:
      // Paper: only scheduled when concurrency is below the low watermark.
      if (coordinator_->BelowLowWatermark()) {
        DispatchToCoordinator(id, /*cf_enabled=*/false);
      } else {
        Held held{id, 0};
        if (tracer != nullptr) {
          held.hold_span = tracer->StartSpan("hold", records_[id].span_id);
          tracer->Annotate(held.hold_span, "level",
                           ServiceLevelName(ServiceLevel::kBestEffort));
        }
        best_effort_held_.push_back(held);
        SchedulePoll();
      }
      break;
  }
  return id;
}

void QueryServer::DispatchToCoordinator(int64_t server_id, bool cf_enabled) {
  auto spec_it = pending_specs_.find(server_id);
  if (spec_it == pending_specs_.end()) return;
  Submission submission = std::move(spec_it->second);
  pending_specs_.erase(spec_it);

  SubmissionRecord& rec = records_[server_id];
  rec.dispatch_time = clock_->Now();
  metrics_.Observe(std::string("queue_wait_ms{level=\"") +
                       ServiceLevelName(rec.level) + "\"}",
                   static_cast<double>(rec.dispatch_time -
                                       rec.received_time));

  QuerySpec spec = std::move(submission.query);
  spec.cf_enabled = cf_enabled;
  spec.trace_parent = rec.span_id;
  const int64_t result_limit = submission.result_limit;

  rec.coordinator_id = coordinator_->Submit(
      std::move(spec),
      [this, server_id, result_limit](const QueryRecord& qrec) {
        SubmissionRecord& srec = records_[server_id];
        // Idempotence: the first completion settles the submission. A
        // double-fired or re-invoked completion (CF re-invocation makes
        // this a live hazard) must never accumulate the bill twice.
        if (srec.billed) return;
        srec.billed = true;
        metrics_.Observe(std::string("query_latency_ms{level=\"") +
                             ServiceLevelName(srec.level) + "\"}",
                         static_cast<double>(clock_->Now() -
                                             srec.received_time));
        Tracer* tracer = SyncedTracer();
        if (qrec.state == QueryState::kFailed) {
          // A failed query is never billed and delivers no result; the
          // error string stays visible through GetStatus.
          srec.bill_usd = 0;
          metrics_.Add("queries_failed", 1);
          if (tracer != nullptr && srec.span_id != 0) {
            tracer->Annotate(srec.span_id, "state", "failed");
            tracer->Annotate(srec.span_id, "error", qrec.error);
            tracer->EndSpan(srec.span_id);
          }
          auto failed_cb = callbacks_.find(server_id);
          if (failed_cb != callbacks_.end()) {
            FinishCallback fn = std::move(failed_cb->second);
            callbacks_.erase(failed_cb);
            fn(srec, qrec);
          }
          return;
        }
        srec.mv_hit = qrec.mv_hit;
        srec.mv_saved_bytes = qrec.mv_saved_bytes;
        // Scanned bytes bill at the full service-level rate; bytes an MV
        // hit avoided scanning bill at the reuse fraction. A full hit
        // therefore costs `fraction × original bill` — strictly cheaper,
        // never free, and auditable from the counters below.
        srec.bill_usd =
            params_.prices.Bill(srec.level, qrec.bytes_scanned) +
            params_.mv_reuse_bill_fraction *
                params_.prices.Bill(srec.level, qrec.mv_saved_bytes);
        total_billed_ += srec.bill_usd;
        metrics_.Add("billed_usd", srec.bill_usd);
        if (qrec.mv_hit) metrics_.Add("mv_hits", 1);
        if (qrec.mv_saved_bytes > 0) {
          metrics_.Add("mv_saved_bytes",
                       static_cast<double>(qrec.mv_saved_bytes));
          metrics_.Add("mv_discount_usd",
                       (1.0 - params_.mv_reuse_bill_fraction) *
                           params_.prices.Bill(srec.level,
                                               qrec.mv_saved_bytes));
        }
        // Enforce the result-size limit client-side.
        QueryRecord limited = qrec;
        if (result_limit > 0 && limited.result != nullptr &&
            limited.result->num_rows() >
                static_cast<uint64_t>(result_limit)) {
          auto truncated = std::make_shared<Table>();
          int64_t remaining = result_limit;
          for (const auto& batch : limited.result->batches()) {
            if (remaining <= 0) break;
            if (static_cast<int64_t>(batch->num_rows()) <= remaining) {
              truncated->AddBatch(batch);
              remaining -= static_cast<int64_t>(batch->num_rows());
            } else {
              std::vector<uint32_t> sel;
              for (int64_t i = 0; i < remaining; ++i) {
                sel.push_back(static_cast<uint32_t>(i));
              }
              truncated->AddBatch(batch->Gather(sel));
              remaining = 0;
            }
          }
          limited.result = truncated;
        }
        srec.result = limited.result;
        if (tracer != nullptr && srec.span_id != 0) {
          tracer->Annotate(srec.span_id, "state", "finished");
          tracer->Annotate(srec.span_id, "bytes_scanned",
                           qrec.bytes_scanned);
          tracer->Annotate(srec.span_id, "bill_usd",
                           std::to_string(srec.bill_usd));
          tracer->EndSpan(srec.span_id);
        }
        auto cb = callbacks_.find(server_id);
        if (cb != callbacks_.end()) {
          FinishCallback fn = std::move(cb->second);
          callbacks_.erase(cb);
          fn(srec, limited);
        }
      });
}

void QueryServer::Poll() {
  polling_ = false;
  const SimTime now = clock_->Now();
  Tracer* tracer = SyncedTracer();

  // Relaxed: dispatch when concurrency drops below the high watermark or
  // the grace period expires (paper §3.2(2)).
  while (!relaxed_held_.empty()) {
    const Held& h = relaxed_held_.front();
    if (!coordinator_->EngineAboveHighWatermark() || now >= h.deadline) {
      const Held released = h;
      relaxed_held_.pop_front();
      coordinator_->SetExternalPending(static_cast<int>(relaxed_held_.size()));
      if (tracer != nullptr && released.hold_span != 0) {
        tracer->Annotate(released.hold_span, "released_by",
                         now >= released.deadline ? "grace-expired"
                                                  : "capacity");
        tracer->EndSpan(released.hold_span);
      }
      DispatchToCoordinator(released.server_id, /*cf_enabled=*/false);
    } else {
      break;
    }
  }

  // Best-of-effort: dispatch one at a time while the cluster is nearly
  // idle (below the low watermark), absorbing would-be scale-ins.
  while (!best_effort_held_.empty() && coordinator_->BelowLowWatermark()) {
    const Held released = best_effort_held_.front();
    best_effort_held_.pop_front();
    if (tracer != nullptr && released.hold_span != 0) {
      tracer->Annotate(released.hold_span, "released_by", "low-watermark");
      tracer->EndSpan(released.hold_span);
    }
    DispatchToCoordinator(released.server_id, /*cf_enabled=*/false);
    // Dispatch raises concurrency; BelowLowWatermark re-checks naturally.
  }

  metrics_.Record("held_queries", now, static_cast<double>(HeldQueries()));
  if (!relaxed_held_.empty() || !best_effort_held_.empty()) {
    SchedulePoll();
  }
}

Result<QueryServer::StatusView> QueryServer::GetStatus(int64_t server_id) const {
  auto it = records_.find(server_id);
  if (it == records_.end()) {
    return Status::NotFound("no such submission: " + std::to_string(server_id));
  }
  const SubmissionRecord& rec = it->second;
  StatusView view;
  view.level = rec.level;
  view.bill_usd = rec.bill_usd;
  if (rec.coordinator_id == 0) {
    view.state = QueryState::kPending;
    view.pending_ms = clock_->Now() - rec.received_time;
    return view;
  }
  const QueryRecord* qrec = coordinator_->GetQuery(rec.coordinator_id);
  if (qrec == nullptr) return Status::Internal("dangling coordinator id");
  view.state = qrec->state;
  view.used_cf = qrec->used_cf;
  view.mv_hit = qrec->mv_hit;
  view.mv_saved_bytes = qrec->mv_saved_bytes;
  view.error = qrec->error;
  if (qrec->start_time >= 0) {
    // Pending covers server hold + coordinator queue.
    view.pending_ms = qrec->start_time - rec.received_time;
  } else {
    view.pending_ms = clock_->Now() - rec.received_time;
  }
  view.execution_ms = qrec->ExecutionTime();
  view.profile = qrec->profile;
  return view;
}

MetricsRegistry QueryServer::MetricsSnapshot() {
  MetricsRegistry out = metrics_;
  out.MergeFrom(coordinator_->MetricsSnapshot());
  out.SetGauge("held_queries_now", static_cast<double>(HeldQueries()));
  out.SetGauge("total_billed_usd", total_billed_);
  return out;
}

const SubmissionRecord* QueryServer::GetRecord(int64_t server_id) const {
  auto it = records_.find(server_id);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace pixels
