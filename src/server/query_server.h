// The Query Server (paper §3.2): receives queries from clients (e.g.
// Pixels-Rover), schedules them at the requested service level, and bills
// per TB scanned.
//
//  - Immediate: submitted to the coordinator at once with CF enabled.
//  - Relaxed: submitted with CF disabled when VM concurrency is below the
//    high watermark; otherwise held in the server queue until capacity
//    appears or the grace period expires (then submitted anyway — the
//    coordinator queues it for VMs, still without CF).
//  - Best-of-effort: only submitted when VM concurrency is below the low
//    watermark; no pending-time guarantee.
#pragma once

#include <deque>

#include "server/service_level.h"
#include "turbo/coordinator.h"

namespace pixels {

/// Query-server configuration.
struct QueryServerParams {
  PriceList prices;
  /// Grace period for relaxed queries (paper example: 5 minutes).
  SimTime relaxed_grace_period = 5 * kMinutes;
  /// Interval at which held queries re-check cluster load.
  SimTime poll_interval = 2 * kSeconds;
  /// Cap on result rows returned to clients (the submission form's
  /// result-size limit; 0 = unlimited).
  int64_t default_result_limit = 0;
  /// Fraction of the scan price billed for bytes a materialized-view hit
  /// avoided scanning. Reused results are discounted, not free: the bill
  /// for a full hit is this fraction of the original query's bill, which
  /// keeps revenue auditable against `mv_saved_bytes`.
  double mv_reuse_bill_fraction = 0.1;
};

/// A submission through the query server.
struct Submission {
  QuerySpec query;
  ServiceLevel level = ServiceLevel::kImmediate;
  /// Overrides the server's default result-size limit when positive.
  int64_t result_limit = 0;
};

/// Billing + scheduling record kept per submission.
struct SubmissionRecord {
  int64_t server_id = 0;       // id in the query server
  int64_t coordinator_id = 0;  // id once submitted to the coordinator (0 = held)
  ServiceLevel level = ServiceLevel::kImmediate;
  SimTime received_time = 0;
  SimTime dispatch_time = -1;  // when handed to the coordinator
  double bill_usd = 0;         // $/TB-scan price charged to the user
  /// Billing idempotence guard: set when the finish callback settles this
  /// submission (bill accumulated, or waived for a failed query). A
  /// double-fired or re-invoked completion — a live hazard with CF worker
  /// re-invocation — can never accumulate the bill twice.
  bool billed = false;
  /// The whole query was answered from the materialized-view store.
  bool mv_hit = false;
  /// Scan bytes MV reuse avoided; billed at `mv_reuse_bill_fraction`.
  uint64_t mv_saved_bytes = 0;
  /// The result as returned to the client, after the submission form's
  /// result-size limit was applied (null until finished).
  TablePtr result;
  /// Root "query" span covering the submission from receipt to billing
  /// (0 when the coordinator's tracer is off).
  uint64_t span_id = 0;
};

/// The serverless query frontend.
class QueryServer {
 public:
  QueryServer(SimClock* clock, Coordinator* coordinator,
              QueryServerParams params = {});

  /// Stops the polling loop (lets SimClock::RunAll terminate).
  void Stop();

  using FinishCallback = std::function<void(const SubmissionRecord&,
                                            const QueryRecord&)>;

  /// Accepts a query at a service level. `on_finish` fires with both the
  /// server-side record (incl. the bill) and the engine-side record.
  /// Returns -1 (no record created, callback never fires) once the
  /// server has been stopped: held queries would otherwise sit in the
  /// stopped polling loop's deques forever while the caller holds a
  /// seemingly valid id.
  int64_t Submit(Submission submission, FinishCallback on_finish = nullptr);

  /// Combined view of one submission's status (pending covers both the
  /// server hold queue and the coordinator queue).
  struct StatusView {
    QueryState state = QueryState::kPending;
    ServiceLevel level = ServiceLevel::kImmediate;
    SimTime pending_ms = -1;
    SimTime execution_ms = -1;
    double bill_usd = 0;
    bool used_cf = false;
    bool mv_hit = false;
    uint64_t mv_saved_bytes = 0;
    std::string error;
    /// EXPLAIN ANALYZE report of the real execution (empty unless the
    /// coordinator ran with trace_level=full).
    std::string profile;
  };
  Result<StatusView> GetStatus(int64_t server_id) const;

  const SubmissionRecord* GetRecord(int64_t server_id) const;

  /// Queries currently held by the server (not yet at the coordinator).
  size_t HeldQueries() const { return relaxed_held_.size() + best_effort_held_.size(); }

  double TotalBilledUsd() const { return total_billed_; }
  Coordinator* coordinator() const { return coordinator_; }
  const QueryServerParams& params() const { return params_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Everything in one registry: the server's own counters and
  /// per-service-level histograms (queue_wait_ms{level=...},
  /// query_latency_ms{level=...}) merged with the coordinator's snapshot
  /// (VM/CF/cache/MV/storage). ToPrometheusText() on the result is the
  /// system's scrape endpoint.
  MetricsRegistry MetricsSnapshot();

 private:
  struct Held {
    int64_t server_id;
    SimTime deadline;       // grace-period expiry (relaxed only)
    uint64_t hold_span = 0; // "hold" span while in the server queue
  };

  void Poll();
  /// The coordinator's tracer when tracing is on, else null; syncs the
  /// tracer's and logger's virtual-time mirrors as a side effect (always
  /// called on the simulation thread).
  Tracer* SyncedTracer();
  /// (Re)schedules the next poll at `min(poll_interval, nearest relaxed
  /// deadline - now)`, so a grace-period expiry dispatches at its exact
  /// virtual time instead of overshooting by up to one poll interval. An
  /// already-scheduled later poll is cancelled and pulled forward.
  void SchedulePoll();
  void DispatchToCoordinator(int64_t server_id, bool cf_enabled);

  SimClock* clock_;
  Coordinator* coordinator_;
  QueryServerParams params_;

  int64_t next_id_ = 1;
  std::map<int64_t, SubmissionRecord> records_;
  std::map<int64_t, Submission> pending_specs_;
  std::map<int64_t, FinishCallback> callbacks_;
  std::deque<Held> relaxed_held_;
  std::deque<Held> best_effort_held_;
  bool polling_ = false;
  uint64_t poll_event_ = 0;
  SimTime poll_fire_time_ = 0;  // virtual time of the scheduled poll
  bool stopped_ = false;
  double total_billed_ = 0;
  MetricsRegistry metrics_;
};

}  // namespace pixels
