// The Query Server (paper §3.2): receives queries from clients (e.g.
// Pixels-Rover), schedules them at the requested service level, and bills
// per TB scanned.
//
//  - Immediate: submitted to the coordinator at once with CF enabled
//    (or, with cost-based placement on, CF only when economical).
//  - Relaxed: submitted with CF disabled when VM concurrency is below the
//    relaxed watermark; otherwise held in the server queue until capacity
//    appears or the grace period expires (then submitted anyway — the
//    coordinator queues it for VMs, still without CF).
//  - Best-of-effort: only submitted when VM concurrency is below the
//    best-effort watermark; no pending-time guarantee. During Immediate
//    bursts it can additionally be deferred and preempted (recalled from
//    the coordinator queue) when the admission policy says so.
//
// Internally the server is an actor: submissions, completions, and poll
// ticks are messages through an MPSC mailbox drained by a run-to-
// completion pump on the simulation thread, and per-submission state
// lives in sharded tables (stable node pointers, per-shard locks) so
// millions of sessions stay tractable and batched status polls do not
// serialize against the dispatcher. With `async_dispatch=false` every
// message is handled by direct call at the submission site — the
// synchronous seed path — and the two modes produce byte-identical
// results, bytes_scanned, and bills for the same arrival schedule.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "server/admission.h"
#include "server/dispatcher.h"
#include "server/service_level.h"
#include "server/session_shard.h"
#include "server/slo_monitor.h"
#include "server/submission.h"
#include "turbo/coordinator.h"

namespace pixels {

/// Query-server configuration.
struct QueryServerParams {
  PriceList prices;
  /// Grace period for relaxed queries (paper example: 5 minutes).
  SimTime relaxed_grace_period = 5 * kMinutes;
  /// Interval at which held queries re-check cluster load.
  SimTime poll_interval = 2 * kSeconds;
  /// Cap on result rows returned to clients (the submission form's
  /// result-size limit; 0 = unlimited).
  int64_t default_result_limit = 0;
  /// Fraction of the scan price billed for bytes a materialized-view hit
  /// avoided scanning. Reused results are discounted, not free: the bill
  /// for a full hit is this fraction of the original query's bill, which
  /// keeps revenue auditable against `mv_saved_bytes`.
  double mv_reuse_bill_fraction = 0.1;
  /// Route every server mutation through the MPSC mailbox + pump (the
  /// actor path). Off = handle messages by direct call at the submission
  /// site (the synchronous seed path). Byte-identical either way.
  bool async_dispatch = true;
  /// Shards of the submission/session tables (rounded up to a power of
  /// two). More shards = less lock contention for concurrent status
  /// reads against millions of entries.
  int session_shards = 16;
  /// Admission-control policy (defaults reproduce the seed gates).
  AdmissionParams admission;
  /// SLA compliance monitor knobs (window span, per-level graces, error
  /// budget). `slo.relaxed_grace < 0` inherits `relaxed_grace_period`.
  SloParams slo;
  /// When set, Stop() exports the coordinator's audit event log as JSON
  /// lines to this path (requires `event_log_capacity > 0` or an external
  /// log on the coordinator).
  std::string event_log_path;
};

/// The serverless query frontend.
class QueryServer {
 public:
  QueryServer(SimClock* clock, Coordinator* coordinator,
              QueryServerParams params = {});

  /// Stops the server: cancels the polling loop (lets SimClock::RunAll
  /// terminate) and fails every still-held query with an explicit
  /// cancelled status — callbacks fire, hold spans end, and the
  /// `submissions_cancelled` metric counts them. Queries already at the
  /// coordinator keep running and settle normally.
  void Stop();

  using FinishCallback = ::pixels::FinishCallback;

  /// Accepts a query at a service level. `on_finish` fires with both the
  /// server-side record (incl. the bill) and the engine-side record.
  /// Returns -1 (no record created, callback never fires) once the
  /// server has been stopped.
  int64_t Submit(Submission submission, FinishCallback on_finish = nullptr);

  /// Opens a client session; submissions carrying the returned id
  /// aggregate per-session counters (queries, bills) in the sharded
  /// session table. Sessions are cheap: opening a million is expected.
  int64_t OpenSession();
  /// Marks a session closed. Returns false for unknown/already-closed.
  bool CloseSession(int64_t session_id);
  /// Stable pointer into the session table (null when unknown).
  const ClientSession* GetSession(int64_t session_id) const;
  size_t OpenSessions() const { return open_sessions_; }
  size_t SessionCount() const { return client_sessions_.Size(); }

  /// Combined view of one submission's status (pending covers both the
  /// server hold queue and the coordinator queue).
  struct StatusView {
    QueryState state = QueryState::kPending;
    ServiceLevel level = ServiceLevel::kImmediate;
    SimTime pending_ms = -1;
    SimTime execution_ms = -1;
    double bill_usd = 0;
    bool used_cf = false;
    bool mv_hit = false;
    uint64_t mv_saved_bytes = 0;
    /// Cancelled while held (server stopped); state reads kFailed.
    bool cancelled = false;
    std::string error;
    /// EXPLAIN ANALYZE report of the real execution (empty unless the
    /// coordinator ran with trace_level=full).
    std::string profile;
  };
  Result<StatusView> GetStatus(int64_t server_id) const;

  /// Batched status poll: one lock acquisition per session shard touched
  /// instead of one per id. `found[i]` is false for unknown ids (their
  /// view is default-constructed).
  std::vector<StatusView> GetStatusBatch(const std::vector<int64_t>& ids,
                                         std::vector<bool>* found) const;

  const SubmissionRecord* GetRecord(int64_t server_id) const;

  /// Queries currently held by the server (not yet at the coordinator).
  size_t HeldQueries() const {
    return relaxed_held_.size() + best_effort_held_.size();
  }

  double TotalBilledUsd() const { return total_billed_; }
  Coordinator* coordinator() const { return coordinator_; }
  const QueryServerParams& params() const { return params_; }
  MetricsRegistry& metrics() { return metrics_; }
  const DispatcherStats& dispatcher_stats() const { return mailbox_.stats(); }
  const AdmissionController& admission() const { return admission_; }

  /// Per-level SLA compliance report: met/violated/excluded counts,
  /// compliance ratio, windowed violation rate, margin stats, and the
  /// rolling error budget. Exact: `met + violated + excluded == settled`
  /// for every level, every run. (Qualified return type: the member name
  /// shadows the struct inside this class scope.)
  ::pixels::SloReport SloReport();

  /// Everything in one registry: the server's own counters and
  /// per-service-level histograms (queue_wait_ms{level=...},
  /// query_latency_ms{level=...}) merged with the coordinator's snapshot
  /// (VM/CF/cache/MV/storage). ToPrometheusText() on the result is the
  /// system's scrape endpoint.
  MetricsRegistry MetricsSnapshot();

 private:
  /// Per-submission actor state. The SubmissionRecord pointer handed out
  /// by GetRecord aliases `record`, which is stable for the submission's
  /// lifetime (node-based shard maps).
  struct Session {
    SubmissionRecord record;
    /// The spec while not at the coordinator (fresh or recalled).
    QuerySpec spec;
    bool has_spec = false;
    int64_t result_limit = 0;
    /// queue_wait_ms is observed once, at the first dispatch.
    bool wait_observed = false;
    /// Predicted costs from the admission decision, echoed in the
    /// `query.settle` audit event next to the actual bill.
    double predicted_bill = 0;
    double predicted_cf_cost = 0;
    FinishCallback callback;
  };

  struct Held {
    int64_t server_id;
    SimTime deadline;        // grace-period expiry (relaxed only)
    uint64_t hold_span = 0;  // "hold" span while in the server queue
  };

  /// Routes a message: async → mailbox push + immediate pump (re-entrant
  /// pushes are absorbed by the active pump); sync → direct call.
  void Enqueue(ServerMessage msg);
  void HandleMessage(ServerMessage&& msg);
  void HandleSubmit(int64_t server_id);
  void HandleCompletion(int64_t server_id, const QueryRecord& qrec);
  void HandlePoll();

  /// Point-in-time load signals for one admission decision.
  AdmissionSignals Signals() const;
  /// Publishes both hold-queue depths to the coordinator (relaxed →
  /// autoscaling backlog; best-effort → scale-in-blocking deferred
  /// signal).
  void UpdateExternalPending();
  /// Fails a held query with cancelled status: zero bill, callback with
  /// a synthetic failed QueryRecord, spans closed, metrics counted.
  void CancelHeld(const Held& held, Tracer* tracer);
  /// Recalls coordinator-queued best-effort queries back into the hold
  /// queue (burst preemption). Returns the number recalled.
  size_t PreemptQueuedBestEffort(Tracer* tracer);

  /// The coordinator's tracer when tracing is on, else null; syncs the
  /// tracer's and logger's virtual-time mirrors as a side effect (always
  /// called on the simulation thread).
  Tracer* SyncedTracer();
  /// The coordinator's audit event log (null = off); syncs its
  /// virtual-time mirror as a side effect.
  EventLog* SyncedLog();
  /// Feeds the windowed best-effort violation rate / queue-wait p99 /
  /// oldest-hold age into the admission controller's adaptive watermark
  /// (no-op unless `admission.adaptive_watermarks`).
  void MaybeUpdateAdaptiveWatermark(SimTime now);
  /// (Re)schedules the next poll at `min(poll_interval, nearest relaxed
  /// deadline - now)`, so a grace-period expiry dispatches at its exact
  /// virtual time instead of overshooting by up to one poll interval. An
  /// already-scheduled later poll is cancelled and pulled forward.
  void SchedulePoll();
  void DispatchToCoordinator(int64_t server_id, bool cf_enabled);

  SimClock* clock_;
  Coordinator* coordinator_;
  QueryServerParams params_;
  AdmissionController admission_;

  int64_t next_id_ = 1;
  int64_t next_session_id_ = 1;
  ShardedTable<Session> sessions_;
  ShardedTable<ClientSession> client_sessions_;
  size_t open_sessions_ = 0;
  std::deque<Held> relaxed_held_;
  std::deque<Held> best_effort_held_;
  /// Best-effort queries dispatched to the coordinator, kept while they
  /// may still be waiting in its VM queue (preemption candidates).
  std::vector<int64_t> dispatched_best_effort_;
  ServerMailbox mailbox_;
  bool polling_ = false;
  uint64_t poll_event_ = 0;
  SimTime poll_fire_time_ = 0;  // virtual time of the scheduled poll
  bool stopped_ = false;
  double total_billed_ = 0;
  MetricsRegistry metrics_;
  SloMonitor slo_;
};

}  // namespace pixels
