#include "rover/auth.h"

namespace pixels {

uint64_t AuthService::HashPassword(const std::string& password, uint64_t salt) {
  // FNV-1a over salt bytes then password bytes.
  uint64_t h = 14695981039346656037ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (salt >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  for (unsigned char c : password) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Status AuthService::RegisterUser(const std::string& user,
                                 const std::string& password,
                                 std::set<std::string> authorized_dbs) {
  if (user.empty()) return Status::InvalidArgument("empty user name");
  if (users_.count(user) > 0) {
    return Status::AlreadyExists("user exists: " + user);
  }
  UserRecord rec;
  rec.salt = 0x9e3779b97f4a7c15ULL ^ (users_.size() * 1099511628211ULL);
  rec.password_hash = HashPassword(password, rec.salt);
  rec.dbs = std::move(authorized_dbs);
  users_[user] = std::move(rec);
  return Status::OK();
}

Status AuthService::GrantDatabase(const std::string& user,
                                  const std::string& db) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no user: " + user);
  it->second.dbs.insert(db);
  return Status::OK();
}

Result<std::string> AuthService::Login(const std::string& user,
                                       const std::string& password) {
  auto it = users_.find(user);
  if (it == users_.end() ||
      it->second.password_hash != HashPassword(password, it->second.salt)) {
    // Identical error for unknown user and bad password.
    return Status::InvalidArgument("invalid credentials");
  }
  std::string token =
      "tok-" + std::to_string(next_token_++) + "-" +
      std::to_string(HashPassword(user, next_token_ * 0x5851f42d4c957f2dULL));
  sessions_[token] = user;
  return token;
}

Status AuthService::Logout(const std::string& token) {
  if (sessions_.erase(token) == 0) {
    return Status::NotFound("no such session");
  }
  return Status::OK();
}

Result<std::string> AuthService::Authenticate(const std::string& token) const {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("invalid or expired session token");
  }
  return it->second;
}

bool AuthService::IsAuthorized(const std::string& user,
                               const std::string& db) const {
  auto it = users_.find(user);
  return it != users_.end() && it->second.dbs.count(db) > 0;
}

std::vector<std::string> AuthService::AuthorizedDbs(
    const std::string& user) const {
  std::vector<std::string> out;
  auto it = users_.find(user);
  if (it != users_.end()) {
    out.assign(it->second.dbs.begin(), it->second.dbs.end());
  }
  return out;
}

}  // namespace pixels
