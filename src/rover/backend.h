// The Pixels-Rover backend (paper §2(1)): the server side of the
// browser-server architecture. It authenticates users, serves the schema
// sidebar, forwards questions to the text-to-SQL service, submits queries
// to the serverless engine at the chosen service level, and exposes the
// status/result blocks of §4.3 — all as JSON, the wire format the web
// frontend would consume.
#pragma once

#include <map>
#include <memory>

#include "nl2sql/codes_service.h"
#include "rover/auth.h"
#include "server/query_server.h"

namespace pixels {

/// One user-visible query entry (a translator code block + its
/// status-and-result block).
struct RoverQuery {
  int64_t id = 0;              // backend-assigned, per session
  int64_t server_id = 0;       // id in the query server
  std::string user;
  std::string question;        // empty when SQL was typed/edited directly
  std::string sql;
  ServiceLevel level = ServiceLevel::kImmediate;
};

/// The backend facade. All calls take the session token from Login.
class RoverBackend {
 public:
  RoverBackend(Catalog* catalog, QueryServer* server, CodesService* codes,
               AuthService* auth, SimClock* clock)
      : catalog_(catalog),
        server_(server),
        codes_(codes),
        auth_(auth),
        clock_(clock) {}

  /// Authenticates and opens a session.
  Result<std::string> Login(const std::string& user,
                            const std::string& password) {
    return auth_->Login(user, password);
  }

  Status Logout(const std::string& token) { return auth_->Logout(token); }

  /// The schema sidebar (§4.1): authorized databases with their tables
  /// and columns, as {"databases": [...]}.
  Result<Json> ListSchemas(const std::string& token) const;

  /// Selects the database the translator works against (§4.2 drop-down).
  Status SelectDatabase(const std::string& token, const std::string& db);

  /// Translates a question against the selected database via the
  /// text-to-SQL service. Returns {"sql": ..., "query_id": n} and records
  /// the translation as a pending code block that Submit can reference.
  Result<Json> Translate(const std::string& token, const std::string& question);

  /// Replaces the SQL of a translated block (the edit button of §4.2).
  Status EditQuery(const std::string& token, int64_t query_id,
                   const std::string& sql);

  /// Submits a translated/edited block (or raw SQL when query_id == 0)
  /// with a service level and result-size limit (§4.2 submission form).
  Result<int64_t> Submit(const std::string& token, int64_t query_id,
                         ServiceLevel level, int64_t result_limit = 0,
                         const std::string& raw_sql = "");

  /// One status-and-result block (§4.3): status, pending/execution time,
  /// monetary cost, and (when finished) the result rows; failed queries
  /// carry the error message.
  Result<Json> QueryStatus(const std::string& token, int64_t query_id,
                           size_t max_rows = 100) const;

  /// Per-user spend summary across this session's queries.
  Result<Json> BillingSummary(const std::string& token) const;

 private:
  Result<std::string> UserOf(const std::string& token) const {
    return auth_->Authenticate(token);
  }

  Catalog* catalog_;
  QueryServer* server_;
  CodesService* codes_;
  AuthService* auth_;
  SimClock* clock_;

  std::map<std::string, std::string> selected_db_;  // user -> db
  std::map<int64_t, RoverQuery> queries_;           // backend query id
  int64_t next_query_id_ = 1;
};

}  // namespace pixels
