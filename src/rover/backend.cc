#include "rover/backend.h"

namespace pixels {

Result<Json> RoverBackend::ListSchemas(const std::string& token) const {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  Json dbs = Json::Array();
  for (const auto& db : auth_->AuthorizedDbs(user)) {
    auto schema = catalog_->GetDatabase(db);
    if (!schema.ok()) continue;  // granted but not (yet) present
    dbs.Append((*schema)->ToJson());
  }
  Json out = Json::Object();
  out.Set("databases", std::move(dbs));
  return out;
}

Status RoverBackend::SelectDatabase(const std::string& token,
                                    const std::string& db) {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  if (!auth_->IsAuthorized(user, db)) {
    return Status::FailedPrecondition("user " + user +
                                      " is not authorized for " + db);
  }
  PIXELS_RETURN_NOT_OK(catalog_->GetDatabase(db).status());
  selected_db_[user] = db;
  return Status::OK();
}

Result<Json> RoverBackend::Translate(const std::string& token,
                                     const std::string& question) {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  auto db_it = selected_db_.find(user);
  if (db_it == selected_db_.end()) {
    return Status::FailedPrecondition("no database selected");
  }
  // Compile the JSON message the paper describes (§2(3)) and go through
  // the service's single-turn API.
  Json request = Json::Object();
  request.Set("question", question);
  request.Set("database", db_it->second);
  auto schema = catalog_->GetDatabase(db_it->second);
  if (schema.ok()) request.Set("schema", (*schema)->ToJson());
  Json response = codes_->HandleRequest(request);
  if (response.Has("error")) {
    return Status::InvalidArgument(response.Get("error").AsString());
  }

  RoverQuery q;
  q.id = next_query_id_++;
  q.user = user;
  q.question = question;
  q.sql = response.Get("sql").AsString();
  queries_[q.id] = q;

  Json out = Json::Object();
  out.Set("query_id", q.id);
  out.Set("sql", q.sql);
  if (response.Has("confidence")) {
    out.Set("confidence", response.Get("confidence"));
  }
  return out;
}

Status RoverBackend::EditQuery(const std::string& token, int64_t query_id,
                               const std::string& sql) {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  auto it = queries_.find(query_id);
  if (it == queries_.end() || it->second.user != user) {
    return Status::NotFound("no such query block");
  }
  if (it->second.server_id != 0) {
    return Status::FailedPrecondition("query already submitted");
  }
  it->second.sql = sql;
  return Status::OK();
}

Result<int64_t> RoverBackend::Submit(const std::string& token,
                                     int64_t query_id, ServiceLevel level,
                                     int64_t result_limit,
                                     const std::string& raw_sql) {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  auto db_it = selected_db_.find(user);
  if (db_it == selected_db_.end()) {
    return Status::FailedPrecondition("no database selected");
  }

  RoverQuery* q = nullptr;
  if (query_id != 0) {
    auto it = queries_.find(query_id);
    if (it == queries_.end() || it->second.user != user) {
      return Status::NotFound("no such query block");
    }
    if (it->second.server_id != 0) {
      return Status::FailedPrecondition("query already submitted");
    }
    q = &it->second;
  } else {
    if (raw_sql.empty()) {
      return Status::InvalidArgument("raw submission needs SQL text");
    }
    RoverQuery fresh;
    fresh.id = next_query_id_++;
    fresh.user = user;
    fresh.sql = raw_sql;
    auto [it, _] = queries_.emplace(fresh.id, std::move(fresh));
    q = &it->second;
  }

  Submission submission;
  submission.level = level;
  submission.result_limit = result_limit;
  submission.query.sql = q->sql;
  submission.query.db = db_it->second;
  submission.query.execute_real = true;
  q->level = level;
  q->server_id = server_->Submit(submission);
  return q->id;
}

Result<Json> RoverBackend::QueryStatus(const std::string& token,
                                       int64_t query_id,
                                       size_t max_rows) const {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  auto it = queries_.find(query_id);
  if (it == queries_.end() || it->second.user != user) {
    return Status::NotFound("no such query block");
  }
  const RoverQuery& q = it->second;
  Json out = Json::Object();
  out.Set("query_id", q.id);
  out.Set("question", q.question);
  out.Set("sql", q.sql);
  if (q.server_id == 0) {
    out.Set("status", "translated");
    return out;
  }
  out.Set("service_level", ServiceLevelName(q.level));
  PIXELS_ASSIGN_OR_RETURN(auto status, server_->GetStatus(q.server_id));
  out.Set("status", QueryStateName(status.state));
  out.Set("pending_ms", status.pending_ms);
  out.Set("execution_ms", status.execution_ms);
  out.Set("cost_usd", status.bill_usd);
  out.Set("used_cf", status.used_cf);
  if (status.state == QueryState::kFailed) {
    out.Set("error", status.error);
  }
  if (status.state == QueryState::kFinished) {
    const SubmissionRecord* rec = server_->GetRecord(q.server_id);
    // Prefer the server-side record: it holds the result after the
    // submission form's result-size limit was applied.
    TablePtr result_table;
    if (rec != nullptr && rec->result != nullptr) {
      result_table = rec->result;
    } else if (rec != nullptr && rec->coordinator_id != 0) {
      const QueryRecord* qrec =
          server_->coordinator()->GetQuery(rec->coordinator_id);
      if (qrec != nullptr) result_table = qrec->result;
    }
    if (result_table != nullptr) {
      Json columns = Json::Array();
      for (const auto& name : result_table->ColumnNames()) {
        columns.Append(name);
      }
      Json rows = Json::Array();
      size_t emitted = 0;
      for (const auto& batch : result_table->batches()) {
        for (size_t r = 0; r < batch->num_rows() && emitted < max_rows;
             ++r, ++emitted) {
          Json row = Json::Array();
          for (size_t c = 0; c < batch->num_columns(); ++c) {
            Value v = batch->column(c)->GetValue(r);
            if (v.is_null()) {
              row.Append(Json());
            } else if (v.kind == Value::Kind::kString) {
              row.Append(v.s);
            } else if (v.kind == Value::Kind::kDouble) {
              row.Append(v.d);
            } else if (v.kind == Value::Kind::kBool) {
              row.Append(v.i != 0);
            } else {
              row.Append(v.i);
            }
          }
          rows.Append(std::move(row));
        }
      }
      out.Set("columns", std::move(columns));
      out.Set("rows", std::move(rows));
      out.Set("total_rows", static_cast<int64_t>(result_table->num_rows()));
    }
  }
  return out;
}

Result<Json> RoverBackend::BillingSummary(const std::string& token) const {
  PIXELS_ASSIGN_OR_RETURN(std::string user, UserOf(token));
  double total = 0;
  int64_t queries = 0;
  Json per_level = Json::Object();
  std::map<std::string, double> level_totals;
  for (const auto& [_, q] : queries_) {
    if (q.user != user || q.server_id == 0) continue;
    const SubmissionRecord* rec = server_->GetRecord(q.server_id);
    if (rec == nullptr) continue;
    ++queries;
    total += rec->bill_usd;
    level_totals[ServiceLevelName(q.level)] += rec->bill_usd;
  }
  for (const auto& [level, amount] : level_totals) {
    per_level.Set(level, amount);
  }
  Json out = Json::Object();
  out.Set("user", user);
  out.Set("queries", queries);
  out.Set("total_usd", total);
  out.Set("by_level", std::move(per_level));
  return out;
}

}  // namespace pixels
