// Authentication for Pixels-Rover (paper §4: "after logging in through
// authentication"). Users have credentials and a set of authorized
// databases; logins produce opaque session tokens.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"

namespace pixels {

/// In-memory user registry + session-token issuer.
///
/// Passwords are stored as salted FNV-1a hashes — fine for a demo system;
/// swap the hash for a real KDF in production deployments.
class AuthService {
 public:
  /// Registers a user who may query the given databases.
  Status RegisterUser(const std::string& user, const std::string& password,
                      std::set<std::string> authorized_dbs);

  /// Extends a user's database grants.
  Status GrantDatabase(const std::string& user, const std::string& db);

  /// Validates credentials and issues a session token.
  Result<std::string> Login(const std::string& user,
                            const std::string& password);

  /// Invalidates a session token.
  Status Logout(const std::string& token);

  /// Resolves a token to its user name.
  Result<std::string> Authenticate(const std::string& token) const;

  /// True when `user` may access `db`.
  bool IsAuthorized(const std::string& user, const std::string& db) const;

  /// Databases the user may access (sorted).
  std::vector<std::string> AuthorizedDbs(const std::string& user) const;

 private:
  struct UserRecord {
    uint64_t password_hash;
    uint64_t salt;
    std::set<std::string> dbs;
  };

  static uint64_t HashPassword(const std::string& password, uint64_t salt);

  std::map<std::string, UserRecord> users_;
  std::map<std::string, std::string> sessions_;  // token -> user
  uint64_t next_token_ = 1;
};

}  // namespace pixels
