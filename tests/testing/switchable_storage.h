// Test decorator that forwards to a swappable target, so a catalog can be
// registered over healthy storage and then queried over fault-injected
// storage without re-registering tables.
#pragma once

#include <memory>

#include "storage/storage.h"

namespace pixels {
namespace testing {

class SwitchableStorage : public Storage {
 public:
  explicit SwitchableStorage(std::shared_ptr<Storage> target)
      : target_(std::move(target)) {}
  void SetTarget(std::shared_ptr<Storage> target) {
    target_ = std::move(target);
  }

  Result<std::vector<uint8_t>> Read(const std::string& path) override {
    return target_->Read(path);
  }
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override {
    return target_->ReadRange(path, offset, length);
  }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override {
    return target_->Write(path, data);
  }
  Result<uint64_t> Size(const std::string& path) override {
    return target_->Size(path);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return target_->List(prefix);
  }
  Status Delete(const std::string& path) override {
    return target_->Delete(path);
  }
  bool Exists(const std::string& path) override {
    return target_->Exists(path);
  }

 private:
  std::shared_ptr<Storage> target_;
};

}  // namespace testing
}  // namespace pixels
