// Shared test fixture: builds a small in-memory catalog with a few tables
// used across plan/exec/turbo/server/nl2sql tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "catalog/catalog.h"
#include "format/writer.h"
#include "storage/memory_store.h"

namespace pixels {
namespace testing {

/// Creates a catalog with database "db" containing:
///   emp(id bigint, name varchar, dept varchar, salary double, hired date)
///     - 8 rows, known values
///   dept(name varchar, location varchar)
///     - 4 rows ("legal" has no employees, for outer-join tests)
/// Returns the catalog (storage owned by it).
inline std::shared_ptr<Catalog> BuildTestCatalog() {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  EXPECT_TRUE(catalog->CreateDatabase("db").ok());

  {
    FileSchema schema = {{"id", TypeId::kInt64},
                         {"name", TypeId::kString},
                         {"dept", TypeId::kString},
                         {"salary", TypeId::kDouble},
                         {"hired", TypeId::kDate}};
    EXPECT_TRUE(catalog->CreateTable("db", "emp", schema).ok());
    PixelsWriter writer(schema);
    struct Row {
      int64_t id;
      const char* name;
      const char* dept;
      double salary;
      const char* hired;
    };
    const Row rows[] = {
        {1, "alice", "eng", 120.0, "2020-01-15"},
        {2, "bob", "eng", 95.0, "2021-06-01"},
        {3, "carol", "sales", 80.0, "2019-03-20"},
        {4, "dave", "sales", 85.0, "2022-11-05"},
        {5, "erin", "hr", 70.0, "2018-07-30"},
        {6, "frank", "eng", 110.0, "2023-02-14"},
        {7, "grace", "hr", 72.0, "2020-09-09"},
        {8, "heidi", "sales", 90.0, "2021-12-25"},
    };
    for (const auto& r : rows) {
      auto hired = ParseDate(r.hired);
      EXPECT_TRUE(hired.ok());
      EXPECT_TRUE(writer
                      .AppendRow({Value::Int(r.id), Value::String(r.name),
                                  Value::String(r.dept), Value::Double(r.salary),
                                  Value::Int(*hired)})
                      .ok());
    }
    EXPECT_TRUE(writer.Finish(storage.get(), "db/emp/part0.pxl").ok());
    EXPECT_TRUE(catalog->AddTableFile("db", "emp", "db/emp/part0.pxl").ok());
  }

  {
    FileSchema schema = {{"name", TypeId::kString},
                         {"location", TypeId::kString}};
    EXPECT_TRUE(catalog->CreateTable("db", "dept", schema).ok());
    PixelsWriter writer(schema);
    EXPECT_TRUE(writer.AppendRow({Value::String("eng"), Value::String("zurich")}).ok());
    EXPECT_TRUE(writer.AppendRow({Value::String("sales"), Value::String("nyc")}).ok());
    EXPECT_TRUE(writer.AppendRow({Value::String("hr"), Value::String("sf")}).ok());
    EXPECT_TRUE(
        writer.AppendRow({Value::String("legal"), Value::String("paris")}).ok());
    EXPECT_TRUE(writer.Finish(storage.get(), "db/dept/part0.pxl").ok());
    EXPECT_TRUE(catalog->AddTableFile("db", "dept", "db/dept/part0.pxl").ok());
  }
  return catalog;
}

}  // namespace testing
}  // namespace pixels
