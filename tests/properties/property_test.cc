// Property-based suites:
//  * optimizer equivalence — every optimizer configuration produces the
//    same rows as the unoptimized plan, over a corpus of generated queries;
//  * format round-trip — random schemas/data survive writer -> reader
//    exactly, for every forced encoding;
//  * partial/merge aggregation — splitting any aggregate query for CF
//    workers and merging partials equals direct execution, across worker
//    counts.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "plan/subplan.h"
#include "storage/memory_store.h"
#include "testing/test_db.h"
#include "turbo/cf_worker.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---- optimizer equivalence over generated queries ----

class OptimizerEquivalenceTest : public ::testing::TestWithParam<int> {};

std::string GenerateQuery(Random* rng) {
  // Random single/two-table queries over the emp/dept test schema.
  // Qualified names avoid ambiguity when dept is joined in (both tables
  // have a "name" column).
  static const char* kNumeric[] = {"emp.salary", "emp.id"};
  static const char* kString[] = {"emp.name", "emp.dept"};
  static const char* kAgg[] = {"sum", "avg", "min", "max", "count"};
  std::string sql = "SELECT ";
  const bool join = rng->Bernoulli(0.3);
  const bool grouped = rng->Bernoulli(0.5);
  std::string group_col = kString[rng->Uniform(0, 1)];
  if (grouped) {
    std::string measure = kNumeric[rng->Uniform(0, 1)];
    std::string fn = kAgg[rng->Uniform(0, 4)];
    sql += group_col + ", " + fn + "(" + measure + ")";
  } else {
    sql += std::string(kString[rng->Uniform(0, 1)]) + ", " +
           kNumeric[rng->Uniform(0, 1)];
  }
  sql += " FROM emp";
  if (join) sql += " JOIN dept ON emp.dept = dept.name";
  if (rng->Bernoulli(0.7)) {
    const int pick = static_cast<int>(rng->Uniform(0, 3));
    switch (pick) {
      case 0:
        sql += " WHERE emp.salary > " + std::to_string(rng->Uniform(50, 130));
        break;
      case 1:
        sql += " WHERE emp.dept = 'eng'";
        break;
      case 2:
        sql += " WHERE emp.salary BETWEEN 70 AND 100";
        break;
      default:
        sql += " WHERE emp.id IN (1, 3, 5) OR emp.salary >= 90";
        break;
    }
  }
  if (grouped) sql += " GROUP BY " + group_col;
  if (rng->Bernoulli(0.4)) sql += " LIMIT " + std::to_string(rng->Uniform(1, 9));
  return sql;
}

TEST_P(OptimizerEquivalenceTest, OptimizedPlansMatchUnoptimized) {
  auto catalog = testing::BuildTestCatalog();
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  for (int q = 0; q < 20; ++q) {
    std::string sql = GenerateQuery(&rng);
    auto raw = PlanQuery(sql, *catalog, "db");
    ASSERT_TRUE(raw.ok()) << sql << ": " << raw.status().ToString();

    OptimizerOptions none;
    none.fold_constants = false;
    none.pushdown_predicates = false;
    none.prune_projections = false;
    none.optimize_join_order = false;

    ExecContext base_ctx;
    base_ctx.catalog = catalog.get();
    auto baseline = ExecutePlan(*raw, &base_ctx);
    ASSERT_TRUE(baseline.ok()) << sql;

    // Every single-rule configuration plus the full optimizer.
    std::vector<OptimizerOptions> configs;
    configs.push_back(OptimizerOptions{});
    for (int bit = 0; bit < 4; ++bit) {
      OptimizerOptions o = none;
      if (bit == 0) o.fold_constants = true;
      if (bit == 1) o.pushdown_predicates = true;
      if (bit == 2) o.prune_projections = true;
      if (bit == 3) o.optimize_join_order = true;
      configs.push_back(o);
    }
    for (const auto& config : configs) {
      auto cloned = (*raw)->Clone();
      auto optimized = Optimize(cloned, *catalog, config);
      ASSERT_TRUE(optimized.ok()) << sql;
      ExecContext ctx;
      ctx.catalog = catalog.get();
      auto result = ExecutePlan(*optimized, &ctx);
      ASSERT_TRUE(result.ok()) << sql;
      // LIMIT without ORDER BY picks arbitrary rows; compare counts there
      // and exact row sets otherwise.
      if (sql.find("LIMIT") != std::string::npos) {
        EXPECT_EQ((*result)->num_rows(), (*baseline)->num_rows()) << sql;
      } else {
        EXPECT_EQ(SortedRows(**result), SortedRows(**baseline)) << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceTest,
                         ::testing::Range(0, 5));

// ---- format round-trip with random schemas/data ----

class FormatRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FormatRoundTripTest, RandomSchemaSurvivesWriteRead) {
  Random rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  const TypeId kTypes[] = {TypeId::kBool,   TypeId::kInt32,  TypeId::kInt64,
                           TypeId::kDouble, TypeId::kString, TypeId::kDate,
                           TypeId::kTimestamp};
  FileSchema schema;
  const int num_cols = static_cast<int>(rng.Uniform(1, 8));
  for (int c = 0; c < num_cols; ++c) {
    schema.push_back({"c" + std::to_string(c),
                      kTypes[rng.Uniform(0, 6)]});
  }
  const int num_rows = static_cast<int>(rng.Uniform(0, 700));
  std::vector<std::vector<Value>> rows;
  for (int r = 0; r < num_rows; ++r) {
    std::vector<Value> row;
    for (const auto& col : schema) {
      if (rng.Bernoulli(0.1)) {
        row.push_back(Value::Null());
        continue;
      }
      switch (col.type) {
        case TypeId::kBool:
          row.push_back(Value::Bool(rng.Bernoulli(0.5)));
          break;
        case TypeId::kDouble:
          row.push_back(Value::Double(rng.UniformDouble(-1e9, 1e9)));
          break;
        case TypeId::kString:
          row.push_back(Value::String(rng.NextString(rng.Uniform(0, 24))));
          break;
        default:
          row.push_back(Value::Int(rng.Uniform(-1000000000LL, 1000000000LL)));
          break;
      }
    }
    rows.push_back(std::move(row));
  }

  MemoryStore store;
  WriterOptions options;
  options.row_group_size = static_cast<size_t>(rng.Uniform(16, 300));
  PixelsWriter writer(schema, options);
  for (const auto& row : rows) {
    ASSERT_TRUE(writer.AppendRow(row).ok());
  }
  ASSERT_TRUE(writer.Finish(&store, "prop.pxl").ok());

  auto reader = PixelsReader::Open(&store, "prop.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NumRows(), rows.size());
  auto batches = (*reader)->Scan(ScanOptions{});
  ASSERT_TRUE(batches.ok());
  size_t row_index = 0;
  for (const auto& batch : *batches) {
    for (size_t r = 0; r < batch->num_rows(); ++r, ++row_index) {
      for (size_t c = 0; c < schema.size(); ++c) {
        const Value& expected = rows[row_index][c];
        Value actual = batch->column(c)->GetValue(r);
        ASSERT_EQ(expected.is_null(), actual.is_null())
            << "row " << row_index << " col " << c;
        if (!expected.is_null()) {
          ASSERT_EQ(expected.Compare(actual), 0)
              << "row " << row_index << " col " << c;
        }
      }
    }
  }
  EXPECT_EQ(row_index, rows.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatRoundTripTest, ::testing::Range(0, 12));

// ---- partial/merge aggregation across worker counts ----

struct PartialAggCase {
  const char* sql;
  int workers;
};

class PartialAggPropertyTest
    : public ::testing::TestWithParam<PartialAggCase> {};

TEST_P(PartialAggPropertyTest, PushdownEqualsDirect) {
  static std::shared_ptr<Catalog> catalog = [] {
    auto storage = std::make_shared<MemoryStore>();
    auto c = std::make_shared<Catalog>(storage);
    TpchOptions options;
    options.scale_factor = 0.001;
    options.rows_per_file = 1000;  // 6 lineitem files
    EXPECT_TRUE(GenerateTpch(c.get(), "tpch", options).ok());
    return c;
  }();

  const PartialAggCase& c = GetParam();
  ExecContext direct_ctx;
  direct_ctx.catalog = catalog.get();
  auto direct = ExecuteQuery(c.sql, "tpch", &direct_ctx);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto plan = PlanQuery(c.sql, *catalog, "tpch");
  ASSERT_TRUE(plan.ok());
  auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
  ASSERT_TRUE(optimized.ok());
  CfWorkerOptions options;
  options.num_workers = c.workers;
  auto exec = ExecuteWithCfPushdown(*optimized, catalog.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(SortedRows(**direct), SortedRows(*exec->result)) << c.sql;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartialAggPropertyTest,
    ::testing::Values(
        PartialAggCase{"SELECT sum(l_quantity) FROM lineitem", 1},
        PartialAggCase{"SELECT sum(l_quantity) FROM lineitem", 3},
        PartialAggCase{"SELECT sum(l_quantity) FROM lineitem", 6},
        PartialAggCase{"SELECT count(*) FROM lineitem", 4},
        PartialAggCase{"SELECT min(l_shipdate), max(l_shipdate) FROM lineitem",
                       5},
        PartialAggCase{
            "SELECT l_returnflag, avg(l_discount) FROM lineitem GROUP BY "
            "l_returnflag",
            2},
        PartialAggCase{
            "SELECT l_returnflag, avg(l_discount) FROM lineitem GROUP BY "
            "l_returnflag",
            6},
        PartialAggCase{
            "SELECT l_shipmode, sum(l_extendedprice), count(*), "
            "min(l_quantity), max(l_quantity), avg(l_tax) FROM lineitem "
            "WHERE l_quantity > 10 GROUP BY l_shipmode",
            4},
        PartialAggCase{"SELECT count(DISTINCT l_shipmode) FROM lineitem", 3},
        PartialAggCase{
            "SELECT l_linestatus, count(*) FROM lineitem WHERE l_shipdate < "
            "DATE '1995-01-01' GROUP BY l_linestatus",
            5}));

}  // namespace
}  // namespace pixels
