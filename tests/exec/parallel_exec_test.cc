// Parallel-determinism coverage: parallel execution (threads >= 4) of the
// TPC-H query set must return exactly the results of serial execution,
// with identical bytes_scanned / rows_scanned billing counters. Also
// covers the streaming-scan memory fix (LIMIT stops decoding early).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) {
      rows.push_back(b->RowToString(r));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions options;
    options.scale_factor = 0.002;  // 12000 lineitems
    options.rows_per_file = 2500;
    options.row_group_size = 1024;  // many morsels per file
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());
  }

  TablePtr Run(const std::string& sql, int parallelism, uint64_t* bytes,
               uint64_t* rows, const IoOptions& io = IoOptions{}) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    ctx.parallelism = parallelism;
    ctx.io = io;
    auto r = ExecuteQuery(sql, "tpch", &ctx);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (bytes != nullptr) *bytes = ctx.bytes_scanned;
    if (rows != nullptr) *rows = ctx.rows_scanned;
    return r.ok() ? *r : nullptr;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(ParallelExecTest, TpchQuerySetMatchesSerialWithIdenticalBilling) {
  for (const auto& q : TpchQuerySet()) {
    uint64_t serial_bytes = 0, serial_rows = 0;
    uint64_t par_bytes = 0, par_rows = 0;
    TablePtr serial = Run(q.sql, 1, &serial_bytes, &serial_rows);
    TablePtr parallel = Run(q.sql, 4, &par_bytes, &par_rows);
    ASSERT_NE(serial, nullptr) << q.name;
    ASSERT_NE(parallel, nullptr) << q.name;
    EXPECT_EQ(SortedRows(*serial), SortedRows(*parallel)) << q.name;
    EXPECT_EQ(serial_bytes, par_bytes) << q.name;
    EXPECT_EQ(serial_rows, par_rows) << q.name;
  }
}

TEST_F(ParallelExecTest, OrderedQueryPreservesRowOrderUnderParallelism) {
  // ORDER BY output must match row-for-row (not just as sorted sets).
  const std::string sql =
      "SELECT l_orderkey, l_linenumber, l_extendedprice FROM lineitem "
      "WHERE l_quantity < 10 ORDER BY l_extendedprice DESC, l_orderkey, "
      "l_linenumber LIMIT 50";
  TablePtr serial = Run(sql, 1, nullptr, nullptr);
  TablePtr parallel = Run(sql, 4, nullptr, nullptr);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  std::vector<std::string> srows, prows;
  for (const auto& b : serial->batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) srows.push_back(b->RowToString(r));
  }
  for (const auto& b : parallel->batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) prows.push_back(b->RowToString(r));
  }
  EXPECT_EQ(srows, prows);
}

TEST_F(ParallelExecTest, ParallelRunsAreReproducible) {
  const std::string sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS q, count(*) AS n "
      "FROM lineitem GROUP BY l_returnflag, l_linestatus";
  uint64_t bytes1 = 0, bytes2 = 0;
  TablePtr a = Run(sql, 4, &bytes1, nullptr);
  TablePtr b = Run(sql, 4, &bytes2, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(SortedRows(*a), SortedRows(*b));
  EXPECT_EQ(bytes1, bytes2);
}

TEST_F(ParallelExecTest, SerialLimitStopsScanningEarly) {
  // Streaming scans decode morsels on demand: a bare LIMIT over a
  // multi-row-group table must not decode (or bill) the whole table.
  auto table = catalog_->GetTable("tpch", "lineitem");
  ASSERT_TRUE(table.ok());
  const uint64_t total_rows = (*table)->row_count;
  uint64_t rows = 0;
  TablePtr t = Run("SELECT l_orderkey FROM lineitem LIMIT 5", 1, nullptr,
                   &rows);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 5u);
  EXPECT_LT(rows, total_rows);
}

TEST_F(ParallelExecTest, JoinAndAggMatchUnderHighParallelism) {
  // Higher parallelism than morsel count and partitions with empty work.
  const std::string sql =
      "SELECT o.o_orderpriority, count(*) AS n FROM orders o JOIN lineitem l "
      "ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity < 25 "
      "GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority";
  uint64_t serial_bytes = 0, par_bytes = 0;
  TablePtr serial = Run(sql, 1, &serial_bytes, nullptr);
  TablePtr parallel = Run(sql, 16, &par_bytes, nullptr);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(SortedRows(*serial), SortedRows(*parallel));
  EXPECT_EQ(serial_bytes, par_bytes);
}

TEST_F(ParallelExecTest, CachingNeverChangesResultsOrBilling) {
  // The billing invariant of the buffered I/O layer: bytes_scanned is
  // byte-identical across {cold, warm} x {serial, parallel}. A chunk
  // served from the cache bills exactly like one fetched from storage.
  BufferCache cache(64ULL << 20);
  IoOptions io;
  io.chunk_cache = &cache;
  const std::string sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS q, count(*) AS n "
      "FROM lineitem WHERE l_quantity < 40 GROUP BY l_returnflag, "
      "l_linestatus";

  uint64_t plain_bytes = 0, plain_rows = 0;
  TablePtr plain = Run(sql, 1, &plain_bytes, &plain_rows);
  ASSERT_NE(plain, nullptr);

  uint64_t cold_serial = 0, warm_serial = 0, cold_rows = 0, warm_rows = 0;
  TablePtr cold = Run(sql, 1, &cold_serial, &cold_rows, io);
  TablePtr warm = Run(sql, 1, &warm_serial, &warm_rows, io);
  ASSERT_NE(cold, nullptr);
  ASSERT_NE(warm, nullptr);
  EXPECT_GT(cache.stats().hits, 0u);  // the warm run really hit the cache

  uint64_t warm_par = 0, warm_par_rows = 0;
  TablePtr par = Run(sql, 4, &warm_par, &warm_par_rows, io);
  ASSERT_NE(par, nullptr);

  EXPECT_EQ(SortedRows(*plain), SortedRows(*cold));
  EXPECT_EQ(SortedRows(*plain), SortedRows(*warm));
  EXPECT_EQ(SortedRows(*plain), SortedRows(*par));
  EXPECT_EQ(plain_bytes, cold_serial);
  EXPECT_EQ(plain_bytes, warm_serial);
  EXPECT_EQ(plain_bytes, warm_par);
  EXPECT_EQ(plain_rows, cold_rows);
  EXPECT_EQ(plain_rows, warm_rows);
  EXPECT_EQ(plain_rows, warm_par_rows);
}

TEST_F(ParallelExecTest, PrefetchKeepsDeterministicResultsAndBilling) {
  // Window-ahead prefetch only fills the cache; results, order, and
  // billing match the serial non-prefetching run.
  BufferCache cache(64ULL << 20);
  IoOptions io;
  io.chunk_cache = &cache;
  io.prefetch_windows = 2;
  const std::string sql =
      "SELECT l_orderkey, l_linenumber, l_extendedprice FROM lineitem "
      "WHERE l_quantity < 10 ORDER BY l_extendedprice DESC, l_orderkey, "
      "l_linenumber LIMIT 50";
  uint64_t serial_bytes = 0;
  TablePtr serial = Run(sql, 1, &serial_bytes, nullptr);
  uint64_t par_bytes1 = 0, par_bytes2 = 0;
  TablePtr par1 = Run(sql, 4, &par_bytes1, nullptr, io);
  TablePtr par2 = Run(sql, 4, &par_bytes2, nullptr, io);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(par1, nullptr);
  ASSERT_NE(par2, nullptr);
  EXPECT_EQ(SortedRows(*serial), SortedRows(*par1));
  EXPECT_EQ(SortedRows(*serial), SortedRows(*par2));
  EXPECT_EQ(serial_bytes, par_bytes1);
  EXPECT_EQ(par_bytes1, par_bytes2);
}

TEST_F(ParallelExecTest, CacheHitCountersReachTheContext) {
  BufferCache cache(64ULL << 20);
  IoOptions io;
  io.chunk_cache = &cache;
  const std::string sql = "SELECT count(*) AS n FROM lineitem";
  ExecContext cold_ctx;
  cold_ctx.catalog = catalog_.get();
  cold_ctx.parallelism = 1;
  cold_ctx.io = io;
  ASSERT_TRUE(ExecuteQuery(sql, "tpch", &cold_ctx).ok());
  EXPECT_EQ(cold_ctx.cache_hits.load(), 0u);
  EXPECT_GT(cold_ctx.cache_misses.load(), 0u);

  ExecContext warm_ctx;
  warm_ctx.catalog = catalog_.get();
  warm_ctx.parallelism = 1;
  warm_ctx.io = io;
  ASSERT_TRUE(ExecuteQuery(sql, "tpch", &warm_ctx).ok());
  EXPECT_EQ(warm_ctx.cache_misses.load(), 0u);
  EXPECT_EQ(warm_ctx.cache_hits.load(), cold_ctx.cache_misses.load());
}

}  // namespace
}  // namespace pixels
