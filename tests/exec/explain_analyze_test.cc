// EXPLAIN ANALYZE: executes the query with per-operator profiling and
// returns the plan-shaped report. The key invariant under test: the
// io-measuring (scan) nodes' bytes partition the context's bytes_scanned,
// so the per-operator numbers sum exactly to what billing sees.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/profile.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::BuildTestCatalog();
    ctx_.catalog = catalog_.get();
  }

  static std::string ReportText(const Table& t) {
    std::string out;
    for (const auto& v : t.CollectColumn("plan")) {
      out += v.s;
      out += "\n";
    }
    return out;
  }

  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(ExplainAnalyzeTest, ReturnsProfileReportAndExecutes) {
  auto result = ExecuteQuery(
      "EXPLAIN ANALYZE SELECT dept, count(*) FROM emp GROUP BY dept", "db",
      &ctx_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->ColumnNames(), (std::vector<std::string>{"plan"}));
  const std::string report = ReportText(**result);
  EXPECT_NE(report.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(report.find("HashAgg"), std::string::npos);
  EXPECT_NE(report.find("Scan(db.emp)"), std::string::npos);
  EXPECT_NE(report.find("rows="), std::string::npos);
  EXPECT_NE(report.find("bytes_scanned="), std::string::npos);
  // Unlike EXPLAIN, ANALYZE executes: the scan billed real bytes.
  EXPECT_GT(ctx_.bytes_scanned.load(), 0u);
  // The report's total equals the context's counter exactly.
  const std::string total =
      "total bytes_scanned=" + std::to_string(ctx_.bytes_scanned.load());
  EXPECT_NE(report.find(total), std::string::npos) << report;
}

TEST_F(ExplainAnalyzeTest, PerOperatorBytesSumToContextCounter) {
  auto plan = PlanQuery(
      "SELECT e.name, d.location FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE e.salary > 80",
      *catalog_, "db");
  ASSERT_TRUE(plan.ok());
  auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
  ASSERT_TRUE(optimized.ok());

  QueryProfile profile;
  ctx_.profile = &profile;
  auto table = ExecutePlan(*optimized, &ctx_);
  ctx_.profile = nullptr;
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  // Two scans (emp, dept) under the join; only scans measure I/O, and
  // their deltas partition the context counter without overlap.
  EXPECT_EQ(profile.TotalBytesScanned(), ctx_.bytes_scanned.load());
  int scan_nodes = 0;
  const std::string text = profile.ToText();
  for (size_t pos = text.find("Scan("); pos != std::string::npos;
       pos = text.find("Scan(", pos + 1)) {
    ++scan_nodes;
  }
  EXPECT_EQ(scan_nodes, 2);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ProfilingDoesNotChangeResultsOrBytes) {
  const std::string sql =
      "SELECT dept, count(*) AS n FROM emp GROUP BY dept ORDER BY dept";

  ExecContext plain;
  plain.catalog = catalog_.get();
  auto expected = ExecuteQuery(sql, "db", &plain);
  ASSERT_TRUE(expected.ok());

  QueryProfile profile;
  ExecContext profiled;
  profiled.catalog = catalog_.get();
  profiled.profile = &profile;
  auto got = ExecuteQuery(sql, "db", &profiled);
  ASSERT_TRUE(got.ok());

  auto rows = [](const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) {
        out.push_back(b->RowToString(r));
      }
    }
    return out;
  };
  EXPECT_EQ(rows(**expected), rows(**got));
  EXPECT_EQ(plain.bytes_scanned.load(), profiled.bytes_scanned.load());
  EXPECT_GT(profile.size(), 0u);
}

TEST_F(ExplainAnalyzeTest, EmptyProfileExplainsItself) {
  QueryProfile profile;
  EXPECT_NE(profile.ToText().find("no operators executed"),
            std::string::npos);
  EXPECT_EQ(profile.TotalBytesScanned(), 0u);
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeInvalidQueryFails) {
  EXPECT_FALSE(
      ExecuteQuery("EXPLAIN ANALYZE SELECT nope FROM emp", "db", &ctx_).ok());
  // And the failure leaves no dangling profile on the context.
  EXPECT_EQ(ctx_.profile, nullptr);
}

}  // namespace
}  // namespace pixels
