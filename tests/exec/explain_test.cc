#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::BuildTestCatalog();
    ctx_.catalog = catalog_.get();
  }

  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(ExplainTest, DetectsExplainPrefix) {
  std::string inner;
  EXPECT_TRUE(IsExplainStatement("EXPLAIN SELECT 1", &inner));
  EXPECT_EQ(inner, " SELECT 1");
  EXPECT_TRUE(IsExplainStatement("  explain select 1", nullptr));
  EXPECT_TRUE(IsExplainStatement("Explain\nSELECT 1", nullptr));
  EXPECT_FALSE(IsExplainStatement("SELECT 1", nullptr));
  EXPECT_FALSE(IsExplainStatement("explained SELECT 1", nullptr));
  EXPECT_FALSE(IsExplainStatement("", nullptr));
}

TEST_F(ExplainTest, ExplainQueryRendersOptimizedPlan) {
  auto text = ExplainQuery("SELECT name FROM emp WHERE salary > 100", "db",
                           *catalog_);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Project"), std::string::npos);
  EXPECT_NE(text->find("Filter"), std::string::npos);
  EXPECT_NE(text->find("Scan db.emp"), std::string::npos);
  // The optimizer pushed the predicate into the scan's zone maps.
  EXPECT_NE(text->find("{salary > 100}"), std::string::npos);
  // Projection pruning narrowed the scan columns.
  EXPECT_EQ(text->find("hired"), std::string::npos);
}

TEST_F(ExplainTest, ExplainAcceptsExplainKeywordItself) {
  auto text = ExplainQuery("EXPLAIN SELECT count(*) FROM emp", "db", *catalog_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Aggregate"), std::string::npos);
}

TEST_F(ExplainTest, ExecuteQueryReturnsPlanTable) {
  auto result =
      ExecuteQuery("EXPLAIN SELECT dept, count(*) FROM emp GROUP BY dept",
                   "db", &ctx_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->ColumnNames(), (std::vector<std::string>{"plan"}));
  auto lines = (*result)->CollectColumn("plan");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines[0].s.find("Project"), std::string::npos);
  // EXPLAIN does not execute: no bytes scanned.
  EXPECT_EQ(ctx_.bytes_scanned, 0u);
}

TEST_F(ExplainTest, ExplainInvalidQueryFails) {
  EXPECT_FALSE(ExplainQuery("EXPLAIN SELECT nope FROM emp", "db", *catalog_).ok());
  EXPECT_FALSE(ExecuteQuery("EXPLAIN not sql at all", "db", &ctx_).ok());
}

}  // namespace
}  // namespace pixels
