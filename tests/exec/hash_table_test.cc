// Unit tests for the typed open-addressing hash tables behind vectorized
// hash join and aggregation (exec/hash_table.h): ValuesKey-equivalent key
// semantics (kind-distinct, bitwise doubles, null==null), insertion-order
// entry ids, growth that preserves entries, Reserve preventing rehashes,
// and deterministic duplicate-key chains in the join table.
#include "exec/hash_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "exec/kernels.h"

namespace pixels {
namespace {

ColumnVectorPtr Ints(const std::vector<int64_t>& vals) {
  auto c = MakeVector(TypeId::kInt64);
  for (int64_t v : vals) c->AppendInt(v);
  return c;
}

ColumnVectorPtr Doubles(const std::vector<double>& vals) {
  auto c = MakeVector(TypeId::kDouble);
  for (double v : vals) c->AppendDouble(v);
  return c;
}

ColumnVectorPtr Strings(const std::vector<std::string>& vals) {
  auto c = MakeVector(TypeId::kString);
  for (const auto& v : vals) c->AppendString(v);
  return c;
}

ColumnVectorPtr Bools(const std::vector<bool>& vals) {
  auto c = MakeVector(TypeId::kBool);
  for (bool v : vals) c->AppendBool(v);
  return c;
}

/// Nullable int column: entries with `has[i] == false` are null.
ColumnVectorPtr IntsWithNulls(const std::vector<int64_t>& vals,
                              const std::vector<bool>& has) {
  auto c = MakeVector(TypeId::kInt64);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (has[i]) {
      c->AppendInt(vals[i]);
    } else {
      c->AppendNull();
    }
  }
  return c;
}

std::vector<uint64_t> Hashes(const std::vector<ColumnVectorPtr>& cols) {
  return HashKeyColumns(cols, cols.empty() ? 0 : cols[0]->size(), nullptr);
}

TEST(GroupTableTest, KindsAreDistinctEvenWhenPayloadsAgree) {
  // Int(1), Double(1.0), Bool(true), String("1") are four different keys,
  // exactly as ValuesKey serialization distinguishes them.
  GroupTable table(1, 0.7);
  std::vector<ColumnVectorPtr> as_int = {Ints({1})};
  std::vector<ColumnVectorPtr> as_dbl = {Doubles({1.0})};
  std::vector<ColumnVectorPtr> as_bool = {Bools({true})};
  std::vector<ColumnVectorPtr> as_str = {Strings({"1"})};
  EXPECT_EQ(table.FindOrInsert(Hashes(as_int)[0], as_int, 0), 0u);
  EXPECT_EQ(table.FindOrInsert(Hashes(as_dbl)[0], as_dbl, 0), 1u);
  EXPECT_EQ(table.FindOrInsert(Hashes(as_bool)[0], as_bool, 0), 2u);
  EXPECT_EQ(table.FindOrInsert(Hashes(as_str)[0], as_str, 0), 3u);
  EXPECT_EQ(table.num_entries(), 4u);
  // Re-probing each representation still lands on its own entry.
  EXPECT_EQ(table.FindOrInsert(Hashes(as_int)[0], as_int, 0), 0u);
  EXPECT_EQ(table.FindOrInsert(Hashes(as_str)[0], as_str, 0), 3u);
  EXPECT_EQ(table.num_entries(), 4u);
  // Emit path reboxes the original kinds.
  EXPECT_EQ(table.keys().GetValue(0, 0).kind, Value::Kind::kInt);
  EXPECT_EQ(table.keys().GetValue(1, 0).kind, Value::Kind::kDouble);
  EXPECT_EQ(table.keys().GetValue(3, 0).kind, Value::Kind::kString);
}

TEST(GroupTableTest, NullKeysGroupTogetherButNotWithZero) {
  GroupTable table(1, 0.7);
  std::vector<ColumnVectorPtr> col = {
      IntsWithNulls({0, 0, 0, 7}, {false, true, false, true})};
  const auto hashes = Hashes(col);
  const uint32_t null_a = table.FindOrInsert(hashes[0], col, 0);
  const uint32_t zero = table.FindOrInsert(hashes[1], col, 1);
  const uint32_t null_b = table.FindOrInsert(hashes[2], col, 2);
  const uint32_t seven = table.FindOrInsert(hashes[3], col, 3);
  EXPECT_EQ(null_a, null_b);
  EXPECT_NE(null_a, zero);
  EXPECT_NE(zero, seven);
  EXPECT_EQ(table.num_entries(), 3u);
  EXPECT_TRUE(table.keys().GetValue(null_a, 0).is_null());
}

TEST(GroupTableTest, DoublesCompareBitwise) {
  // -0.0 and +0.0 differ bitwise, so they are distinct groups (matching
  // the serialized-key scalar path); identical NaN bit patterns group.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  GroupTable table(1, 0.7);
  std::vector<ColumnVectorPtr> col = {Doubles({0.0, -0.0, nan, nan})};
  const auto hashes = Hashes(col);
  const uint32_t pos = table.FindOrInsert(hashes[0], col, 0);
  const uint32_t neg = table.FindOrInsert(hashes[1], col, 1);
  const uint32_t nan_a = table.FindOrInsert(hashes[2], col, 2);
  const uint32_t nan_b = table.FindOrInsert(hashes[3], col, 3);
  EXPECT_NE(pos, neg);
  EXPECT_EQ(nan_a, nan_b);
  EXPECT_EQ(table.num_entries(), 3u);
}

TEST(GroupTableTest, EntryIdsFollowFirstInsertionOrder) {
  GroupTable table(1, 0.7);
  std::vector<ColumnVectorPtr> col = {Ints({10, 20, 10, 30, 20, 10})};
  const auto hashes = Hashes(col);
  std::vector<uint32_t> ids;
  for (uint32_t r = 0; r < 6; ++r) {
    ids.push_back(table.FindOrInsert(hashes[r], col, r));
  }
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 0, 2, 1, 0}));
  // Find never inserts.
  std::vector<ColumnVectorPtr> missing = {Ints({40})};
  EXPECT_EQ(table.Find(Hashes(missing)[0], missing, 0), GroupTable::kNotFound);
  EXPECT_EQ(table.num_entries(), 3u);
  EXPECT_EQ(table.Find(hashes[3], col, 3), 2u);
}

TEST(GroupTableTest, GrowthPreservesEveryEntry) {
  GroupTable table(2, 0.7);
  std::vector<int64_t> a, b;
  for (int64_t i = 0; i < 5000; ++i) {
    a.push_back(i % 997);
    b.push_back(i / 997);
  }
  std::vector<ColumnVectorPtr> cols = {Ints(a), Ints(b)};
  const auto hashes = Hashes(cols);
  std::vector<uint32_t> ids(5000);
  for (uint32_t r = 0; r < 5000; ++r) {
    ids[r] = table.FindOrInsert(hashes[r], cols, r);
  }
  EXPECT_EQ(table.num_entries(), 5000u);  // all pairs distinct
  EXPECT_GT(table.rehashes(), 0u);        // started tiny, had to grow
  for (uint32_t r = 0; r < 5000; ++r) {
    EXPECT_EQ(table.Find(hashes[r], cols, r), ids[r]);
  }
}

TEST(GroupTableTest, ReservePreventsMidBuildRehashes) {
  GroupTable table(1, 0.7);
  table.Reserve(5000);
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 5000; ++i) vals.push_back(i);
  std::vector<ColumnVectorPtr> cols = {Ints(vals)};
  const auto hashes = Hashes(cols);
  for (uint32_t r = 0; r < 5000; ++r) table.FindOrInsert(hashes[r], cols, r);
  EXPECT_EQ(table.num_entries(), 5000u);
  EXPECT_EQ(table.rehashes(), 0u);
}

TEST(GroupTableTest, LoadFactorIsClampedToSaneRange) {
  // Degenerate knob values must not hang or overflow; the table clamps to
  // [0.1, 0.95] and keeps working.
  for (double lf : {0.0001, 0.5, 99.0}) {
    GroupTable table(1, lf);
    std::vector<int64_t> vals;
    for (int64_t i = 0; i < 300; ++i) vals.push_back(i);
    std::vector<ColumnVectorPtr> cols = {Ints(vals)};
    const auto hashes = Hashes(cols);
    for (uint32_t r = 0; r < 300; ++r) table.FindOrInsert(hashes[r], cols, r);
    EXPECT_EQ(table.num_entries(), 300u) << "load_factor=" << lf;
    for (uint32_t r = 0; r < 300; ++r) {
      EXPECT_EQ(table.Find(hashes[r], cols, r), r) << "load_factor=" << lf;
    }
  }
}

TEST(JoinTableTest, DuplicateKeyChainsKeepInsertionOrder) {
  JoinTable table(1, 0.7);
  std::vector<ColumnVectorPtr> build = {Ints({5, 7, 5, 5, 7})};
  const auto hashes = Hashes(build);
  for (uint32_t r = 0; r < 5; ++r) {
    table.Insert(hashes[r], build, r, /*payload=*/100 + r);
  }
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.num_keys(), 2u);

  std::vector<ColumnVectorPtr> probe = {Ints({5, 7, 9})};
  const auto probe_hashes = Hashes(probe);
  std::vector<uint64_t> out;
  EXPECT_EQ(table.Probe(probe_hashes[0], probe, 0, &out), 3u);
  EXPECT_EQ(out, (std::vector<uint64_t>{100, 102, 103}));
  out.clear();
  EXPECT_EQ(table.Probe(probe_hashes[1], probe, 1, &out), 2u);
  EXPECT_EQ(out, (std::vector<uint64_t>{101, 104}));
  out.clear();
  EXPECT_EQ(table.Probe(probe_hashes[2], probe, 2, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(JoinTableTest, ReserveFromBuildRowCountPreventsRehashes) {
  JoinTable table(1, 0.7);
  table.Reserve(4000);
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 4000; ++i) vals.push_back(i % 1000);  // 4x dups
  std::vector<ColumnVectorPtr> build = {Ints(vals)};
  const auto hashes = Hashes(build);
  for (uint32_t r = 0; r < 4000; ++r) table.Insert(hashes[r], build, r, r);
  EXPECT_EQ(table.num_rows(), 4000u);
  EXPECT_EQ(table.num_keys(), 1000u);
  EXPECT_EQ(table.rehashes(), 0u);
  std::vector<uint64_t> out;
  EXPECT_EQ(table.Probe(hashes[0], build, 0, &out), 4u);
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 1000, 2000, 3000}));
}

TEST(JoinTableTest, MultiKeyProbeMatchesExactTuples) {
  JoinTable table(2, 0.7);
  std::vector<ColumnVectorPtr> build = {Ints({1, 1, 2}),
                                        Strings({"a", "b", "a"})};
  const auto hashes = Hashes(build);
  for (uint32_t r = 0; r < 3; ++r) table.Insert(hashes[r], build, r, r);
  std::vector<ColumnVectorPtr> probe = {Ints({1, 2, 2}),
                                        Strings({"b", "a", "b"})};
  const auto probe_hashes = Hashes(probe);
  std::vector<uint64_t> out;
  EXPECT_EQ(table.Probe(probe_hashes[0], probe, 0, &out), 1u);
  EXPECT_EQ(out, (std::vector<uint64_t>{1}));
  out.clear();
  EXPECT_EQ(table.Probe(probe_hashes[1], probe, 1, &out), 1u);
  EXPECT_EQ(out, (std::vector<uint64_t>{2}));
  out.clear();
  EXPECT_EQ(table.Probe(probe_hashes[2], probe, 2, &out), 0u);
}

TEST(HashKeyColumnsTest, FlagsNullRowsAndTagsEmptyKeys) {
  std::vector<ColumnVectorPtr> cols = {
      IntsWithNulls({1, 2, 3}, {true, false, true}), Ints({9, 9, 9})};
  std::vector<uint8_t> any_null;
  const auto hashes = HashKeyColumns(cols, 3, &any_null);
  ASSERT_EQ(hashes.size(), 3u);
  EXPECT_EQ(any_null, (std::vector<uint8_t>{0, 1, 0}));
  EXPECT_NE(hashes[0], hashes[2]);  // different keys, different hashes
  // Zero key columns (global aggregation): every row hashes alike.
  std::vector<uint8_t> no_null;
  const auto empty = HashKeyColumns({}, 2, &no_null);
  ASSERT_EQ(empty.size(), 2u);
  EXPECT_EQ(empty[0], empty[1]);
  EXPECT_EQ(no_null, (std::vector<uint8_t>{0, 0}));
}

}  // namespace
}  // namespace pixels
