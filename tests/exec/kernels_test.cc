// Kernel-vs-scalar equivalence: CompiledPredicate::Select and
// EvaluateExprVectorized must agree with the row-wise EvaluateExpr
// evaluator on randomized batches for every lowered shape, and fall back
// (not fail) on shapes outside the kernel set.
#include "exec/kernels.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/expression.h"
#include "sql/parser.h"

namespace pixels {
namespace {

// A batch with qualified names, mixed types, and nulls everywhere.
RowBatchPtr RandomBatch(uint64_t seed, int rows) {
  Random rng(seed);
  auto batch = std::make_shared<RowBatch>();
  auto a = MakeVector(TypeId::kInt64);
  auto b = MakeVector(TypeId::kDouble);
  auto s = MakeVector(TypeId::kString);
  auto f = MakeVector(TypeId::kBool);
  const char* words[] = {"apple", "banana", "cherry", "date"};
  for (int i = 0; i < rows; ++i) {
    rng.Bernoulli(0.1) ? a->AppendNull() : a->AppendInt(rng.Uniform(-20, 20));
    rng.Bernoulli(0.1) ? b->AppendNull()
                       : b->AppendDouble(rng.UniformDouble(-5.0, 5.0));
    rng.Bernoulli(0.1) ? s->AppendNull()
                       : s->AppendString(words[rng.Uniform(0, 3)]);
    rng.Bernoulli(0.1) ? f->AppendNull() : f->AppendBool(rng.Bernoulli(0.5));
  }
  batch->AddColumn("t.a", a);
  batch->AddColumn("t.b", b);
  batch->AddColumn("t.s", s);
  batch->AddColumn("t.flag", f);
  return batch;
}

// FilterOperator's scalar semantics: a row passes when the predicate
// evaluates to non-null true.
SelectionVector ScalarSelect(const Expr& pred, const RowBatch& batch) {
  auto col = EvaluateExpr(pred, batch);
  EXPECT_TRUE(col.ok()) << col.status().ToString();
  SelectionVector sel;
  for (size_t i = 0; i < (*col)->size(); ++i) {
    if (!(*col)->IsNull(i) && (*col)->GetValue(i).i != 0) {
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  return sel;
}

ExprPtr Parse(const std::string& text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
  return e.ok() ? std::move(*e) : nullptr;
}

class CompiledPredicateTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CompiledPredicateTest, SelectMatchesScalarEvaluator) {
  const std::string text = GetParam();
  auto pred = Parse(text);
  ASSERT_NE(pred, nullptr);
  auto compiled = CompiledPredicate::Compile(*pred);
  for (uint64_t seed : {1u, 7u, 42u}) {
    auto batch = RandomBatch(seed, 503);
    auto got = compiled.Select(*batch);
    ASSERT_TRUE(got.ok()) << text << ": " << got.status().ToString();
    EXPECT_EQ(*got, ScalarSelect(*pred, *batch))
        << text << " seed=" << seed
        << " kernel_steps=" << compiled.num_kernel_steps()
        << " residual=" << compiled.has_residual();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompiledPredicateTest,
    ::testing::Values(
        // Kernel-shaped conjuncts.
        "a > 3", "a >= 3", "a < 3", "a <= 3", "a = 3", "a <> 3",
        "b > 0.5", "b <= -1.0", "s = 'banana'", "s <> 'apple'",
        "s < 'cherry'", "t.a > 0", "3 < a",
        "a BETWEEN -5 AND 5", "a NOT BETWEEN -5 AND 5",
        "s IN ('apple', 'cherry')", "s NOT IN ('apple', 'cherry')",
        "a IS NULL", "a IS NOT NULL", "flag", "NOT flag",
        // Conjunctions, mixed kernel shapes.
        "a > 0 AND b < 1.0", "a > -10 AND a < 10 AND s <> 'date'",
        "flag AND a IS NOT NULL AND b > 0.0",
        // Type widening and cross-kind comparisons.
        "a > 1.5", "b = 2", "s > 5", "a = 'x'",
        // Constant-folding shapes.
        "a = NULL", "a BETWEEN 1 AND NULL",
        // Residual shapes (not kernel-lowerable) and mixes.
        "a + b > 0", "a * 2 < b", "a > 0 OR b > 0",
        "a > 0 AND a + b > 0", "NOT (a > 0)"));

TEST(CompiledPredicateTest, KernelShapesActuallyLower) {
  auto pred = Parse("a > 3 AND s = 'x' AND b BETWEEN 0 AND 1");
  auto compiled = CompiledPredicate::Compile(*pred);
  EXPECT_EQ(compiled.num_kernel_steps(), 3u);
  EXPECT_FALSE(compiled.has_residual());
}

TEST(CompiledPredicateTest, NonKernelShapeBecomesResidual) {
  auto pred = Parse("a + b > 0");
  auto compiled = CompiledPredicate::Compile(*pred);
  EXPECT_EQ(compiled.num_kernel_steps(), 0u);
  EXPECT_TRUE(compiled.has_residual());
}

TEST(CompiledPredicateTest, MixedShapeKeepsKernelAndResidual) {
  auto pred = Parse("a > 0 AND a + b > 0");
  auto compiled = CompiledPredicate::Compile(*pred);
  EXPECT_EQ(compiled.num_kernel_steps(), 1u);
  EXPECT_TRUE(compiled.has_residual());
}

TEST(CompiledPredicateTest, UnknownColumnFailsLikeScalar) {
  auto pred = Parse("zz > 3");
  auto compiled = CompiledPredicate::Compile(*pred);
  auto batch = RandomBatch(3, 10);
  EXPECT_FALSE(compiled.Select(*batch).ok());
}

// ---- vectorized projection evaluation ----

class VectorizedExprTest : public ::testing::TestWithParam<const char*> {};

TEST_P(VectorizedExprTest, MatchesScalarEvaluator) {
  const std::string text = GetParam();
  auto expr = Parse(text);
  ASSERT_NE(expr, nullptr);
  for (uint64_t seed : {2u, 11u}) {
    auto batch = RandomBatch(seed, 389);
    auto scalar = EvaluateExpr(*expr, *batch);
    auto vec = EvaluateExprVectorized(*expr, *batch);
    ASSERT_TRUE(scalar.ok()) << text;
    ASSERT_TRUE(vec.ok()) << text << ": " << vec.status().ToString();
    ASSERT_EQ((*scalar)->size(), (*vec)->size()) << text;
    EXPECT_EQ((*scalar)->type(), (*vec)->type()) << text;
    for (size_t i = 0; i < (*scalar)->size(); ++i) {
      ASSERT_EQ((*scalar)->IsNull(i), (*vec)->IsNull(i))
          << text << " row " << i;
      if (!(*scalar)->IsNull(i)) {
        EXPECT_EQ((*scalar)->GetValue(i).Compare((*vec)->GetValue(i)), 0)
            << text << " row " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorizedExprTest,
    ::testing::Values("a", "t.b", "7", "'lit'", "a + 1", "a - b", "a * 2",
                      "b / 2.0", "-a", "-b", "a + b * 2 - 1", "a > b",
                      "a = 3", "b <> 0.5", "s = 'apple'",
                      // Falls back to the scalar path, still identical.
                      "a % 3"));

// ---- bloom selection kernels ----

TEST(BloomSelectTest, NoFalseNegativesAndNullsNeverPass) {
  Random rng(5);
  BloomFilter bloom(64, 10);
  std::vector<int64_t> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng.Uniform(-1000000, 1000000));
    bloom.Add(RfHashInt(keys.back()));
  }
  auto col = MakeVector(TypeId::kInt64);
  for (int i = 0; i < 200; ++i) {
    if (i % 10 == 0) {
      col->AppendNull();
    } else if (i % 2 == 0) {
      col->AppendInt(keys[i % keys.size()]);  // definitely present
    } else {
      col->AppendInt(5000000 + i);  // definitely absent
    }
  }
  auto sel = BloomFilterSelect(*col, bloom, nullptr);
  // Every inserted key's row survives; no null row survives.
  std::vector<bool> selected(col->size(), false);
  for (uint32_t i : sel) selected[i] = true;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsNull(i)) {
      EXPECT_FALSE(selected[i]) << "null row " << i << " passed the bloom";
    } else if (i % 10 != 0 && i % 2 == 0) {
      EXPECT_TRUE(selected[i]) << "inserted key dropped at row " << i;
    }
  }
}

TEST(BloomSelectTest, RespectsInputSelection) {
  BloomFilter bloom(4, 10);
  bloom.Add(RfHashInt(1));
  auto col = MakeVector(TypeId::kInt64);
  for (int i = 0; i < 8; ++i) col->AppendInt(1);  // all keys present
  SelectionVector in = {2, 5, 7};
  auto sel = BloomFilterSelect(*col, bloom, &in);
  EXPECT_EQ(sel, in);
}

TEST(RfHashColumnTest, MatchesPerValueHash) {
  auto check = [](const ColumnVectorPtr& col) {
    auto hashes = RfHashColumn(*col);
    ASSERT_EQ(hashes.size(), col->size());
    for (size_t i = 0; i < col->size(); ++i) {
      if (col->IsNull(i)) continue;
      EXPECT_EQ(hashes[i], RfHashValue(col->GetValue(i))) << "row " << i;
    }
  };
  Random rng(9);
  auto ints = MakeVector(TypeId::kInt64);
  auto dbls = MakeVector(TypeId::kDouble);
  auto strs = MakeVector(TypeId::kString);
  auto bools = MakeVector(TypeId::kBool);
  for (int i = 0; i < 100; ++i) {
    ints->AppendInt(rng.Uniform(-50, 50));
    dbls->AppendDouble(rng.UniformDouble(-2, 2));
    strs->AppendString(rng.NextString(rng.Uniform(0, 8)));
    bools->AppendBool(rng.Bernoulli(0.5));
  }
  ints->AppendNull();
  check(ints);
  check(dbls);
  check(strs);
  check(bools);
}

}  // namespace
}  // namespace pixels
