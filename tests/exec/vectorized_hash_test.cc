// Equivalence suite for the vectorized (typed hash table) join/agg path:
// every query must produce the same rows and bill the same bytes_scanned
// with `vectorized_hash` on or off, serial or parallel, and through the
// CF worker fleet. The matrix covers key types (int, double, string,
// multi-key), null patterns (null groups, null join keys, null agg
// arguments), key cardinality (2 .. every-row-distinct), duplicate build
// keys, residual conditions, LEFT JOIN padding, and COUNT(DISTINCT).
//
// These tests also run under TSan in CI (gtest filter VectorizedHash*):
// the parallel runs exercise the batch-parallel hash prep + partition-
// parallel table builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "format/writer.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "turbo/cf_worker.h"

namespace pixels {
namespace {

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) {
      rows.push_back(b->RowToString(r));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class VectorizedHashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
    FileSchema schema = {{"id", TypeId::kInt64},    {"grp2", TypeId::kInt64},
                         {"grpk", TypeId::kInt64},  {"kstr", TypeId::kString},
                         {"vint", TypeId::kInt64},  {"vdbl", TypeId::kDouble},
                         {"nint", TypeId::kInt64},  {"nstr", TypeId::kString},
                         {"ndbl", TypeId::kDouble}};
    ASSERT_TRUE(catalog_->CreateTable("db", "t", schema).ok());
    // Three files x small row groups so parallel runs have many morsels.
    WriterOptions wo;
    wo.row_group_size = 256;
    int64_t g = 0;
    for (int file = 0; file < 3; ++file) {
      PixelsWriter writer(schema, wo);
      for (int i = 0; i < 1200; ++i, ++g) {
        std::vector<Value> row = {
            Value::Int(g),
            Value::Int(g % 2),
            Value::Int(g % 97),
            Value::String("s" + std::to_string(g % 13)),
            Value::Int(g % 29),
            Value::Double(static_cast<double>(g % 7) * 1.5),
            g % 3 == 0 ? Value::Null() : Value::Int(g % 11),
            g % 5 == 0 ? Value::Null()
                       : Value::String("t" + std::to_string(g % 4)),
            g % 4 == 0 ? Value::Null()
                       : Value::Double(static_cast<double>(g % 5) * 0.25)};
        ASSERT_TRUE(writer.AppendRow(row).ok());
      }
      const std::string path = "db/t/part" + std::to_string(file) + ".pxl";
      ASSERT_TRUE(writer.Finish(storage_.get(), path).ok());
      ASSERT_TRUE(catalog_->AddTableFile("db", "t", path).ok());
    }
  }

  TablePtr Run(const std::string& sql, bool vectorized, int parallelism,
               uint64_t* bytes) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    ctx.vectorized_hash = vectorized;
    ctx.parallelism = parallelism;
    auto r = ExecuteQuery(sql, "db", &ctx);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (bytes != nullptr) *bytes = ctx.bytes_scanned;
    return r.ok() ? *r : nullptr;
  }

  /// Runs `sql` through {scalar, typed} x {serial, parallel 4} and
  /// asserts identical row sets and byte-identical bytes_scanned.
  void ExpectAllPathsAgree(const std::string& sql) {
    uint64_t bytes[4] = {0, 0, 0, 0};
    TablePtr scalar_serial = Run(sql, false, 1, &bytes[0]);
    TablePtr typed_serial = Run(sql, true, 1, &bytes[1]);
    TablePtr scalar_par = Run(sql, false, 4, &bytes[2]);
    TablePtr typed_par = Run(sql, true, 4, &bytes[3]);
    ASSERT_NE(scalar_serial, nullptr) << sql;
    ASSERT_NE(typed_serial, nullptr) << sql;
    ASSERT_NE(scalar_par, nullptr) << sql;
    ASSERT_NE(typed_par, nullptr) << sql;
    const auto expected = SortedRows(*scalar_serial);
    EXPECT_EQ(expected, SortedRows(*typed_serial)) << sql;
    EXPECT_EQ(expected, SortedRows(*scalar_par)) << sql;
    EXPECT_EQ(expected, SortedRows(*typed_par)) << sql;
    EXPECT_EQ(bytes[0], bytes[1]) << sql;
    EXPECT_EQ(bytes[0], bytes[2]) << sql;
    EXPECT_EQ(bytes[0], bytes[3]) << sql;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(VectorizedHashTest, LowCardinalityIntGroupBy) {
  ExpectAllPathsAgree(
      "SELECT grp2, count(*) AS n, sum(vint) AS s, min(vdbl) AS lo, "
      "max(kstr) AS hi FROM t GROUP BY grp2");
}

TEST_F(VectorizedHashTest, NullGroupsAggregateTogether) {
  ExpectAllPathsAgree(
      "SELECT nint, count(*) AS n, sum(vdbl) AS s, avg(vint) AS a "
      "FROM t GROUP BY nint");
}

TEST_F(VectorizedHashTest, EveryRowDistinctGroupBy) {
  ExpectAllPathsAgree("SELECT id, sum(vint) AS s FROM t GROUP BY id");
}

TEST_F(VectorizedHashTest, MultiKeyGroupByWithNullArguments) {
  ExpectAllPathsAgree(
      "SELECT grpk, kstr, count(*) AS n, min(nint) AS lo, max(ndbl) AS hi, "
      "sum(nint) AS s FROM t GROUP BY grpk, kstr");
}

TEST_F(VectorizedHashTest, StringKeyGroupBy) {
  ExpectAllPathsAgree(
      "SELECT nstr, count(*) AS n, min(kstr) AS lo FROM t GROUP BY nstr");
}

TEST_F(VectorizedHashTest, GlobalAggregation) {
  ExpectAllPathsAgree(
      "SELECT count(*) AS n, sum(nint) AS s, min(nstr) AS lo, max(vdbl) AS "
      "hi, avg(ndbl) AS a FROM t");
}

TEST_F(VectorizedHashTest, CountDistinctStaysExact) {
  ExpectAllPathsAgree(
      "SELECT grp2, count(DISTINCT kstr) AS d, count(DISTINCT nint) AS dn "
      "FROM t GROUP BY grp2");
}

TEST_F(VectorizedHashTest, FilterFeedsSelectionVectorIntoAggregation) {
  ExpectAllPathsAgree(
      "SELECT grpk, sum(vint) AS s, count(*) AS n FROM t WHERE vint < 10 "
      "GROUP BY grpk");
}

TEST_F(VectorizedHashTest, SelectiveEquiJoin) {
  ExpectAllPathsAgree(
      "SELECT a.id, b.grpk FROM t a JOIN t b ON a.id = b.id "
      "WHERE b.vint < 5");
}

TEST_F(VectorizedHashTest, DuplicateBuildKeysExpandAllMatches) {
  ExpectAllPathsAgree(
      "SELECT a.grpk, count(*) AS n FROM t a JOIN t b ON a.grpk = b.grpk "
      "WHERE a.vint < 3 AND b.vint < 3 GROUP BY a.grpk");
}

TEST_F(VectorizedHashTest, NullJoinKeysNeverMatch) {
  ExpectAllPathsAgree(
      "SELECT a.id, b.id FROM t a JOIN t b ON a.nint = b.nint "
      "WHERE a.id < 40 AND b.id < 40");
}

TEST_F(VectorizedHashTest, StringKeyJoin) {
  ExpectAllPathsAgree(
      "SELECT a.id, b.id FROM t a JOIN t b ON a.nstr = b.nstr "
      "WHERE a.id < 25 AND b.id < 25");
}

TEST_F(VectorizedHashTest, ResidualConditionAfterEquiMatch) {
  ExpectAllPathsAgree(
      "SELECT a.id, b.id FROM t a JOIN t b "
      "ON a.grpk = b.grpk AND a.vint < b.vint "
      "WHERE a.id < 60 AND b.id < 60");
}

TEST_F(VectorizedHashTest, LeftJoinPadsUnmatchedProbeRows) {
  ExpectAllPathsAgree(
      "SELECT a.id, b.id FROM t a LEFT JOIN t b ON a.nint = b.id "
      "WHERE a.id < 50");
}

TEST_F(VectorizedHashTest, JoinThenAggregatePipelines) {
  ExpectAllPathsAgree(
      "SELECT a.grp2, b.kstr, sum(a.vint) AS s, count(*) AS n "
      "FROM t a JOIN t b ON a.id = b.id WHERE a.vdbl < 6.0 "
      "GROUP BY a.grp2, b.kstr");
}

TEST_F(VectorizedHashTest, LoadFactorKnobDoesNotChangeResults) {
  const std::string sql =
      "SELECT grpk, count(*) AS n, sum(vint) AS s FROM t GROUP BY grpk";
  uint64_t base_bytes = 0;
  TablePtr base = Run(sql, true, 1, &base_bytes);
  ASSERT_NE(base, nullptr);
  for (double lf : {0.2, 0.9}) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    ctx.vectorized_hash = true;
    ctx.hash_table_load_factor = lf;
    auto r = ExecuteQuery(sql, "db", &ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(SortedRows(*base), SortedRows(**r)) << "load_factor=" << lf;
    EXPECT_EQ(base_bytes, ctx.bytes_scanned) << "load_factor=" << lf;
  }
}

TEST_F(VectorizedHashTest, HighParallelismPartitionBuildStaysDeterministic) {
  // More partitions than distinct keys in some groups; repeated runs must
  // agree exactly (this is the TSan target for partition-parallel builds).
  const std::string sql =
      "SELECT a.grpk, count(*) AS n, sum(b.vint) AS s FROM t a "
      "JOIN t b ON a.grpk = b.grpk WHERE a.vint < 2 AND b.vint < 2 "
      "GROUP BY a.grpk";
  uint64_t b1 = 0, b2 = 0;
  TablePtr r1 = Run(sql, true, 16, &b1);
  TablePtr r2 = Run(sql, true, 16, &b2);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(SortedRows(*r1), SortedRows(*r2));
  EXPECT_EQ(b1, b2);
  uint64_t serial_bytes = 0;
  TablePtr serial = Run(sql, true, 1, &serial_bytes);
  ASSERT_NE(serial, nullptr);
  EXPECT_EQ(SortedRows(*serial), SortedRows(*r1));
  EXPECT_EQ(serial_bytes, b1);
}

TEST_F(VectorizedHashTest, CfFleetBillsIdenticallyWithKnobOnAndOff) {
  // The CF seam: the same sub-plan pushed to workers must return the same
  // rows and bill the same bytes whether workers run typed or scalar.
  const std::string sql =
      "SELECT grpk, sum(vint) AS s, count(*) AS n FROM t WHERE vint < 20 "
      "GROUP BY grpk ORDER BY grpk";
  auto plan = [&]() {
    auto p = PlanQuery(sql, *catalog_, "db");
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    auto o = Optimize(std::move(p).ValueOrDie(), *catalog_);
    EXPECT_TRUE(o.ok());
    return o.ok() ? *o : nullptr;
  };
  CfWorkerOptions on;
  on.num_workers = 3;
  on.vectorized_hash = true;
  auto exec_on = ExecuteWithCfPushdown(plan(), catalog_.get(), on);
  ASSERT_TRUE(exec_on.ok()) << exec_on.status().ToString();

  CfWorkerOptions off;
  off.num_workers = 3;
  off.vectorized_hash = false;
  auto exec_off = ExecuteWithCfPushdown(plan(), catalog_.get(), off);
  ASSERT_TRUE(exec_off.ok()) << exec_off.status().ToString();

  EXPECT_EQ(SortedRows(*exec_on->result), SortedRows(*exec_off->result));
  EXPECT_EQ(exec_on->bytes_scanned, exec_off->bytes_scanned);

  // And both match direct (non-CF) execution.
  uint64_t direct_bytes = 0;
  TablePtr direct = Run(sql, true, 1, &direct_bytes);
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(SortedRows(*direct), SortedRows(*exec_on->result));
}

}  // namespace
}  // namespace pixels
