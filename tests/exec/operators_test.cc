// Operator-level tests: partial/merge aggregation, the materialized-view
// operator, row keys, and limit/distinct streaming behaviour.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/hash_agg.h"
#include "exec/operators.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "plan/subplan.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::BuildTestCatalog();
    ctx_.catalog = catalog_.get();
  }

  PlanPtr Plan(const std::string& sql) {
    auto plan = PlanQuery(sql, *catalog_, "db");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(OperatorsTest, RowKeyDistinguishesValues) {
  auto batch = std::make_shared<RowBatch>();
  auto a = MakeVector(TypeId::kInt64);
  auto b = MakeVector(TypeId::kString);
  a->AppendInt(1);
  a->AppendInt(1);
  a->AppendNull();
  b->AppendString("x");
  b->AppendString("y");
  b->AppendString("x");
  batch->AddColumn("a", a);
  batch->AddColumn("b", b);
  std::vector<int> cols = {0, 1};
  EXPECT_NE(RowKey(*batch, 0, cols), RowKey(*batch, 1, cols));
  EXPECT_NE(RowKey(*batch, 0, cols), RowKey(*batch, 2, cols));
  EXPECT_EQ(RowKey(*batch, 0, cols), RowKey(*batch, 0, cols));
}

TEST_F(OperatorsTest, ValuesKeyIsPrefixFree) {
  // ("ab", "c") must differ from ("a", "bc").
  EXPECT_NE(ValuesKey({Value::String("ab"), Value::String("c")}),
            ValuesKey({Value::String("a"), Value::String("bc")}));
  // Int 1 vs String "1".
  EXPECT_NE(ValuesKey({Value::Int(1)}), ValuesKey({Value::String("1")}));
  // Null vs zero.
  EXPECT_NE(ValuesKey({Value::Null()}), ValuesKey({Value::Int(0)}));
}

TEST_F(OperatorsTest, ValuesKeyComponentFramingResistsAdversarialSplits) {
  // Each component is length-prefixed, so no concatenation of serialized
  // components can collide with a different split of the same bytes.
  // A string whose payload embeds what a varint length prefix would look
  // like must not fold into its neighbor.
  EXPECT_NE(ValuesKey({Value::String(std::string("\x01", 1) + "ab"),
                       Value::String("c")}),
            ValuesKey({Value::String(std::string("\x01", 1) + "a"),
                       Value::String("bc")}));
  // Three short components vs two that concatenate to the same bytes.
  EXPECT_NE(ValuesKey({Value::String("a"), Value::String("b"),
                       Value::String("c")}),
            ValuesKey({Value::String("a"), Value::String("bc")}));
  // An empty string component still occupies a framed slot.
  EXPECT_NE(ValuesKey({Value::String(""), Value::String("x")}),
            ValuesKey({Value::String("x"), Value::String("")}));
  EXPECT_NE(ValuesKey({Value::String(""), Value::String("")}),
            ValuesKey({Value::String("")}));
  // Kind bytes are inside the frame: a string whose first byte equals the
  // int kind tag cannot impersonate an int component.
  EXPECT_NE(ValuesKey({Value::String(std::string(1, '\x01'))}),
            ValuesKey({Value::Int(1)}));
  // Numeric kinds stay distinct even when payload bits agree.
  EXPECT_NE(ValuesKey({Value::Int(1)}), ValuesKey({Value::Double(1.0)}));
  EXPECT_NE(ValuesKey({Value::Int(1)}), ValuesKey({Value::Bool(true)}));
  // Same values, same order: keys are deterministic.
  EXPECT_EQ(ValuesKey({Value::Int(7), Value::String("x"), Value::Null()}),
            ValuesKey({Value::Int(7), Value::String("x"), Value::Null()}));
}

TEST_F(OperatorsTest, PartialThenMergeMatchesDirectAggregation) {
  // Direct execution.
  auto direct_plan = Plan(
      "SELECT dept, sum(salary) AS s, count(*) AS c, avg(salary) AS a, "
      "min(salary) AS lo, max(salary) AS hi FROM emp GROUP BY dept ORDER BY "
      "dept");
  auto direct = ExecutePlan(direct_plan, &ctx_);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  // Split into partial + merge, run the partial sub-plan, inject, run final.
  auto split = SplitForCf(direct_plan);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(split->partial_agg);
  ExecContext worker_ctx;
  worker_ctx.catalog = catalog_.get();
  auto partial = ExecutePlan(split->subplan, &worker_ctx);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_TRUE(InjectView(split->final_plan, *partial).ok());
  ExecContext final_ctx;
  final_ctx.catalog = catalog_.get();
  auto merged = ExecutePlan(split->final_plan, &final_ctx);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Results must match row for row.
  ASSERT_EQ((*direct)->num_rows(), (*merged)->num_rows());
  std::vector<std::string> a, b;
  for (const auto& batch : (*direct)->batches()) {
    for (size_t r = 0; r < batch->num_rows(); ++r) a.push_back(batch->RowToString(r));
  }
  for (const auto& batch : (*merged)->batches()) {
    for (size_t r = 0; r < batch->num_rows(); ++r) b.push_back(batch->RowToString(r));
  }
  EXPECT_EQ(a, b);
}

TEST_F(OperatorsTest, PartialMergeSplitOverMultipleWorkerResults) {
  // Simulate two workers producing partial results over row subsets.
  auto plan = Plan("SELECT dept, sum(salary) AS s, count(*) AS c FROM emp "
                   "GROUP BY dept ORDER BY dept");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok() && split->partial_agg);

  // Worker 1 sees ids 1-4, worker 2 sees ids 5-8: emulate by running the
  // partial plan with an extra filter injected below the aggregate.
  auto run_partial_with_filter = [&](const std::string& cond) -> TablePtr {
    auto filtered_plan = PlanQuery(
        "SELECT dept, sum(salary) AS s, count(*) AS c FROM emp WHERE " + cond +
            " GROUP BY dept",
        *catalog_, "db");
    EXPECT_TRUE(filtered_plan.ok());
    auto s = SplitForCf(*filtered_plan);
    EXPECT_TRUE(s.ok() && s->partial_agg);
    ExecContext c;
    c.catalog = catalog_.get();
    auto t = ExecutePlan(s->subplan, &c);
    EXPECT_TRUE(t.ok());
    return *t;
  };
  TablePtr w1 = run_partial_with_filter("id <= 4");
  TablePtr w2 = run_partial_with_filter("id > 4");
  auto combined = std::make_shared<Table>();
  for (const auto& b : w1->batches()) combined->AddBatch(b);
  for (const auto& b : w2->batches()) combined->AddBatch(b);

  ASSERT_TRUE(InjectView(split->final_plan, combined).ok());
  ExecContext final_ctx;
  final_ctx.catalog = catalog_.get();
  auto merged = ExecutePlan(split->final_plan, &final_ctx);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  std::vector<std::string> rows;
  for (const auto& batch : (*merged)->batches()) {
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      rows.push_back(batch->RowToString(r));
    }
  }
  EXPECT_EQ(rows, (std::vector<std::string>{"eng\t325\t3", "hr\t142\t2",
                                            "sales\t255\t3"}));
}

TEST_F(OperatorsTest, ViewOperatorFailsWithoutInjection) {
  auto placeholder = MakeMaterializedView(nullptr);
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  auto result = ExecutePlan(placeholder, &ctx);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST_F(OperatorsTest, ViewOperatorIteratesBatches) {
  auto table = std::make_shared<Table>();
  for (int i = 0; i < 3; ++i) {
    auto batch = std::make_shared<RowBatch>();
    auto col = MakeVector(TypeId::kInt64);
    col->AppendInt(i);
    batch->AddColumn("v", col);
    table->AddBatch(batch);
  }
  auto view = MakeMaterializedView(table);
  ExecContext ctx;
  auto result = ExecutePlan(view, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 3u);
}

TEST_F(OperatorsTest, ScanRespectsFileSubset) {
  auto plan = Plan("SELECT id FROM emp");
  // Point the scan at a non-existent subset: scan should fail loudly.
  LogicalPlan* scan = plan.get();
  while (scan->kind != LogicalPlan::Kind::kScan) scan = scan->children[0].get();
  scan->file_subset = {"no/such/file.pxl"};
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  EXPECT_FALSE(ExecutePlan(plan, &ctx).ok());
}

}  // namespace
}  // namespace pixels
