// Runtime filters end to end: bloom filters never drop a matching key,
// the hub survives concurrent publish/probe (TSan target), and a join
// query returns byte-identical results with filters on or off — while
// the on-path's skipped bytes exactly account for the billed-byte delta,
// including across the CF pushdown seam.
#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "exec/bloom_filter.h"
#include "exec/executor.h"
#include "exec/kernels.h"
#include "format/writer.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "turbo/cf_worker.h"

namespace pixels {
namespace {

TEST(RuntimeFilterBloomTest, NoFalseNegatives) {
  Random rng(17);
  for (int bits_per_key : {4, 8, 16}) {
    std::vector<uint64_t> hashes;
    BloomFilter bloom(1000, bits_per_key);
    for (int i = 0; i < 1000; ++i) {
      hashes.push_back(RfHashInt(rng.Uniform(-5000000000LL, 5000000000LL)));
      bloom.Add(hashes.back());
    }
    for (uint64_t h : hashes) {
      EXPECT_TRUE(bloom.MayContain(h)) << "bits_per_key=" << bits_per_key;
    }
  }
}

TEST(RuntimeFilterBloomTest, FalsePositiveRateIsReasonable) {
  Random rng(23);
  BloomFilter bloom(1000, 8);
  for (int i = 0; i < 1000; ++i) bloom.Add(RfHashInt(i));
  int fp = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (bloom.MayContain(RfHashInt(1000000 + i))) ++fp;
  }
  // 8 bits/key is ~2% theoretical; allow generous slack.
  EXPECT_LT(fp, kProbes / 10);
}

TEST(RuntimeFilterBloomTest, EmptyAndZeroSizedFilters) {
  BloomFilter empty(0, 8);
  // Never crashes; any answer is legal for a filter with no keys, but the
  // published key_count=0 short-circuit means probes never rely on it.
  empty.MayContain(RfHashInt(1));
  RuntimeFilter rf(0, 8);
  EXPECT_EQ(rf.key_count, 0u);
  EXPECT_FALSE(rf.has_range);
}

// TSan target: joins publish into the hub while scans poll it.
TEST(RuntimeFilterConcurrencyTest, ConcurrentPublishAndProbe) {
  RuntimeFilterHub hub;
  constexpr int kFilters = 8;
  constexpr int kKeysPerFilter = 64;

  std::vector<std::thread> threads;
  for (int id = 0; id < kFilters; ++id) {
    threads.emplace_back([&, id] {
      auto rf = std::make_shared<RuntimeFilter>(kKeysPerFilter, 8);
      for (int k = 0; k < kKeysPerFilter; ++k) {
        rf->bloom.Add(RfHashInt(id * 1000 + k));
      }
      rf->key_count = kKeysPerFilter;
      hub.Publish(id, std::move(rf));
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // Probe whatever is published so far; a published filter must be
      // fully built (the hub's mutex orders build writes before reads).
      for (int round = 0; round < 200; ++round) {
        for (int id = 0; id < kFilters; ++id) {
          RuntimeFilterPtr rf = hub.Get(id);
          if (rf == nullptr) continue;
          for (int k = 0; k < kKeysPerFilter; ++k) {
            EXPECT_TRUE(rf->bloom.MayContain(RfHashInt(id * 1000 + k)));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int id = 0; id < kFilters; ++id) {
    ASSERT_NE(hub.Get(id), nullptr);
    EXPECT_EQ(hub.Get(id)->key_count, static_cast<uint64_t>(kKeysPerFilter));
  }
}

// ---- end-to-end join: results, billing, and the CF seam ----

// fact(k, v, tag): 2000 rows in 8 row groups of 250, k clustered so each
// row group covers a distinct k range (row group i holds k in
// [i*10, i*10+10)). dim(k, name): keys 0..9 only, so the published range
// [0, 9] prunes every fact row group but the first.
std::shared_ptr<Catalog> BuildJoinCatalog() {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  EXPECT_TRUE(catalog->CreateDatabase("db").ok());
  {
    FileSchema schema = {{"k", TypeId::kInt64},
                         {"v", TypeId::kInt64},
                         {"tag", TypeId::kString}};
    EXPECT_TRUE(catalog->CreateTable("db", "fact", schema).ok());
    WriterOptions options;
    options.row_group_size = 250;
    PixelsWriter writer(schema, options);
    const char* tags[] = {"red", "green", "blue"};
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(writer
                      .AppendRow({Value::Int(i / 25), Value::Int(i % 97),
                                  Value::String(tags[i % 3])})
                      .ok());
    }
    EXPECT_TRUE(writer.Finish(storage.get(), "db/fact/part0.pxl").ok());
    EXPECT_TRUE(catalog->AddTableFile("db", "fact", "db/fact/part0.pxl").ok());
  }
  {
    FileSchema schema = {{"k", TypeId::kInt64}, {"name", TypeId::kString}};
    EXPECT_TRUE(catalog->CreateTable("db", "dim", schema).ok());
    PixelsWriter writer(schema);
    for (int k = 0; k < 10; ++k) {
      EXPECT_TRUE(
          writer.AppendRow({Value::Int(k), Value::String("d" + std::to_string(k))})
              .ok());
    }
    EXPECT_TRUE(writer.Finish(storage.get(), "db/dim/part0.pxl").ok());
    EXPECT_TRUE(catalog->AddTableFile("db", "dim", "db/dim/part0.pxl").ok());
  }
  return catalog;
}

std::vector<std::string> Rows(const Table& t) {
  std::vector<std::string> out;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) out.push_back(b->RowToString(r));
  }
  return out;
}

constexpr char kJoinSql[] =
    "SELECT d.name, sum(f.v) AS s, count(*) AS c FROM fact f "
    "JOIN dim d ON f.k = d.k GROUP BY d.name ORDER BY d.name";

class RuntimeFilterJoinTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = BuildJoinCatalog(); }

  struct Run {
    std::vector<std::string> rows;
    uint64_t bytes = 0;
    uint64_t rf_probe_rows = 0;
    uint64_t rf_pruned_rows = 0;
    uint64_t rf_pruned_row_groups = 0;
    uint64_t rf_skipped_bytes = 0;
  };

  Run Execute(bool runtime_filters, int parallelism = 1,
              bool fused_decode = true, const std::string& sql = kJoinSql) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    ctx.runtime_filters = runtime_filters;
    ctx.fused_decode = fused_decode;
    ctx.parallelism = parallelism;
    auto result = ExecuteQuery(sql, "db", &ctx);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    Run run;
    if (result.ok()) run.rows = Rows(**result);
    run.bytes = ctx.bytes_scanned.load();
    run.rf_probe_rows = ctx.rf_probe_rows.load();
    run.rf_pruned_rows = ctx.rf_pruned_rows.load();
    run.rf_pruned_row_groups = ctx.rf_pruned_row_groups.load();
    run.rf_skipped_bytes = ctx.rf_skipped_bytes.load();
    return run;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(RuntimeFilterJoinTest, IdenticalResultsAndExactByteAudit) {
  const Run off = Execute(/*runtime_filters=*/false);
  const Run on = Execute(/*runtime_filters=*/true);

  ASSERT_FALSE(off.rows.empty());
  EXPECT_EQ(off.rows, on.rows);

  // The filter genuinely pruned: the build side holds k in [0, 9], so 7
  // of the 8 fact row groups (k >= 10) are never fetched.
  EXPECT_EQ(on.rf_pruned_row_groups, 7u);
  EXPECT_GT(on.rf_skipped_bytes, 0u);
  EXPECT_LT(on.bytes, off.bytes);

  // Exact audit: what the filters skipped is exactly the billed delta.
  EXPECT_EQ(off.bytes, on.bytes + on.rf_skipped_bytes);

  // The off-run never touched a filter.
  EXPECT_EQ(off.rf_probe_rows, 0u);
  EXPECT_EQ(off.rf_skipped_bytes, 0u);
}

TEST_F(RuntimeFilterJoinTest, SerialAndParallelRunsAreIdentical) {
  const Run serial = Execute(true, /*parallelism=*/1);
  const Run parallel = Execute(true, /*parallelism=*/4);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial.bytes, parallel.bytes);
  EXPECT_EQ(serial.rf_probe_rows, parallel.rf_probe_rows);
  EXPECT_EQ(serial.rf_pruned_rows, parallel.rf_pruned_rows);
  EXPECT_EQ(serial.rf_pruned_row_groups, parallel.rf_pruned_row_groups);
  EXPECT_EQ(serial.rf_skipped_bytes, parallel.rf_skipped_bytes);
}

TEST_F(RuntimeFilterJoinTest, FusedDecodeMatchesUnfusedWithSameBill) {
  const std::string sql =
      "SELECT tag, count(*) AS c FROM fact WHERE k >= 30 AND k < 50 "
      "AND tag <> 'red' GROUP BY tag ORDER BY tag";
  const Run fused = Execute(false, 1, /*fused_decode=*/true, sql);
  const Run unfused = Execute(false, 1, /*fused_decode=*/false, sql);
  ASSERT_FALSE(fused.rows.empty());
  EXPECT_EQ(fused.rows, unfused.rows);
  // Fused decode changes how chunks are materialized, never what is
  // fetched: the bill is byte-identical.
  EXPECT_EQ(fused.bytes, unfused.bytes);
}

TEST_F(RuntimeFilterJoinTest, AllKnobCombinationsAgree) {
  std::vector<std::string> expected;
  for (bool rf : {false, true}) {
    for (bool fused : {false, true}) {
      for (int par : {1, 3}) {
        const Run run = Execute(rf, par, fused);
        if (expected.empty()) expected = run.rows;
        EXPECT_EQ(run.rows, expected)
            << "rf=" << rf << " fused=" << fused << " par=" << par;
      }
    }
  }
}

TEST_F(RuntimeFilterJoinTest, EmptyBuildSideSkipsEveryRowGroup) {
  // No dim key matches: the published filter has key_count == 0, so the
  // probe scan drops every morsel without fetching any fact bytes.
  const std::string sql =
      "SELECT count(*) AS c FROM fact f JOIN dim d ON f.k = d.k "
      "WHERE d.name = 'nope'";
  const Run off = Execute(false, 1, true, sql);
  const Run on = Execute(true, 1, true, sql);
  EXPECT_EQ(off.rows, on.rows);
  EXPECT_EQ(on.rf_pruned_row_groups, 8u);
  EXPECT_EQ(off.bytes, on.bytes + on.rf_skipped_bytes);
}

// TSan target: parallel probe-side scans race the bloom probes and the
// rf counters while the fleet decodes morsels concurrently.
TEST_F(RuntimeFilterJoinTest, ConcurrentProbeScanUnderFilters) {
  const Run a = Execute(true, /*parallelism=*/4);
  const Run b = Execute(true, /*parallelism=*/4);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.bytes, b.bytes);
}

// The CF seam: the same query through ExecuteWithCfPushdown, with the
// worker fleet's scans consulting filters published in their context.
TEST_F(RuntimeFilterJoinTest, CfSeamIdenticalResultsAndByteAudit) {
  auto plan_for = [&]() {
    auto plan = PlanQuery(kJoinSql, *catalog_, "db");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    EXPECT_TRUE(optimized.ok());
    return std::move(optimized).ValueOrDie();
  };

  CfWorkerOptions off;
  off.num_workers = 4;
  off.runtime_filters = false;
  auto exec_off = ExecuteWithCfPushdown(plan_for(), catalog_.get(), off);
  ASSERT_TRUE(exec_off.ok()) << exec_off.status().ToString();

  CfWorkerOptions on;
  on.num_workers = 4;
  on.runtime_filters = true;
  auto exec_on = ExecuteWithCfPushdown(plan_for(), catalog_.get(), on);
  ASSERT_TRUE(exec_on.ok()) << exec_on.status().ToString();

  EXPECT_EQ(Rows(*exec_off->result), Rows(*exec_on->result));
  // Same exact audit across the seam: every byte the filters skipped is
  // a byte the off-run billed.
  EXPECT_EQ(exec_off->bytes_scanned,
            exec_on->bytes_scanned + exec_on->rf_skipped_bytes);
  EXPECT_EQ(exec_off->rf_skipped_bytes, 0u);

  // And the direct (no-pushdown) result agrees with both.
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  auto direct = ExecuteQuery(kJoinSql, "db", &ctx);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Rows(**direct), Rows(*exec_on->result));
}

TEST_F(RuntimeFilterJoinTest, ExplainAnalyzeReportsFilterCounters) {
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  ctx.runtime_filters = true;
  auto result =
      ExecuteQuery(std::string("EXPLAIN ANALYZE ") + kJoinSql, "db", &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string report;
  for (const auto& v : (*result)->CollectColumn("plan")) {
    report += v.s;
    report += "\n";
  }
  EXPECT_NE(report.find("rf_pruned_row_groups="), std::string::npos) << report;
  EXPECT_NE(report.find("rf_skipped_bytes="), std::string::npos) << report;
}

}  // namespace
}  // namespace pixels
