// End-to-end SQL tests: parse -> bind -> optimize -> execute over the
// shared test catalog, verifying results.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::BuildTestCatalog();
    ctx_.catalog = catalog_.get();
  }

  TablePtr Run(const std::string& sql) {
    auto r = ExecuteQuery(sql, "db", &ctx_);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  std::vector<std::string> Rows(const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) out.push_back(b->RowToString(r));
    }
    return out;
  }

  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(QueryTest, SelectAllRows) {
  auto t = Run("SELECT id, name FROM emp");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 8u);
}

TEST_F(QueryTest, FilterRows) {
  auto t = Run("SELECT name FROM emp WHERE salary > 100");
  ASSERT_NE(t, nullptr);
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"alice", "frank"}));
}

TEST_F(QueryTest, FilterWithAndOr) {
  auto t = Run(
      "SELECT name FROM emp WHERE dept = 'hr' OR (dept = 'eng' AND salary < "
      "100)");
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"bob", "erin", "grace"}));
}

TEST_F(QueryTest, ProjectionExpressions) {
  auto t = Run("SELECT id * 10 + 1 AS x FROM emp WHERE id <= 2");
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"11", "21"}));
}

TEST_F(QueryTest, GlobalAggregates) {
  auto t = Run("SELECT count(*), sum(salary), min(salary), max(salary) FROM emp");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 1u);
  auto counts = t->CollectColumn("count(*)");
  EXPECT_EQ(counts[0].i, 8);
  auto sums = t->CollectColumn("sum(emp.salary)");
  EXPECT_DOUBLE_EQ(sums[0].d, 120 + 95 + 80 + 85 + 70 + 110 + 72 + 90);
}

TEST_F(QueryTest, GroupByWithOrder) {
  auto t = Run(
      "SELECT dept, count(*) AS c, sum(salary) AS total FROM emp GROUP BY "
      "dept ORDER BY dept");
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "eng\t3\t325");
  EXPECT_EQ(rows[1], "hr\t2\t142");
  EXPECT_EQ(rows[2], "sales\t3\t255");
}

TEST_F(QueryTest, AvgAggregate) {
  auto t = Run("SELECT dept, avg(salary) FROM emp GROUP BY dept ORDER BY dept");
  auto vals = t->CollectColumn("avg(emp.salary)");
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_NEAR(vals[0].d, 325.0 / 3, 1e-9);
  EXPECT_NEAR(vals[1].d, 71.0, 1e-9);
}

TEST_F(QueryTest, CountDistinct) {
  auto t = Run("SELECT count(DISTINCT dept) FROM emp");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"3"}));
}

TEST_F(QueryTest, Having) {
  auto t = Run(
      "SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) > 2 "
      "ORDER BY dept");
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "eng\t3");
  EXPECT_EQ(rows[1], "sales\t3");
}

TEST_F(QueryTest, AggregateExpressionOverAggregates) {
  auto t = Run("SELECT sum(salary) / count(*) AS mean FROM emp");
  auto vals = t->CollectColumn("mean");
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_NEAR(vals[0].d, 722.0 / 8, 1e-9);
}

TEST_F(QueryTest, InnerJoin) {
  auto t = Run(
      "SELECT e.name, d.location FROM emp e JOIN dept d ON e.dept = d.name "
      "WHERE e.salary > 100 ORDER BY e.name");
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"alice\tzurich", "frank\tzurich"}));
}

TEST_F(QueryTest, JoinWithAggregation) {
  auto t = Run(
      "SELECT d.location, count(*) AS c FROM emp e JOIN dept d ON e.dept = "
      "d.name GROUP BY d.location ORDER BY d.location");
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"nyc\t3", "sf\t2", "zurich\t3"}));
}

TEST_F(QueryTest, LeftJoinPadsNulls) {
  // dept 'legal' has no employees, so its row pads with NULL.
  auto t = Run(
      "SELECT d.name, count(e.id) AS c FROM dept d LEFT JOIN emp e ON d.name "
      "= e.dept GROUP BY d.name ORDER BY d.name");
  ASSERT_NE(t, nullptr);
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], "eng\t3");
  EXPECT_EQ(rows[1], "hr\t2");
  EXPECT_EQ(rows[2], "legal\t0");  // count skips the padded NULL
  EXPECT_EQ(rows[3], "sales\t3");
}

TEST_F(QueryTest, CrossJoinCardinality) {
  auto t = Run("SELECT e.id FROM emp e CROSS JOIN dept d");
  EXPECT_EQ(t->num_rows(), 32u);
}

TEST_F(QueryTest, CommaJoinWithWhere) {
  auto t = Run(
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.name AND d.location "
      "= 'sf' ORDER BY e.name");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"erin", "grace"}));
}

TEST_F(QueryTest, NonEquiJoin) {
  auto t = Run(
      "SELECT e1.name FROM emp e1 JOIN emp e2 ON e1.salary < e2.salary WHERE "
      "e2.name = 'alice' ORDER BY e1.name");
  // Everyone earns less than alice except alice herself.
  EXPECT_EQ(t->num_rows(), 7u);
}

TEST_F(QueryTest, OrderByMultipleKeys) {
  auto t = Run("SELECT dept, name FROM emp ORDER BY dept ASC, name DESC");
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0], "eng\tfrank");
  EXPECT_EQ(rows[1], "eng\tbob");
  EXPECT_EQ(rows[2], "eng\talice");
}

TEST_F(QueryTest, Limit) {
  auto t = Run("SELECT name FROM emp ORDER BY id LIMIT 3");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"alice", "bob", "carol"}));
  auto t0 = Run("SELECT name FROM emp LIMIT 0");
  EXPECT_EQ(t0->num_rows(), 0u);
}

TEST_F(QueryTest, Distinct) {
  auto t = Run("SELECT DISTINCT dept FROM emp ORDER BY dept");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"eng", "hr", "sales"}));
}

TEST_F(QueryTest, DateComparison) {
  auto t = Run(
      "SELECT name FROM emp WHERE hired >= DATE '2021-01-01' ORDER BY name");
  EXPECT_EQ(Rows(*t),
            (std::vector<std::string>{"bob", "dave", "frank", "heidi"}));
}

TEST_F(QueryTest, YearFunction) {
  auto t = Run("SELECT name FROM emp WHERE year(hired) = 2020 ORDER BY name");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"alice", "grace"}));
}

TEST_F(QueryTest, LikeFilter) {
  auto t = Run("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"alice", "carol", "dave",
                                                "frank", "grace"}));
}

TEST_F(QueryTest, CaseInProjection) {
  auto t = Run(
      "SELECT name, CASE WHEN salary >= 100 THEN 'high' ELSE 'normal' END AS "
      "band FROM emp WHERE id <= 2 ORDER BY id");
  auto rows = Rows(*t);
  EXPECT_EQ(rows[0], "alice\thigh");
  EXPECT_EQ(rows[1], "bob\tnormal");
}

TEST_F(QueryTest, EmptyResultSet) {
  auto t = Run("SELECT name FROM emp WHERE salary > 100000");
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST_F(QueryTest, AggregateOverEmptyInput) {
  auto t = Run("SELECT count(*), sum(salary) FROM emp WHERE id > 100");
  auto rows = Rows(*t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "0\tNULL");
}

TEST_F(QueryTest, GroupedAggregateOverEmptyInputIsEmpty) {
  auto t = Run("SELECT dept, count(*) FROM emp WHERE id > 100 GROUP BY dept");
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST_F(QueryTest, ScanAccountingTracksBytes) {
  ctx_.bytes_scanned = 0;
  Run("SELECT name FROM emp");
  EXPECT_GT(ctx_.bytes_scanned, 0u);
  EXPECT_GT(ctx_.rows_scanned, 0u);
}

TEST_F(QueryTest, SelectLiteralsWithoutFrom) {
  auto t = Run("SELECT 1 + 1 AS two, 'x' AS s");
  auto rows = Rows(*t);
  EXPECT_EQ(rows, (std::vector<std::string>{"2\tx"}));
}

TEST_F(QueryTest, ZoneMapPruningStillReturnsExactResults) {
  // Predicate pushdown prunes row groups but the filter is exact.
  auto t = Run("SELECT id FROM emp WHERE id = 5");
  EXPECT_EQ(Rows(*t), (std::vector<std::string>{"5"}));
}

}  // namespace
}  // namespace pixels
