#include "exec/expression.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace pixels {
namespace {

RowBatchPtr MakeBatch() {
  auto batch = std::make_shared<RowBatch>();
  auto a = MakeVector(TypeId::kInt64);
  auto b = MakeVector(TypeId::kDouble);
  auto s = MakeVector(TypeId::kString);
  a->AppendInt(1);
  a->AppendInt(2);
  a->AppendNull();
  b->AppendDouble(0.5);
  b->AppendDouble(-1.5);
  b->AppendDouble(2.0);
  s->AppendString("apple");
  s->AppendString("banana");
  s->AppendString("cherry");
  batch->AddColumn("t.a", a);
  batch->AddColumn("t.b", b);
  batch->AddColumn("t.s", s);
  return batch;
}

Result<ColumnVectorPtr> Eval(const std::string& expr, const RowBatch& batch) {
  auto e = ParseExpression(expr);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return EvaluateExpr(**e, batch);
}

TEST(ExpressionTest, ColumnRefFastPath) {
  auto batch = MakeBatch();
  auto r = Eval("a", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt(0), 1);
  EXPECT_TRUE((*r)->IsNull(2));
}

TEST(ExpressionTest, QualifiedColumnRef) {
  auto batch = MakeBatch();
  auto r = Eval("t.a", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size(), 3u);
}

TEST(ExpressionTest, UnknownColumnFails) {
  auto batch = MakeBatch();
  EXPECT_FALSE(Eval("zz", *batch).ok());
}

TEST(ExpressionTest, ArithmeticWithNullPropagation) {
  auto batch = MakeBatch();
  auto r = Eval("a + 10", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt(0), 11);
  EXPECT_EQ((*r)->GetInt(1), 12);
  EXPECT_TRUE((*r)->IsNull(2));
}

TEST(ExpressionTest, MixedIntDoubleWidens) {
  auto batch = MakeBatch();
  auto r = Eval("a * b", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ((*r)->GetDouble(0), 0.5);
  EXPECT_DOUBLE_EQ((*r)->GetDouble(1), -3.0);
}

TEST(ExpressionTest, IntegerDivisionAndModulo) {
  auto batch = MakeBatch();
  auto r = Eval("7 / a", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt(0), 7);
  EXPECT_EQ((*r)->GetInt(1), 3);
  auto m = Eval("7 % 3", *batch);
  EXPECT_EQ((*m)->GetInt(0), 1);
}

TEST(ExpressionTest, DivisionByZeroYieldsNull) {
  auto batch = MakeBatch();
  auto r = Eval("a / 0", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsNull(0));
}

TEST(ExpressionTest, Comparisons) {
  auto batch = MakeBatch();
  auto r = Eval("a >= 2", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->GetBool(0));
  EXPECT_TRUE((*r)->GetBool(1));
  EXPECT_TRUE((*r)->IsNull(2));
}

TEST(ExpressionTest, LogicShortCircuitsWithNulls) {
  auto batch = MakeBatch();
  // a IS NULL on row 2; false AND null = false.
  auto r = Eval("a < 0 AND b > 0", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->GetBool(0));
  // null AND true = null.
  auto r2 = Eval("a > 0 AND b > 0", *batch);
  EXPECT_TRUE((*r2)->IsNull(2));
  // null OR true = true.
  auto r3 = Eval("a > 0 OR b > 0", *batch);
  EXPECT_TRUE((*r3)->GetBool(2));
}

TEST(ExpressionTest, NotOperator) {
  auto batch = MakeBatch();
  auto r = Eval("NOT (a = 1)", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->GetBool(0));
  EXPECT_TRUE((*r)->GetBool(1));
  EXPECT_TRUE((*r)->IsNull(2));
}

TEST(ExpressionTest, LikePatterns) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_FALSE(LikeMatch("hello", "h_llx"));
  EXPECT_FALSE(LikeMatch("hello", "ello"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(LikeMatch("a", "%%a%%"));
}

TEST(ExpressionTest, LikeOnColumn) {
  auto batch = MakeBatch();
  auto r = Eval("s LIKE '%an%'", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE((*r)->GetBool(0));
  EXPECT_TRUE((*r)->GetBool(1));
  EXPECT_FALSE((*r)->GetBool(2));
}

TEST(ExpressionTest, BetweenAndIn) {
  auto batch = MakeBatch();
  auto r = Eval("a BETWEEN 1 AND 1", *batch);
  EXPECT_TRUE((*r)->GetBool(0));
  EXPECT_FALSE((*r)->GetBool(1));
  auto r2 = Eval("s IN ('apple', 'cherry')", *batch);
  EXPECT_TRUE((*r2)->GetBool(0));
  EXPECT_FALSE((*r2)->GetBool(1));
  EXPECT_TRUE((*r2)->GetBool(2));
  auto r3 = Eval("a NOT IN (1)", *batch);
  EXPECT_FALSE((*r3)->GetBool(0));
  EXPECT_TRUE((*r3)->GetBool(1));
}

TEST(ExpressionTest, IsNull) {
  auto batch = MakeBatch();
  auto r = Eval("a IS NULL", *batch);
  EXPECT_FALSE((*r)->GetBool(0));
  EXPECT_TRUE((*r)->GetBool(2));
  auto r2 = Eval("a IS NOT NULL", *batch);
  EXPECT_TRUE((*r2)->GetBool(0));
  EXPECT_FALSE((*r2)->GetBool(2));
}

TEST(ExpressionTest, CaseExpression) {
  auto batch = MakeBatch();
  auto r = Eval("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'other' END",
                *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetString(0), "one");
  EXPECT_EQ((*r)->GetString(1), "two");
  EXPECT_EQ((*r)->GetString(2), "other");
}

TEST(ExpressionTest, CaseWithoutElseYieldsNull) {
  auto batch = MakeBatch();
  auto r = Eval("CASE WHEN a = 1 THEN 5 END", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt(0), 5);
  EXPECT_TRUE((*r)->IsNull(1));
}

TEST(ExpressionTest, StringFunctions) {
  auto batch = MakeBatch();
  EXPECT_EQ((*Eval("upper(s)", *batch))->GetString(0), "APPLE");
  EXPECT_EQ((*Eval("lower('ABC')", *batch))->GetString(0), "abc");
  EXPECT_EQ((*Eval("length(s)", *batch))->GetInt(1), 6);
  EXPECT_EQ((*Eval("substr(s, 2, 3)", *batch))->GetString(0), "ppl");
  EXPECT_EQ((*Eval("substr(s, 2)", *batch))->GetString(0), "pple");
  EXPECT_EQ((*Eval("concat(s, '!')", *batch))->GetString(0), "apple!");
  EXPECT_EQ((*Eval("s || '-x'", *batch))->GetString(0), "apple-x");
}

TEST(ExpressionTest, MathFunctions) {
  auto batch = MakeBatch();
  EXPECT_DOUBLE_EQ((*Eval("abs(b)", *batch))->GetDouble(1), 1.5);
  EXPECT_EQ((*Eval("abs(a - 5)", *batch))->GetInt(0), 4);
  EXPECT_DOUBLE_EQ((*Eval("round(b)", *batch))->GetDouble(0), 1.0);
  EXPECT_DOUBLE_EQ((*Eval("round(3.14159, 2)", *batch))->GetDouble(0), 3.14);
  EXPECT_DOUBLE_EQ((*Eval("floor(b)", *batch))->GetDouble(0), 0.0);
  EXPECT_DOUBLE_EQ((*Eval("ceil(b)", *batch))->GetDouble(0), 1.0);
  EXPECT_DOUBLE_EQ((*Eval("sqrt(4)", *batch))->GetDouble(0), 2.0);
}

TEST(ExpressionTest, Coalesce) {
  auto batch = MakeBatch();
  auto r = Eval("coalesce(a, 0)", *batch);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->GetInt(2), 0);
  EXPECT_EQ((*r)->GetInt(0), 1);
}

TEST(ExpressionTest, DateFunctions) {
  auto batch = std::make_shared<RowBatch>();
  auto d = MakeVector(TypeId::kDate);
  d->AppendInt(*ParseDate("2021-07-15"));
  batch->AddColumn("d", d);
  EXPECT_EQ((*Eval("year(d)", *batch))->GetInt(0), 2021);
  EXPECT_EQ((*Eval("month(d)", *batch))->GetInt(0), 7);
  EXPECT_EQ((*Eval("day(d)", *batch))->GetInt(0), 15);
}

TEST(ExpressionTest, Casts) {
  auto batch = MakeBatch();
  EXPECT_EQ((*Eval("CAST(b AS int)", *batch))->GetInt(2), 2);
  EXPECT_DOUBLE_EQ((*Eval("CAST(a AS double)", *batch))->GetDouble(0), 1.0);
  EXPECT_EQ((*Eval("CAST('42' AS bigint)", *batch))->GetInt(0), 42);
  EXPECT_EQ((*Eval("CAST(a AS varchar)", *batch))->GetString(0), "1");
  EXPECT_TRUE((*Eval("CAST('abc' AS int)", *batch))->IsNull(0));
}

TEST(ExpressionTest, UnknownFunctionFails) {
  auto batch = MakeBatch();
  EXPECT_FALSE(Eval("frobnicate(a)", *batch).ok());
}

TEST(ExpressionTest, WrongArgCountFails) {
  auto batch = MakeBatch();
  EXPECT_FALSE(Eval("abs(a, b)", *batch).ok());
  EXPECT_FALSE(Eval("length()", *batch).ok());
}

TEST(ExpressionTest, MixedStringNumericOutputFails) {
  auto batch = MakeBatch();
  EXPECT_FALSE(Eval("CASE WHEN a = 1 THEN 's' ELSE 2 END", *batch).ok());
}

TEST(BuildVectorTest, TypeInference) {
  auto ints = BuildVectorFromValues({Value::Int(1), Value::Null()});
  ASSERT_TRUE(ints.ok());
  EXPECT_EQ((*ints)->type(), TypeId::kInt64);
  auto dbls = BuildVectorFromValues({Value::Int(1), Value::Double(2.5)});
  EXPECT_EQ((*dbls)->type(), TypeId::kDouble);
  auto strs = BuildVectorFromValues({Value::String("x")});
  EXPECT_EQ((*strs)->type(), TypeId::kString);
  auto empty = BuildVectorFromValues({});
  EXPECT_EQ((*empty)->type(), TypeId::kInt64);
}

}  // namespace
}  // namespace pixels
