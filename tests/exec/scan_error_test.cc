// Error propagation through parallel scans: a mid-scan storage fault must
// surface as the query's Status (first error wins, per the ParallelFor
// contract) without crashing, leaking, or corrupting billing counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "testing/switchable_storage.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

using pixels::testing::SwitchableStorage;

class ScanErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = std::make_shared<MemoryStore>();
    switchable_ = std::make_shared<SwitchableStorage>(mem_);
    catalog_ = std::make_shared<Catalog>(switchable_);
    TpchOptions options;
    options.scale_factor = 0.002;
    options.rows_per_file = 2500;
    options.row_group_size = 1024;  // many morsels per file
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());
  }

  void InjectFaults(FaultInjectionParams params) {
    injector_ =
        std::make_shared<FaultInjectingStorage>(mem_, std::move(params));
    switchable_->SetTarget(injector_);
  }
  void HealFaults() { switchable_->SetTarget(mem_); }

  Result<TablePtr> Run(const std::string& sql, int parallelism,
                       ExecContext* ctx_out = nullptr) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    ctx.parallelism = parallelism;
    auto r = ExecuteQuery(sql, "tpch", &ctx);
    if (ctx_out != nullptr) {
      ctx_out->bytes_scanned = ctx.bytes_scanned.load();
      ctx_out->rows_scanned = ctx.rows_scanned.load();
    }
    return r;
  }

  static std::vector<std::string> SortedRows(const Table& t) {
    std::vector<std::string> rows;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r)
        rows.push_back(b->RowToString(r));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  const std::string sql_ =
      "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
      "FROM lineitem GROUP BY l_returnflag";

  std::shared_ptr<MemoryStore> mem_;
  std::shared_ptr<SwitchableStorage> switchable_;
  std::shared_ptr<FaultInjectingStorage> injector_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(ScanErrorTest, ParallelForSurfacesFirstErrorAndSkipsRest) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  Status st = pool.ParallelFor(
      0, 100, 1,
      [&](size_t i) -> Status {
        executed.fetch_add(1);
        if (i == 3) return Status::IOError("chunk " + std::to_string(i));
        return Status::OK();
      },
      4);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  // First error wins and remaining chunks are skipped: strictly fewer
  // than all 100 bodies ran.
  EXPECT_LT(executed.load(), 100);

  // An all-OK run afterwards works on the same pool: no poisoned state.
  executed = 0;
  ASSERT_TRUE(pool.ParallelFor(0, 100, 1,
                               [&](size_t) -> Status {
                                 executed.fetch_add(1);
                                 return Status::OK();
                               },
                               4)
                  .ok());
  EXPECT_EQ(executed.load(), 100);
}

TEST_F(ScanErrorTest, MidScanFaultFailsParallelQueryWithoutCrash) {
  // One injected failure somewhere in the parallel scan: the query fails
  // with that IOError (never a wrong result), and the engine survives.
  InjectFaults([] {
    FaultInjectionParams p;
    FaultRule rule;
    rule.fail_first_reads = 1;
    p.rules.push_back(rule);
    return p;
  }());
  auto r = Run(sql_, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
  // The single fault is consumed; the very next run succeeds.
  auto retry = Run(sql_, 4);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(ScanErrorTest, RepeatedParallelFailuresNeverCorruptCounters) {
  ExecContext clean_ctx;
  auto clean = Run(sql_, 1, &clean_ctx);
  ASSERT_TRUE(clean.ok());
  const uint64_t clean_bytes = clean_ctx.bytes_scanned.load();

  InjectFaults([] {
    FaultInjectionParams p;
    p.read_error_rate = 0.5;
    return p;
  }());
  int failures = 0, successes = 0;
  for (int i = 0; i < 20; ++i) {
    ExecContext ctx;
    auto r = Run(sql_, 4, &ctx);
    if (r.ok()) {
      ++successes;
      EXPECT_EQ(SortedRows(**r), SortedRows(**clean));
      // A successful run bills exactly the fault-free bytes.
      EXPECT_EQ(ctx.bytes_scanned.load(), clean_bytes);
    } else {
      ++failures;
      EXPECT_TRUE(r.status().IsIOError());
      // A failed run can only have scanned a subset of the table.
      EXPECT_LE(ctx.bytes_scanned.load(), clean_bytes);
    }
  }
  EXPECT_GT(failures, 0);  // the 50% rate must have tripped something

  // After healing, results and billing are exactly the baseline again.
  HealFaults();
  ExecContext healed_ctx;
  auto healed = Run(sql_, 4, &healed_ctx);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(SortedRows(**healed), SortedRows(**clean));
  EXPECT_EQ(healed_ctx.bytes_scanned.load(), clean_bytes);
}

TEST_F(ScanErrorTest, FailedQueryLeavesEngineReusableAcrossParallelism) {
  InjectFaults([] {
    FaultInjectionParams p;
    FaultRule rule;
    rule.fail_first_reads = 2;
    p.rules.push_back(rule);
    return p;
  }());
  EXPECT_FALSE(Run(sql_, 1).ok());  // serial path surfaces the error too
  EXPECT_FALSE(Run(sql_, 8).ok());
  auto ok = Run(sql_, 8);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT((*ok)->num_rows(), 0u);
}

}  // namespace
}  // namespace pixels
