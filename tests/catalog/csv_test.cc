#include "catalog/csv.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

FileSchema TestSchema() {
  return {{"id", TypeId::kInt64},
          {"name", TypeId::kString},
          {"score", TypeId::kDouble},
          {"joined", TypeId::kDate},
          {"active", TypeId::kBool}};
}

TEST(CsvParseTest, BasicRows) {
  const std::string csv =
      "id,name,score,joined,active\n"
      "1,alice,9.5,2024-01-15,true\n"
      "2,bob,7.25,2023-06-01,false\n";
  auto rows = ParseCsv(csv, TestSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].i, 1);
  EXPECT_EQ((*rows)[0][1].s, "alice");
  EXPECT_DOUBLE_EQ((*rows)[1][2].d, 7.25);
  EXPECT_EQ((*rows)[0][3].i, *ParseDate("2024-01-15"));
  EXPECT_TRUE((*rows)[0][4].AsBool());
  EXPECT_FALSE((*rows)[1][4].AsBool());
}

TEST(CsvParseTest, QuotedFieldsAndEscapes) {
  FileSchema schema = {{"a", TypeId::kString}, {"b", TypeId::kString}};
  const std::string csv =
      "a,b\n"
      "\"has,comma\",\"has \"\"quotes\"\"\"\n"
      "\"multi\nline\",plain\n";
  auto rows = ParseCsv(csv, schema);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].s, "has,comma");
  EXPECT_EQ((*rows)[0][1].s, "has \"quotes\"");
  EXPECT_EQ((*rows)[1][0].s, "multi\nline");
}

TEST(CsvParseTest, EmptyFieldsAreNull) {
  const std::string csv = "id,name,score,joined,active\n3,,,,\n";
  auto rows = ParseCsv(csv, TestSchema());
  ASSERT_TRUE(rows.ok());
  EXPECT_FALSE((*rows)[0][0].is_null());
  for (int c = 1; c < 5; ++c) EXPECT_TRUE((*rows)[0][c].is_null()) << c;
}

TEST(CsvParseTest, CustomNullLiteralAndDelimiter) {
  FileSchema schema = {{"a", TypeId::kInt64}, {"b", TypeId::kString}};
  CsvOptions options;
  options.delimiter = ';';
  options.null_literal = "NA";
  const std::string csv = "a;b\n1;x\nNA;NA\n";
  auto rows = ParseCsv(csv, schema, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE((*rows)[1][0].is_null());
  EXPECT_TRUE((*rows)[1][1].is_null());
}

TEST(CsvParseTest, HeaderValidation) {
  auto bad_count = ParseCsv("id,name\n", TestSchema());
  EXPECT_TRUE(bad_count.status().IsParseError());
  auto bad_name =
      ParseCsv("id,wrong,score,joined,active\n", TestSchema());
  EXPECT_TRUE(bad_name.status().IsParseError());
}

TEST(CsvParseTest, NoHeaderMode) {
  FileSchema schema = {{"a", TypeId::kInt64}};
  CsvOptions options;
  options.has_header = false;
  auto rows = ParseCsv("1\n2\n3\n", schema, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(CsvParseTest, TypeErrorsReportLine) {
  FileSchema schema = {{"a", TypeId::kInt64}};
  auto r = ParseCsv("a\nnotanint\n", schema);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseCsv("a\n1.5x\n", {{"a", TypeId::kDouble}}).ok());
  EXPECT_FALSE(ParseCsv("a\n2024-13-99\n", {{"a", TypeId::kDate}}).ok());
  EXPECT_FALSE(ParseCsv("a\nmaybe\n", {{"a", TypeId::kBool}}).ok());
}

TEST(CsvParseTest, FieldCountMismatchFails) {
  FileSchema schema = {{"a", TypeId::kInt64}, {"b", TypeId::kInt64}};
  EXPECT_FALSE(ParseCsv("a,b\n1\n", schema).ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n", schema).ok());
}

TEST(CsvLoadTest, EndToEndLoadAndQuery) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  ASSERT_TRUE(catalog->CreateDatabase("db").ok());
  const std::string csv =
      "id,name,score,joined,active\n"
      "1,alice,9.5,2024-01-15,true\n"
      "2,bob,7.25,2023-06-01,false\n"
      "3,carol,8.0,2024-03-20,true\n";
  auto loaded = LoadCsvTable(catalog.get(), "db", "people", TestSchema(), csv,
                             "db/people/part0.pxl");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);

  ExecContext ctx;
  ctx.catalog = catalog.get();
  auto result = ExecuteQuery(
      "SELECT name FROM people WHERE active AND score > 8 ORDER BY name",
      "db", &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto names = (*result)->CollectColumn("name");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].s, "alice");
}

TEST(CsvExportTest, RoundTripThroughCsv) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  ASSERT_TRUE(catalog->CreateDatabase("db").ok());
  const std::string csv =
      "id,name,score,joined,active\n"
      "1,\"a,b\",1.5,2020-01-01,true\n"
      "2,,,,\n";
  ASSERT_TRUE(LoadCsvTable(catalog.get(), "db", "t", TestSchema(), csv,
                           "db/t/p.pxl")
                  .ok());
  ExecContext ctx;
  ctx.catalog = catalog.get();
  auto result = ExecuteQuery("SELECT * FROM t ORDER BY id", "db", &ctx);
  ASSERT_TRUE(result.ok());
  std::string exported = TableToCsv(**result);
  EXPECT_NE(exported.find("\"a,b\""), std::string::npos);
  // NULLs export as empty fields.
  EXPECT_NE(exported.find("2,,,,"), std::string::npos);
}

TEST(CsvExportTest, QuotesSpecialCharacters) {
  Table table;
  auto batch = std::make_shared<RowBatch>();
  auto col = MakeVector(TypeId::kString);
  col->AppendString("with \"quote\"");
  col->AppendString("with\nnewline");
  batch->AddColumn("text", col);
  table.AddBatch(batch);
  std::string csv = TableToCsv(table);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\nnewline\""), std::string::npos);
}

}  // namespace
}  // namespace pixels
