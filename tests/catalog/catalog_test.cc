#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "format/writer.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
  }

  FileSchema SimpleSchema() {
    return {{"id", TypeId::kInt64}, {"name", TypeId::kString}};
  }

  void WriteSimpleFile(const std::string& path, int rows) {
    PixelsWriter writer(SimpleSchema());
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(writer
                      .AppendRow({Value::Int(i),
                                  Value::String("r" + std::to_string(i))})
                      .ok());
    }
    ASSERT_TRUE(writer.Finish(storage_.get(), path).ok());
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, CreateAndListDatabases) {
  ASSERT_TRUE(catalog_->CreateDatabase("a").ok());
  ASSERT_TRUE(catalog_->CreateDatabase("b").ok());
  EXPECT_TRUE(catalog_->CreateDatabase("a").IsAlreadyExists());
  auto dbs = catalog_->ListDatabases();
  ASSERT_TRUE(dbs.ok());
  EXPECT_EQ(*dbs, (std::vector<std::string>{"a", "b"}));
}

TEST_F(CatalogTest, GetDatabaseMissing) {
  EXPECT_TRUE(catalog_->GetDatabase("nope").status().IsNotFound());
}

TEST_F(CatalogTest, CreateTableValidation) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  EXPECT_TRUE(catalog_->CreateTable("nope", "t", SimpleSchema()).IsNotFound());
  EXPECT_TRUE(catalog_->CreateTable("db", "t", {}).IsInvalidArgument());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  EXPECT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).IsAlreadyExists());
}

TEST_F(CatalogTest, DataMutationsBumpVersionEpoch) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  auto v0 = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(v0.ok());
  EXPECT_GT(*v0, 0u);

  WriteSimpleFile("db/t/a.pxl", 3);
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/a.pxl").ok());
  auto v1 = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(v1.ok());
  EXPECT_GT(*v1, *v0);

  ASSERT_TRUE(catalog_->ReplaceTableFiles("db", "t", {"db/t/a.pxl"}).ok());
  auto v2 = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(*v2, *v1);

  EXPECT_TRUE(catalog_->GetTableVersion("db", "nope").status().IsNotFound());
}

TEST_F(CatalogTest, RecreatedTableNeverReusesEpoch) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  WriteSimpleFile("db/t/a.pxl", 3);
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/a.pxl").ok());
  auto old_version = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(old_version.ok());

  // Drop and recreate: the catalog-wide counter guarantees the new
  // incarnation starts past every epoch an MV entry could still pin.
  ASSERT_TRUE(catalog_->DropTable("db", "t").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  auto new_version = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(new_version.ok());
  EXPECT_GT(*new_version, *old_version);
}

TEST_F(CatalogTest, AddTableFileUpdatesStats) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  WriteSimpleFile("db/t/p0.pxl", 10);
  WriteSimpleFile("db/t/p1.pxl", 5);
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/p0.pxl").ok());
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/p1.pxl").ok());
  auto table = catalog_->GetTable("db", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count, 15u);
  EXPECT_EQ((*table)->files.size(), 2u);
  EXPECT_GT((*table)->total_bytes, 0u);
}

TEST_F(CatalogTest, AddTableFileRejectsSchemaMismatch) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  FileSchema other = {{"x", TypeId::kDouble}};
  PixelsWriter writer(other);
  ASSERT_TRUE(writer.AppendRow({Value::Double(1)}).ok());
  ASSERT_TRUE(writer.Finish(storage_.get(), "db/t/bad.pxl").ok());
  EXPECT_TRUE(
      catalog_->AddTableFile("db", "t", "db/t/bad.pxl").IsInvalidArgument());
}

TEST_F(CatalogTest, DropTable) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  ASSERT_TRUE(catalog_->DropTable("db", "t").ok());
  EXPECT_TRUE(catalog_->GetTable("db", "t").status().IsNotFound());
  EXPECT_TRUE(catalog_->DropTable("db", "t").IsNotFound());
}

TEST_F(CatalogTest, ScanTableAcrossFiles) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  WriteSimpleFile("db/t/p0.pxl", 7);
  WriteSimpleFile("db/t/p1.pxl", 3);
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/p0.pxl").ok());
  ASSERT_TRUE(catalog_->AddTableFile("db", "t", "db/t/p1.pxl").ok());
  uint64_t bytes = 0;
  auto batches = catalog_->ScanTable("db", "t", ScanOptions{}, &bytes);
  ASSERT_TRUE(batches.ok());
  size_t rows = 0;
  for (const auto& b : *batches) rows += b->num_rows();
  EXPECT_EQ(rows, 10u);
  EXPECT_GT(bytes, 0u);
}

TEST_F(CatalogTest, SchemaJsonShape) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  auto db = catalog_->GetDatabase("db");
  ASSERT_TRUE(db.ok());
  Json j = (*db)->ToJson();
  EXPECT_EQ(j.Get("database").AsString(), "db");
  EXPECT_EQ(j.Get("tables").size(), 1u);
  const Json& table = j.Get("tables").At(0);
  EXPECT_EQ(table.Get("table").AsString(), "t");
  EXPECT_EQ(table.Get("columns").At(0).Get("name").AsString(), "id");
  EXPECT_EQ(table.Get("columns").At(0).Get("type").AsString(), "bigint");
}

TEST_F(CatalogTest, ColumnTypeLookup) {
  ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog_->CreateTable("db", "t", SimpleSchema()).ok());
  auto table = catalog_->GetTable("db", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*(*table)->ColumnType("name"), TypeId::kString);
  EXPECT_TRUE((*table)->ColumnType("zzz").status().IsNotFound());
  EXPECT_EQ((*table)->FindColumn("id"), 0);
  EXPECT_EQ((*table)->FindColumn("zzz"), -1);
}

}  // namespace
}  // namespace pixels
