#include "catalog/compaction.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "format/writer.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    ASSERT_TRUE(catalog_->CreateDatabase("db").ok());
    schema_ = {{"id", TypeId::kInt64}, {"v", TypeId::kDouble}};
    ASSERT_TRUE(catalog_->CreateTable("db", "t", schema_).ok());
  }

  // Writes `files` files of `rows_each` rows with globally increasing ids.
  void Populate(int files, int rows_each) {
    int64_t next_id = 0;
    for (int f = 0; f < files; ++f) {
      PixelsWriter writer(schema_);
      for (int r = 0; r < rows_each; ++r, ++next_id) {
        ASSERT_TRUE(writer
                        .AppendRow({Value::Int(next_id),
                                    Value::Double(next_id * 0.25)})
                        .ok());
      }
      std::string path = "db/t/small" + std::to_string(f) + ".pxl";
      ASSERT_TRUE(writer.Finish(storage_.get(), path).ok());
      ASSERT_TRUE(catalog_->AddTableFile("db", "t", path).ok());
    }
  }

  int64_t CountRows() {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    auto r = ExecuteQuery("SELECT count(*) AS n, sum(id) AS s FROM t", "db",
                          &ctx);
    EXPECT_TRUE(r.ok());
    return (*r)->CollectColumn("n")[0].i;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  FileSchema schema_;
};

TEST_F(CompactionTest, MergesSmallFiles) {
  Populate(10, 100);
  CompactionOptions options;
  options.target_rows_per_file = 600;
  auto result = CompactTable(catalog_.get(), "db", "t", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->files_before, 10u);
  EXPECT_EQ(result->files_after, 2u);  // 600 + 400
  EXPECT_EQ(result->rows, 1000u);
  auto table = catalog_->GetTable("db", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->files.size(), 2u);
  EXPECT_EQ((*table)->row_count, 1000u);
}

TEST_F(CompactionTest, DataSurvivesExactly) {
  Populate(7, 53);
  int64_t before = CountRows();
  ExecContext ctx_before;
  ctx_before.catalog = catalog_.get();
  auto sum_before = ExecuteQuery("SELECT sum(id) AS s FROM t", "db", &ctx_before);
  ASSERT_TRUE(sum_before.ok());
  double s_before = (*sum_before)->CollectColumn("s")[0].AsDouble();

  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t").ok());
  EXPECT_EQ(CountRows(), before);
  ExecContext ctx_after;
  ctx_after.catalog = catalog_.get();
  auto sum_after = ExecuteQuery("SELECT sum(id) AS s FROM t", "db", &ctx_after);
  ASSERT_TRUE(sum_after.ok());
  EXPECT_DOUBLE_EQ((*sum_after)->CollectColumn("s")[0].AsDouble(), s_before);
}

TEST_F(CompactionTest, InputsDeletedByDefault) {
  Populate(4, 10);
  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t").ok());
  auto leftovers = storage_->List("db/t/small");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

TEST_F(CompactionTest, InputsKeptWhenRequested) {
  Populate(4, 10);
  CompactionOptions options;
  options.delete_inputs = false;
  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t", options).ok());
  auto leftovers = storage_->List("db/t/small");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_EQ(leftovers->size(), 4u);
}

TEST_F(CompactionTest, EmptyTableCompactsToNothing) {
  auto result = CompactTable(catalog_.get(), "db", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->files_after, 0u);
  EXPECT_EQ(result->rows, 0u);
}

TEST_F(CompactionTest, CustomPrefixUsed) {
  Populate(2, 10);
  CompactionOptions options;
  options.path_prefix = "archive/t/big";
  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t", options).ok());
  auto table = catalog_->GetTable("db", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->files[0].rfind("archive/t/big", 0), 0u);
}

TEST_F(CompactionTest, MissingTableFails) {
  EXPECT_TRUE(CompactTable(catalog_.get(), "db", "nope").status().IsNotFound());
}

TEST_F(CompactionTest, ReplaceTableFilesValidatesSchema) {
  Populate(1, 5);
  FileSchema other = {{"x", TypeId::kString}};
  PixelsWriter writer(other);
  ASSERT_TRUE(writer.AppendRow({Value::String("a")}).ok());
  ASSERT_TRUE(writer.Finish(storage_.get(), "other.pxl").ok());
  EXPECT_TRUE(catalog_->ReplaceTableFiles("db", "t", {"other.pxl"})
                  .IsInvalidArgument());
  // Table untouched after the failed swap.
  auto table = catalog_->GetTable("db", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count, 5u);
}

TEST_F(CompactionTest, CompactionBumpsVersionEpoch) {
  Populate(6, 50);
  auto before = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t").ok());
  auto after = catalog_->GetTableVersion("db", "t");
  ASSERT_TRUE(after.ok());
  // The file-list swap is a data mutation: materialized views built over
  // the pre-compaction files must see a new epoch and invalidate.
  EXPECT_GT(*after, *before);
}

TEST_F(CompactionTest, CompactionReducesPerScanRequests) {
  Populate(20, 50);
  // Wrap storage accounting around scans pre/post compaction: the number
  // of reader opens equals the file count, so fewer files = fewer
  // footer/chunk requests.
  auto count_files = [&] {
    auto table = catalog_->GetTable("db", "t");
    EXPECT_TRUE(table.ok());
    return (*table)->files.size();
  };
  EXPECT_EQ(count_files(), 20u);
  CompactionOptions options;
  options.target_rows_per_file = 1000;
  ASSERT_TRUE(CompactTable(catalog_.get(), "db", "t", options).ok());
  EXPECT_EQ(count_files(), 1u);
  EXPECT_EQ(CountRows(), 1000);
}

}  // namespace
}  // namespace pixels
