#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

TEST(CatalogPersistenceTest, SchemaJsonRoundTrip) {
  TableSchema t;
  t.name = "orders";
  t.columns = {{"o_orderkey", TypeId::kInt64},
               {"o_orderdate", TypeId::kDate},
               {"o_comment", TypeId::kString}};
  t.files = {"a/p0.pxl", "a/p1.pxl"};
  t.row_count = 123;
  t.total_bytes = 4567;
  auto restored = TableSchema::FromJson(t.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, "orders");
  EXPECT_TRUE(restored->columns == t.columns);
  EXPECT_EQ(restored->files, t.files);
  EXPECT_EQ(restored->row_count, 123u);
  EXPECT_EQ(restored->total_bytes, 4567u);
}

TEST(CatalogPersistenceTest, RejectsMalformedJson) {
  EXPECT_FALSE(TableSchema::FromJson(Json("not an object")).ok());
  Json no_cols = Json::Object();
  no_cols.Set("table", "t");
  EXPECT_FALSE(TableSchema::FromJson(no_cols).ok());
  Json bad_type = Json::Object();
  bad_type.Set("table", "t");
  Json cols = Json::Array();
  Json col = Json::Object();
  col.Set("name", "x");
  col.Set("type", "blob");
  cols.Append(std::move(col));
  bad_type.Set("columns", std::move(cols));
  EXPECT_FALSE(TableSchema::FromJson(bad_type).ok());
}

TEST(CatalogPersistenceTest, SaveLoadPreservesQueries) {
  auto storage = std::make_shared<MemoryStore>();
  {
    // "First boot": generate data, persist the catalog.
    Catalog catalog(storage);
    TpchOptions options;
    options.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(&catalog, "tpch", options).ok());
    ASSERT_TRUE(catalog.SaveToStorage("meta/catalog.json").ok());
  }
  {
    // "Restart": a fresh catalog over the same storage loads metadata and
    // serves queries against the existing .pxl files.
    auto restarted = std::make_shared<Catalog>(storage);
    ASSERT_TRUE(restarted->LoadFromStorage("meta/catalog.json").ok());
    auto dbs = restarted->ListDatabases();
    ASSERT_TRUE(dbs.ok());
    EXPECT_EQ(*dbs, (std::vector<std::string>{"tpch"}));
    auto table = restarted->GetTable("tpch", "orders");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->row_count, 1500u);
    ExecContext ctx;
    ctx.catalog = restarted.get();
    auto result = ExecuteQuery("SELECT count(*) AS n FROM lineitem", "tpch",
                               &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ((*result)->CollectColumn("n")[0].i, 6000);
  }
}

TEST(CatalogPersistenceTest, VersionEpochsSurviveRestart) {
  auto storage = std::make_shared<MemoryStore>();
  uint64_t saved_version = 0;
  {
    Catalog catalog(storage);
    ASSERT_TRUE(catalog.CreateDatabase("db").ok());
    ASSERT_TRUE(
        catalog.CreateTable("db", "a", {{"x", TypeId::kInt64}}).ok());
    ASSERT_TRUE(
        catalog.CreateTable("db", "b", {{"x", TypeId::kInt64}}).ok());
    auto v = catalog.GetTableVersion("db", "b");
    ASSERT_TRUE(v.ok());
    saved_version = *v;
    ASSERT_TRUE(catalog.SaveToStorage("meta.json").ok());
  }
  {
    Catalog restarted(storage);
    ASSERT_TRUE(restarted.LoadFromStorage("meta.json").ok());
    auto v = restarted.GetTableVersion("db", "b");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, saved_version);
    // The counter resumes past every persisted epoch: post-restart
    // mutations keep epochs strictly monotonic across the restart.
    ASSERT_TRUE(
        restarted.CreateTable("db", "c", {{"x", TypeId::kInt64}}).ok());
    auto vc = restarted.GetTableVersion("db", "c");
    ASSERT_TRUE(vc.ok());
    EXPECT_GT(*vc, saved_version);
  }
}

TEST(CatalogPersistenceTest, LoadReplacesExistingContents) {
  auto storage = std::make_shared<MemoryStore>();
  Catalog donor(storage);
  ASSERT_TRUE(donor.CreateDatabase("kept").ok());
  ASSERT_TRUE(
      donor.CreateTable("kept", "t", {{"x", TypeId::kInt64}}).ok());
  ASSERT_TRUE(donor.SaveToStorage("meta.json").ok());

  Catalog target(storage);
  ASSERT_TRUE(target.CreateDatabase("stale").ok());
  ASSERT_TRUE(target.LoadFromStorage("meta.json").ok());
  EXPECT_TRUE(target.GetDatabase("stale").status().IsNotFound());
  EXPECT_TRUE(target.GetDatabase("kept").ok());
}

TEST(CatalogPersistenceTest, LoadMissingFileFails) {
  auto storage = std::make_shared<MemoryStore>();
  Catalog catalog(storage);
  EXPECT_TRUE(catalog.LoadFromStorage("nope.json").IsNotFound());
}

TEST(CatalogPersistenceTest, LoadCorruptDocumentFails) {
  auto storage = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteString(storage.get(), "bad.json", "{not json").ok());
  Catalog catalog(storage);
  EXPECT_FALSE(catalog.LoadFromStorage("bad.json").ok());

  ASSERT_TRUE(WriteString(storage.get(), "wrong_version.json",
                          R"({"format_version": 99, "databases": []})")
                  .ok());
  EXPECT_TRUE(catalog.LoadFromStorage("wrong_version.json").IsCorruption());
}

TEST(CatalogPersistenceTest, EmptyCatalogRoundTrips) {
  auto storage = std::make_shared<MemoryStore>();
  Catalog catalog(storage);
  ASSERT_TRUE(catalog.SaveToStorage("empty.json").ok());
  Catalog other(storage);
  ASSERT_TRUE(other.LoadFromStorage("empty.json").ok());
  EXPECT_TRUE(other.ListDatabases()->empty());
}

}  // namespace
}  // namespace pixels
