#include "format/type.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(TypeTest, NamesRoundTrip) {
  for (TypeId t : {TypeId::kBool, TypeId::kInt32, TypeId::kInt64,
                   TypeId::kDouble, TypeId::kString, TypeId::kDate,
                   TypeId::kTimestamp}) {
    auto r = TypeFromName(TypeName(t));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, t);
  }
}

TEST(TypeTest, NameAliases) {
  EXPECT_EQ(*TypeFromName("integer"), TypeId::kInt32);
  EXPECT_EQ(*TypeFromName("long"), TypeId::kInt64);
  EXPECT_EQ(*TypeFromName("string"), TypeId::kString);
  EXPECT_EQ(*TypeFromName("text"), TypeId::kString);
  EXPECT_EQ(*TypeFromName("float"), TypeId::kDouble);
  EXPECT_EQ(*TypeFromName("bool"), TypeId::kBool);
  EXPECT_TRUE(TypeFromName("blob").status().IsInvalidArgument());
}

TEST(TypeTest, IntegerLikeClassification) {
  EXPECT_TRUE(IsIntegerLike(TypeId::kBool));
  EXPECT_TRUE(IsIntegerLike(TypeId::kInt32));
  EXPECT_TRUE(IsIntegerLike(TypeId::kInt64));
  EXPECT_TRUE(IsIntegerLike(TypeId::kDate));
  EXPECT_TRUE(IsIntegerLike(TypeId::kTimestamp));
  EXPECT_FALSE(IsIntegerLike(TypeId::kDouble));
  EXPECT_FALSE(IsIntegerLike(TypeId::kString));
}

TEST(TypeTest, FixedWidths) {
  EXPECT_EQ(FixedWidth(TypeId::kBool), 1u);
  EXPECT_EQ(FixedWidth(TypeId::kInt32), 4u);
  EXPECT_EQ(FixedWidth(TypeId::kDate), 4u);
  EXPECT_EQ(FixedWidth(TypeId::kInt64), 8u);
  EXPECT_EQ(FixedWidth(TypeId::kDouble), 8u);
  EXPECT_EQ(FixedWidth(TypeId::kString), 0u);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericComparisonsCrossKind) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(10.1).Compare(Value::Int(10)), 0);
  EXPECT_EQ(Value::Bool(true).Compare(Value::Int(1)), 0);
}

TEST(ValueTest, ExactInt64Comparison) {
  // Values that would collide in double precision.
  int64_t big = (1LL << 62) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("apple").Compare(Value::String("banana")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  // Strings order after numerics (kind-based).
  EXPECT_GT(Value::String("1").Compare(Value::Int(999)), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, Accessors) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_EQ(Value::Double(7.9).AsInt(), 7);
  EXPECT_TRUE(Value::Int(1).AsBool());
  EXPECT_FALSE(Value::Int(0).AsBool());
  EXPECT_TRUE(Value::Double(0.5).AsBool());
}

TEST(DateTest, FormatKnownDates) {
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  EXPECT_EQ(FormatDate(1), "1970-01-02");
  EXPECT_EQ(FormatDate(365), "1971-01-01");
  EXPECT_EQ(FormatDate(8035), "1992-01-01");
  EXPECT_EQ(FormatDate(10957), "2000-01-01");
}

TEST(DateTest, ParseKnownDates) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1992-01-01"), 8035);
  EXPECT_EQ(*ParseDate("2000-02-29"), 10957 + 31 + 28);  // leap year
}

TEST(DateTest, RoundTripSweep) {
  for (int32_t d = -400; d <= 20000; d += 37) {
    auto parsed = ParseDate(FormatDate(d));
    ASSERT_TRUE(parsed.ok()) << d;
    EXPECT_EQ(*parsed, d);
  }
}

TEST(DateTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("2021-13-01").ok());
  EXPECT_FALSE(ParseDate("2021-02-30").ok());
  EXPECT_FALSE(ParseDate("2021-00-10").ok());
  EXPECT_TRUE(ParseDate("2020-02-29").ok());   // leap
  EXPECT_FALSE(ParseDate("2021-02-29").ok());  // non-leap
}

TEST(DateTest, PreEpochDates) {
  EXPECT_EQ(FormatDate(-1), "1969-12-31");
  EXPECT_EQ(*ParseDate("1969-12-31"), -1);
}

}  // namespace
}  // namespace pixels
