#include "format/batch.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

RowBatchPtr MakeTestBatch() {
  auto batch = std::make_shared<RowBatch>();
  auto id = MakeVector(TypeId::kInt64);
  auto name = MakeVector(TypeId::kString);
  for (int i = 0; i < 3; ++i) {
    id->AppendInt(i);
    name->AppendString("n" + std::to_string(i));
  }
  batch->AddColumn("t.id", id);
  batch->AddColumn("t.name", name);
  return batch;
}

TEST(RowBatchTest, BasicShape) {
  auto batch = MakeTestBatch();
  EXPECT_EQ(batch->num_columns(), 2u);
  EXPECT_EQ(batch->num_rows(), 3u);
  EXPECT_EQ(batch->name(0), "t.id");
}

TEST(RowBatchTest, FindColumnExact) {
  auto batch = MakeTestBatch();
  EXPECT_EQ(batch->FindColumn("t.id"), 0);
  EXPECT_EQ(batch->FindColumn("t.name"), 1);
}

TEST(RowBatchTest, FindColumnByBaseName) {
  auto batch = MakeTestBatch();
  EXPECT_EQ(batch->FindColumn("id"), 0);
  EXPECT_EQ(batch->FindColumn("name"), 1);
  EXPECT_EQ(batch->FindColumn("missing"), -1);
}

TEST(RowBatchTest, FindColumnAmbiguousBaseNameFails) {
  auto batch = std::make_shared<RowBatch>();
  batch->AddColumn("a.key", MakeVector(TypeId::kInt64));
  batch->AddColumn("b.key", MakeVector(TypeId::kInt64));
  EXPECT_EQ(batch->FindColumn("key"), -1);
  EXPECT_EQ(batch->FindColumn("a.key"), 0);
}

TEST(RowBatchTest, QualifiedLookupAgainstBareColumns) {
  auto batch = std::make_shared<RowBatch>();
  batch->AddColumn("id", MakeVector(TypeId::kInt64));
  EXPECT_EQ(batch->FindColumn("t.id"), 0);
}

TEST(RowBatchTest, GatherKeepsAllColumns) {
  auto batch = MakeTestBatch();
  auto g = batch->Gather({2, 0});
  EXPECT_EQ(g->num_rows(), 2u);
  EXPECT_EQ(g->column(0)->GetInt(0), 2);
  EXPECT_EQ(g->column(1)->GetString(1), "n0");
}

TEST(RowBatchTest, RowToStringTabSeparated) {
  auto batch = MakeTestBatch();
  EXPECT_EQ(batch->RowToString(1), "1\tn1");
}

TEST(TableTest, NumRowsAcrossBatches) {
  Table table;
  table.AddBatch(MakeTestBatch());
  table.AddBatch(MakeTestBatch());
  EXPECT_EQ(table.num_rows(), 6u);
  EXPECT_EQ(table.ColumnNames(),
            (std::vector<std::string>{"t.id", "t.name"}));
}

TEST(TableTest, ToStringLimitsRows) {
  Table table;
  table.AddBatch(MakeTestBatch());
  std::string s = table.ToString(2);
  EXPECT_NE(s.find("t.id\tt.name"), std::string::npos);
  EXPECT_NE(s.find("1 more rows"), std::string::npos);
}

TEST(TableTest, CollectColumn) {
  Table table;
  table.AddBatch(MakeTestBatch());
  auto vals = table.CollectColumn("id");
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_EQ(vals[2].i, 2);
}

TEST(TableTest, EmptyTable) {
  Table table;
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_TRUE(table.ColumnNames().empty());
  EXPECT_TRUE(table.CollectColumn("x").empty());
}

TEST(RowBatchTest, ApproxBytesNonZero) {
  auto batch = MakeTestBatch();
  EXPECT_GT(batch->ApproxBytes(), 0u);
}

}  // namespace
}  // namespace pixels
