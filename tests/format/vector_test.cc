#include "format/vector.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(VectorTest, AppendAndGetInts) {
  ColumnVector v(TypeId::kInt64);
  v.AppendInt(1);
  v.AppendNull();
  v.AppendInt(-3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.GetInt(0), 1);
  EXPECT_TRUE(v.IsNull(1));
  EXPECT_EQ(v.GetInt(2), -3);
  EXPECT_EQ(v.NullCount(), 1u);
}

TEST(VectorTest, AppendStrings) {
  ColumnVector v(TypeId::kString);
  v.AppendString("a");
  v.AppendNull();
  v.AppendString("bc");
  EXPECT_EQ(v.GetString(0), "a");
  EXPECT_EQ(v.GetString(2), "bc");
  EXPECT_EQ(v.GetValue(2).s, "bc");
}

TEST(VectorTest, GetValueWidensByType) {
  ColumnVector b(TypeId::kBool);
  b.AppendBool(true);
  EXPECT_EQ(b.GetValue(0).kind, Value::Kind::kBool);

  ColumnVector d(TypeId::kDouble);
  d.AppendDouble(1.5);
  EXPECT_EQ(d.GetValue(0).kind, Value::Kind::kDouble);

  ColumnVector i(TypeId::kDate);
  i.AppendInt(100);
  EXPECT_EQ(i.GetValue(0).kind, Value::Kind::kInt);
  EXPECT_TRUE(i.GetValue(0).i == 100);
}

TEST(VectorTest, AppendValueCoercesNumerics) {
  ColumnVector d(TypeId::kDouble);
  ASSERT_TRUE(d.AppendValue(Value::Int(3)).ok());
  EXPECT_DOUBLE_EQ(d.GetDouble(0), 3.0);

  ColumnVector i(TypeId::kInt64);
  ASSERT_TRUE(i.AppendValue(Value::Double(2.9)).ok());
  EXPECT_EQ(i.GetInt(0), 2);
}

TEST(VectorTest, AppendValueRejectsKindMismatch) {
  ColumnVector i(TypeId::kInt64);
  EXPECT_TRUE(i.AppendValue(Value::String("x")).IsTypeError());
  ColumnVector s(TypeId::kString);
  EXPECT_TRUE(s.AppendValue(Value::Int(1)).IsTypeError());
  EXPECT_TRUE(s.AppendValue(Value::Null()).ok());
}

TEST(VectorTest, AppendFromCopiesAcrossNumericTypes) {
  ColumnVector src(TypeId::kInt64);
  src.AppendInt(4);
  src.AppendNull();
  ColumnVector dst(TypeId::kDouble);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_DOUBLE_EQ(dst.GetDouble(0), 4.0);
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(VectorTest, GatherSelectsRows) {
  ColumnVector v(TypeId::kInt64);
  for (int i = 0; i < 10; ++i) v.AppendInt(i * 10);
  auto g = v.Gather({9, 0, 5});
  ASSERT_EQ(g->size(), 3u);
  EXPECT_EQ(g->GetInt(0), 90);
  EXPECT_EQ(g->GetInt(1), 0);
  EXPECT_EQ(g->GetInt(2), 50);
}

TEST(VectorTest, GatherEmptySelection) {
  ColumnVector v(TypeId::kString);
  v.AppendString("x");
  auto g = v.Gather({});
  EXPECT_EQ(g->size(), 0u);
  EXPECT_EQ(g->type(), TypeId::kString);
}

TEST(VectorTest, ClearResets) {
  ColumnVector v(TypeId::kInt32);
  v.AppendInt(1);
  v.Clear();
  EXPECT_TRUE(v.empty());
  v.AppendInt(2);
  EXPECT_EQ(v.GetInt(0), 2);
}

}  // namespace
}  // namespace pixels
