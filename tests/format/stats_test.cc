#include "format/stats.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(StatsTest, TracksMinMaxNulls) {
  ColumnStats s;
  s.Update(Value::Int(5));
  s.Update(Value::Null());
  s.Update(Value::Int(-2));
  s.Update(Value::Int(9));
  EXPECT_EQ(s.num_values, 4u);
  EXPECT_EQ(s.null_count, 1u);
  ASSERT_TRUE(s.has_min_max);
  EXPECT_EQ(s.min.i, -2);
  EXPECT_EQ(s.max.i, 9);
}

TEST(StatsTest, UpdateVector) {
  ColumnVector v(TypeId::kString);
  v.AppendString("mango");
  v.AppendString("apple");
  v.AppendNull();
  ColumnStats s;
  s.UpdateVector(v);
  EXPECT_EQ(s.min.s, "apple");
  EXPECT_EQ(s.max.s, "mango");
  EXPECT_EQ(s.null_count, 1u);
}

TEST(StatsTest, MergeCombines) {
  ColumnStats a, b;
  a.Update(Value::Int(1));
  a.Update(Value::Int(5));
  b.Update(Value::Int(-3));
  b.Update(Value::Null());
  a.Merge(b);
  EXPECT_EQ(a.num_values, 4u);
  EXPECT_EQ(a.null_count, 1u);
  EXPECT_EQ(a.min.i, -3);
  EXPECT_EQ(a.max.i, 5);
}

TEST(StatsTest, MergeIntoEmpty) {
  ColumnStats a, b;
  b.Update(Value::Int(7));
  a.Merge(b);
  EXPECT_TRUE(a.has_min_max);
  EXPECT_EQ(a.min.i, 7);
}

TEST(StatsTest, MayMatchEquality) {
  ColumnStats s;
  s.Update(Value::Int(10));
  s.Update(Value::Int(20));
  EXPECT_TRUE(s.MayMatch("=", Value::Int(15)));
  EXPECT_TRUE(s.MayMatch("=", Value::Int(10)));
  EXPECT_FALSE(s.MayMatch("=", Value::Int(9)));
  EXPECT_FALSE(s.MayMatch("=", Value::Int(21)));
}

TEST(StatsTest, MayMatchRanges) {
  ColumnStats s;
  s.Update(Value::Int(10));
  s.Update(Value::Int(20));
  EXPECT_TRUE(s.MayMatch("<", Value::Int(11)));
  EXPECT_FALSE(s.MayMatch("<", Value::Int(10)));
  EXPECT_TRUE(s.MayMatch("<=", Value::Int(10)));
  EXPECT_TRUE(s.MayMatch(">", Value::Int(19)));
  EXPECT_FALSE(s.MayMatch(">", Value::Int(20)));
  EXPECT_TRUE(s.MayMatch(">=", Value::Int(20)));
  EXPECT_FALSE(s.MayMatch(">=", Value::Int(21)));
}

TEST(StatsTest, MayMatchNotEqual) {
  ColumnStats constant;
  constant.Update(Value::Int(5));
  EXPECT_FALSE(constant.MayMatch("<>", Value::Int(5)));
  EXPECT_TRUE(constant.MayMatch("<>", Value::Int(6)));
  ColumnStats range;
  range.Update(Value::Int(1));
  range.Update(Value::Int(9));
  EXPECT_TRUE(range.MayMatch("<>", Value::Int(5)));
}

TEST(StatsTest, MayMatchConservativeWithoutStats) {
  ColumnStats s;  // no values
  EXPECT_TRUE(s.MayMatch("=", Value::Int(1)));
  ColumnStats nulls;
  nulls.Update(Value::Null());
  EXPECT_TRUE(nulls.MayMatch("=", Value::Int(1)));
}

TEST(StatsTest, MayMatchNullLiteralConservative) {
  ColumnStats s;
  s.Update(Value::Int(1));
  EXPECT_TRUE(s.MayMatch("=", Value::Null()));
}

TEST(StatsTest, SerializeRoundTrip) {
  ColumnStats s;
  s.Update(Value::Double(1.5));
  s.Update(Value::Double(-2.25));
  s.Update(Value::Null());
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  auto restored = ColumnStats::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_values, 3u);
  EXPECT_EQ(restored->null_count, 1u);
  EXPECT_DOUBLE_EQ(restored->min.d, -2.25);
  EXPECT_DOUBLE_EQ(restored->max.d, 1.5);
}

TEST(StatsTest, SerializeEmptyStats) {
  ColumnStats s;
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  auto restored = ColumnStats::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->has_min_max);
}

TEST(StatsTest, SerializeStringStats) {
  ColumnStats s;
  s.Update(Value::String("aa"));
  s.Update(Value::String("zz"));
  ByteWriter w;
  s.Serialize(&w);
  ByteReader r(w.data());
  auto restored = ColumnStats::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->min.s, "aa");
  EXPECT_EQ(restored->max.s, "zz");
}

TEST(StatsTest, DeserializeRejectsBadKind) {
  ByteWriter w;
  w.PutVarint(1);
  w.PutVarint(0);
  w.PutU8(1);     // has_min_max
  w.PutU8(200);   // bogus kind tag
  ByteReader r(w.data());
  EXPECT_TRUE(ColumnStats::Deserialize(&r).status().IsCorruption());
}

}  // namespace
}  // namespace pixels
