#include "format/encoding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pixels {
namespace {

ColumnVectorPtr RoundTrip(const ColumnVector& col, Encoding enc) {
  ByteWriter w;
  Status st = EncodeColumn(col, enc, &w);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ByteReader r(w.data());
  auto decoded = DecodeColumn(col.type(), enc, &r, col.size());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? *decoded : nullptr;
}

void ExpectEqualVectors(const ColumnVector& a, const ColumnVector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
    if (!a.IsNull(i)) {
      EXPECT_EQ(a.GetValue(i).Compare(b.GetValue(i)), 0) << "row " << i;
    }
  }
}

// ---- parameterized round-trip across (type, encoding, null pattern) ----

struct EncodingCase {
  TypeId type;
  Encoding encoding;
  double null_fraction;
};

class EncodingRoundTripTest : public ::testing::TestWithParam<EncodingCase> {};

TEST_P(EncodingRoundTripTest, RandomDataRoundTrips) {
  const EncodingCase& c = GetParam();
  Random rng(static_cast<uint64_t>(c.type) * 100 +
             static_cast<uint64_t>(c.encoding) * 10 + 1);
  ColumnVector col(c.type);
  for (int i = 0; i < 777; ++i) {
    if (rng.Bernoulli(c.null_fraction)) {
      col.AppendNull();
      continue;
    }
    switch (c.type) {
      case TypeId::kBool:
        col.AppendBool(rng.Bernoulli(0.5));
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        col.AppendInt(rng.Uniform(-100000, 100000));
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        col.AppendInt(rng.Uniform(-5000000000LL, 5000000000LL));
        break;
      case TypeId::kDouble:
        col.AppendDouble(rng.UniformDouble(-1e6, 1e6));
        break;
      case TypeId::kString:
        col.AppendString(rng.NextString(rng.Uniform(0, 20)));
        break;
    }
  }
  auto decoded = RoundTrip(col, c.encoding);
  ASSERT_NE(decoded, nullptr);
  ExpectEqualVectors(col, *decoded);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingRoundTripTest,
    ::testing::Values(
        EncodingCase{TypeId::kBool, Encoding::kPlain, 0.0},
        EncodingCase{TypeId::kBool, Encoding::kPlain, 0.2},
        EncodingCase{TypeId::kBool, Encoding::kBitPacked, 0.0},
        EncodingCase{TypeId::kBool, Encoding::kBitPacked, 0.3},
        EncodingCase{TypeId::kBool, Encoding::kRunLength, 0.1},
        EncodingCase{TypeId::kInt32, Encoding::kPlain, 0.0},
        EncodingCase{TypeId::kInt32, Encoding::kPlain, 0.15},
        EncodingCase{TypeId::kInt32, Encoding::kRunLength, 0.1},
        EncodingCase{TypeId::kInt32, Encoding::kDelta, 0.1},
        EncodingCase{TypeId::kInt64, Encoding::kPlain, 0.0},
        EncodingCase{TypeId::kInt64, Encoding::kRunLength, 0.0},
        EncodingCase{TypeId::kInt64, Encoding::kDelta, 0.25},
        EncodingCase{TypeId::kDate, Encoding::kDelta, 0.0},
        EncodingCase{TypeId::kTimestamp, Encoding::kDelta, 0.05},
        EncodingCase{TypeId::kDouble, Encoding::kPlain, 0.0},
        EncodingCase{TypeId::kDouble, Encoding::kPlain, 0.5},
        EncodingCase{TypeId::kString, Encoding::kPlain, 0.1},
        EncodingCase{TypeId::kString, Encoding::kDictionary, 0.0},
        EncodingCase{TypeId::kString, Encoding::kDictionary, 0.3}));

TEST(EncodingTest, EmptyColumnRoundTrips) {
  for (Encoding e : {Encoding::kPlain, Encoding::kRunLength, Encoding::kDelta}) {
    ColumnVector col(TypeId::kInt64);
    auto decoded = RoundTrip(col, e);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->size(), 0u);
  }
}

TEST(EncodingTest, AllNullColumnRoundTrips) {
  ColumnVector col(TypeId::kString);
  for (int i = 0; i < 10; ++i) col.AppendNull();
  auto decoded = RoundTrip(col, Encoding::kDictionary);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->NullCount(), 10u);
}

TEST(EncodingTest, RleCompressesRuns) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt(i / 250);
  ByteWriter rle, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kRunLength, &rle).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(rle.size() * 10, plain.size());
}

TEST(EncodingTest, DeltaCompressesSortedData) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt(1000000000LL + i * 3);
  ByteWriter delta, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kDelta, &delta).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(delta.size() * 3, plain.size());
}

TEST(EncodingTest, DictionaryCompressesLowCardinality) {
  ColumnVector col(TypeId::kString);
  const char* values[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 900; ++i) col.AppendString(values[i % 3]);
  ByteWriter dict, plain;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kDictionary, &dict).ok());
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &plain).ok());
  EXPECT_LT(dict.size() * 3, plain.size());
}

TEST(EncodingTest, BitPackedIsOneBitPerValue) {
  ColumnVector col(TypeId::kBool);
  for (int i = 0; i < 800; ++i) col.AppendBool(i % 2 == 0);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kBitPacked, &w).ok());
  // validity bitmap (100 bytes) + payload (100 bytes)
  EXPECT_EQ(w.size(), 200u);
}

TEST(EncodingTest, UnsupportedCombinationsRejected) {
  ColumnVector s(TypeId::kString);
  s.AppendString("x");
  ByteWriter w;
  EXPECT_TRUE(EncodeColumn(s, Encoding::kDelta, &w).IsInvalidArgument());
  EXPECT_TRUE(EncodeColumn(s, Encoding::kRunLength, &w).IsInvalidArgument());
  EXPECT_TRUE(EncodeColumn(s, Encoding::kBitPacked, &w).IsInvalidArgument());
  ColumnVector d(TypeId::kDouble);
  d.AppendDouble(1);
  EXPECT_TRUE(EncodeColumn(d, Encoding::kDictionary, &w).IsInvalidArgument());
}

TEST(EncodingTest, DecodeRejectsTruncatedInput) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 100; ++i) col.AppendInt(i);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &w).ok());
  auto truncated = w.data();
  truncated.resize(truncated.size() / 2);
  ByteReader r(truncated);
  EXPECT_FALSE(DecodeColumn(TypeId::kInt64, Encoding::kPlain, &r, 100).ok());
}

TEST(EncodingTest, DecodeRejectsCorruptDictionaryCode) {
  ColumnVector col(TypeId::kString);
  col.AppendString("only");
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kDictionary, &w).ok());
  auto bytes = w.data();
  bytes.back() = 0x7f;  // out-of-range code
  ByteReader r(bytes);
  EXPECT_FALSE(DecodeColumn(TypeId::kString, Encoding::kDictionary, &r, 1).ok());
}

TEST(ChooseEncodingTest, PicksBitPackedForBools) {
  ColumnVector col(TypeId::kBool);
  col.AppendBool(true);
  EXPECT_EQ(ChooseEncoding(col), Encoding::kBitPacked);
}

TEST(ChooseEncodingTest, PicksRleForRuns) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 500; ++i) col.AppendInt(i / 100);
  EXPECT_EQ(ChooseEncoding(col), Encoding::kRunLength);
}

TEST(ChooseEncodingTest, PicksDeltaForSorted) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 500; ++i) col.AppendInt(i * 7);
  EXPECT_EQ(ChooseEncoding(col), Encoding::kDelta);
}

TEST(ChooseEncodingTest, PicksDictionaryForRepetitiveStrings) {
  ColumnVector col(TypeId::kString);
  for (int i = 0; i < 100; ++i) col.AppendString(i % 4 == 0 ? "a" : "b");
  EXPECT_EQ(ChooseEncoding(col), Encoding::kDictionary);
}

TEST(ChooseEncodingTest, PicksPlainForUniqueStrings) {
  Random rng(5);
  ColumnVector col(TypeId::kString);
  for (int i = 0; i < 100; ++i) col.AppendString(rng.NextString(12));
  EXPECT_EQ(ChooseEncoding(col), Encoding::kPlain);
}

TEST(ChooseEncodingTest, PicksPlainForRandomInts) {
  Random rng(6);
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 500; ++i) col.AppendInt(rng.Uniform(-1000000, 1000000));
  EXPECT_EQ(ChooseEncoding(col), Encoding::kPlain);
}

}  // namespace
}  // namespace pixels
