// Property tests for the fused decode+filter path: for every supported
// (encoding, type) pair, null pattern, and predicate shape,
// FilterEncodedChunk selects exactly the rows a full DecodeColumn plus
// per-row predicate evaluation would, and DecodeColumnSelected over any
// selection equals a gather of the full decode.
#include <gtest/gtest.h>

#include "common/random.h"
#include "format/compare.h"
#include "format/encoding.h"

namespace pixels {
namespace {

enum class NullPattern { kNone, kSparse, kAlternating, kAll };

const char* NullPatternName(NullPattern p) {
  switch (p) {
    case NullPattern::kNone: return "none";
    case NullPattern::kSparse: return "sparse";
    case NullPattern::kAlternating: return "alternating";
    case NullPattern::kAll: return "all";
  }
  return "?";
}

bool IsNullAt(NullPattern p, Random* rng, int i) {
  switch (p) {
    case NullPattern::kNone: return false;
    case NullPattern::kSparse: return rng->Bernoulli(0.25);
    case NullPattern::kAlternating: return i % 2 == 0;
    case NullPattern::kAll: return true;
  }
  return false;
}

// Values drawn from a small domain so RLE has runs, dictionary has
// repeats, and predicates actually split the data.
ColumnVector MakeColumn(TypeId type, NullPattern nulls, uint64_t seed,
                        int rows) {
  Random rng(seed);
  ColumnVector col(type);
  for (int i = 0; i < rows; ++i) {
    if (IsNullAt(nulls, &rng, i)) {
      col.AppendNull();
      continue;
    }
    switch (type) {
      case TypeId::kBool:
        col.AppendBool(rng.Bernoulli(0.5));
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        // Sorted-ish with runs: friendly to RLE and delta alike.
        col.AppendInt(i / 7 + rng.Uniform(0, 3));
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        col.AppendInt(1000 + i / 5 + rng.Uniform(0, 2));
        break;
      case TypeId::kDouble:
        col.AppendDouble(rng.UniformDouble(-10.0, 10.0));
        break;
      case TypeId::kString: {
        const char* words[] = {"ant", "bee", "cat", "dog", "eel"};
        col.AppendString(words[rng.Uniform(0, 4)]);
        break;
      }
    }
  }
  return col;
}

// The scalar reference the fused path must agree with: decode everything,
// test every non-null row (nulls never match).
std::vector<uint32_t> ReferenceSelect(const ColumnVector& col,
                                      const std::vector<TypedPredicate>& preds) {
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.IsNull(i)) continue;
    const Value v = col.GetValue(i);
    bool all = true;
    for (const auto& p : preds) {
      if (!p.MatchValue(v)) {
        all = false;
        break;
      }
    }
    if (all) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

void ExpectEqualVectors(const ColumnVector& a, const ColumnVector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
    if (!a.IsNull(i)) {
      EXPECT_EQ(a.GetValue(i).Compare(b.GetValue(i)), 0) << "row " << i;
    }
  }
}

// Mid-domain literal per type, so comparisons split the rows.
Value MidLiteral(TypeId type, int rows) {
  switch (type) {
    case TypeId::kBool: return Value::Bool(true);
    case TypeId::kInt32:
    case TypeId::kDate: return Value::Int(rows / 14);
    case TypeId::kInt64:
    case TypeId::kTimestamp: return Value::Int(1000 + rows / 10);
    case TypeId::kDouble: return Value::Double(0.0);
    case TypeId::kString: return Value::String("cat");
  }
  return Value::Null();
}

struct FusedCase {
  TypeId type;
  Encoding encoding;
  NullPattern nulls;
};

std::vector<FusedCase> AllSupportedCases() {
  std::vector<FusedCase> cases;
  const TypeId types[] = {TypeId::kBool,      TypeId::kInt32,
                          TypeId::kInt64,     TypeId::kDouble,
                          TypeId::kString,    TypeId::kDate,
                          TypeId::kTimestamp};
  const Encoding encodings[] = {Encoding::kPlain, Encoding::kRunLength,
                                Encoding::kDelta, Encoding::kDictionary,
                                Encoding::kBitPacked};
  const NullPattern patterns[] = {NullPattern::kNone, NullPattern::kSparse,
                                  NullPattern::kAlternating, NullPattern::kAll};
  for (TypeId t : types) {
    for (Encoding e : encodings) {
      if (!EncodingSupports(e, t)) continue;
      for (NullPattern p : patterns) cases.push_back({t, e, p});
    }
  }
  return cases;
}

class FusedDecodeTest : public ::testing::TestWithParam<FusedCase> {};

// Every CmpOp, single predicate.
TEST_P(FusedDecodeTest, FilterMatchesDecodeThenFilterAllOps) {
  const FusedCase& c = GetParam();
  constexpr int kRows = 321;
  const ColumnVector col = MakeColumn(
      c.type, c.nulls,
      static_cast<uint64_t>(c.type) * 131 + static_cast<uint64_t>(c.encoding),
      kRows);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, c.encoding, &w).ok());

  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (CmpOp op : ops) {
    const std::vector<TypedPredicate> preds = {
        TypedPredicate::Make(col.type(), op, MidLiteral(c.type, kRows))};
    ByteReader r(w.data());
    auto got = FilterEncodedChunk(col.type(), c.encoding, &r, col.size(), preds);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, ReferenceSelect(col, preds))
        << "op=" << static_cast<int>(op)
        << " nulls=" << NullPatternName(c.nulls);
  }
}

// Predicate shapes beyond a single comparison: conjunctions (range),
// null literals (match nothing), and kind mismatches (constant-folded).
TEST_P(FusedDecodeTest, FilterMatchesOnPredicateShapes) {
  const FusedCase& c = GetParam();
  constexpr int kRows = 257;
  const ColumnVector col = MakeColumn(
      c.type, c.nulls,
      static_cast<uint64_t>(c.type) * 977 + static_cast<uint64_t>(c.encoding),
      kRows);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, c.encoding, &w).ok());

  const Value mid = MidLiteral(c.type, kRows);
  const Value mismatch =
      c.type == TypeId::kString ? Value::Int(42) : Value::String("zzz");
  const std::vector<std::vector<TypedPredicate>> shapes = {
      // Conjunction: a >= mid AND a <= mid (point range).
      {TypedPredicate::Make(col.type(), CmpOp::kGe, mid),
       TypedPredicate::Make(col.type(), CmpOp::kLe, mid)},
      // Null literal: SQL three-valued logic, nothing matches.
      {TypedPredicate::Make(col.type(), CmpOp::kEq, Value::Null())},
      // Kind mismatch folds to a constant by Value::Compare's ordering.
      {TypedPredicate::Make(col.type(), CmpOp::kLt, mismatch)},
      {TypedPredicate::Make(col.type(), CmpOp::kGt, mismatch)},
      // Empty conjunction: every non-null row passes.
      {},
  };
  for (size_t s = 0; s < shapes.size(); ++s) {
    ByteReader r(w.data());
    auto got =
        FilterEncodedChunk(col.type(), c.encoding, &r, col.size(), shapes[s]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, ReferenceSelect(col, shapes[s])) << "shape " << s;
  }
}

// DecodeColumnSelected over the fused selection == gather of full decode;
// also over selections the predicate did not produce (other columns pick
// the rows, including null rows of this column).
TEST_P(FusedDecodeTest, SelectedDecodeEqualsGatherOfFullDecode) {
  const FusedCase& c = GetParam();
  constexpr int kRows = 200;
  const ColumnVector col = MakeColumn(
      c.type, c.nulls,
      static_cast<uint64_t>(c.type) * 313 + static_cast<uint64_t>(c.encoding),
      kRows);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, c.encoding, &w).ok());

  ByteReader full_r(w.data());
  auto full = DecodeColumn(col.type(), c.encoding, &full_r, col.size());
  ASSERT_TRUE(full.ok());

  std::vector<std::vector<uint32_t>> selections;
  selections.push_back({});  // empty
  {
    std::vector<uint32_t> all(col.size());
    for (size_t i = 0; i < col.size(); ++i) all[i] = i;
    selections.push_back(std::move(all));  // full
  }
  {
    std::vector<uint32_t> every3;  // arbitrary rows, nulls included
    for (size_t i = 0; i < col.size(); i += 3) every3.push_back(i);
    selections.push_back(std::move(every3));
  }
  {
    // The selection the predicate itself produces.
    const std::vector<TypedPredicate> preds = {TypedPredicate::Make(
        col.type(), CmpOp::kGe, MidLiteral(c.type, kRows))};
    selections.push_back(ReferenceSelect(col, preds));
  }

  for (size_t s = 0; s < selections.size(); ++s) {
    ByteReader r(w.data());
    auto got = DecodeColumnSelected(col.type(), c.encoding, &r, col.size(),
                                    selections[s]);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << " selection " << s;
    auto expect = (*full)->Gather(selections[s]);
    ASSERT_NE(*got, nullptr);
    ExpectEqualVectors(*expect, **got);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSupported, FusedDecodeTest, ::testing::ValuesIn(AllSupportedCases()),
    [](const ::testing::TestParamInfo<FusedCase>& info) {
      std::string name = TypeName(info.param.type);
      name += "_";
      name += EncodingName(info.param.encoding);
      name += "_";
      name += NullPatternName(info.param.nulls);
      return name;
    });

TEST(FusedDecodeEdgeTest, UnsupportedEncodingRejected) {
  const std::vector<uint8_t> empty;
  ByteReader r(empty);
  EXPECT_FALSE(FilterEncodedChunk(TypeId::kString, Encoding::kDelta, &r, 0, {})
                   .ok());
  EXPECT_FALSE(
      DecodeColumnSelected(TypeId::kDouble, Encoding::kDictionary, &r, 0, {})
          .ok());
}

TEST(FusedDecodeEdgeTest, OutOfRangeSelectionRejected) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 10; ++i) col.AppendInt(i);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &w).ok());
  ByteReader r(w.data());
  EXPECT_FALSE(
      DecodeColumnSelected(TypeId::kInt64, Encoding::kPlain, &r, 10, {3, 99})
          .ok());
}

TEST(FusedDecodeEdgeTest, EmptyChunk) {
  ColumnVector col(TypeId::kInt64);
  ByteWriter w;
  ASSERT_TRUE(EncodeColumn(col, Encoding::kPlain, &w).ok());
  const std::vector<TypedPredicate> preds = {
      TypedPredicate::Make(TypeId::kInt64, CmpOp::kEq, Value::Int(1))};
  ByteReader r(w.data());
  auto sel = FilterEncodedChunk(TypeId::kInt64, Encoding::kPlain, &r, 0, preds);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
}

}  // namespace
}  // namespace pixels
