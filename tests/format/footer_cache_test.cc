#include "format/footer_cache.h"

#include <gtest/gtest.h>

#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"

namespace pixels {
namespace {

FileSchema SmallSchema() {
  return {{"id", TypeId::kInt64}, {"v", TypeId::kDouble}};
}

Status WriteRows(Storage* storage, const std::string& path, int rows) {
  PixelsWriter writer(SmallSchema());
  for (int i = 0; i < rows; ++i) {
    PIXELS_RETURN_NOT_OK(
        writer.AppendRow({Value::Int(i), Value::Double(i * 0.5)}));
  }
  return writer.Finish(storage, path);
}

TEST(FooterCacheTest, GetValidatesStoredSize) {
  MemoryStore storage;
  FooterCache cache(4);
  auto footer = std::make_shared<const FileFooter>();
  cache.Put(&storage, "a", 1000, footer);
  EXPECT_EQ(cache.Get(&storage, "a", 1000), footer);
  // A size change means the object was replaced: drop the entry.
  EXPECT_EQ(cache.Get(&storage, "a", 999), nullptr);
  EXPECT_EQ(cache.Get(&storage, "a", 1000), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(FooterCacheTest, EvictsByEntryCount) {
  MemoryStore storage;
  FooterCache cache(2);
  auto footer = std::make_shared<const FileFooter>();
  cache.Put(&storage, "a", 1, footer);
  cache.Put(&storage, "b", 1, footer);
  ASSERT_NE(cache.Get(&storage, "a", 1), nullptr);  // refresh "a"
  cache.Put(&storage, "c", 1, footer);
  EXPECT_EQ(cache.Get(&storage, "b", 1), nullptr);
  EXPECT_NE(cache.Get(&storage, "a", 1), nullptr);
  EXPECT_NE(cache.Get(&storage, "c", 1), nullptr);
}

TEST(FooterCacheTest, KeyedByStorageInstance) {
  MemoryStore s1, s2;
  FooterCache cache(4);
  cache.Put(&s1, "a", 1, std::make_shared<const FileFooter>());
  EXPECT_EQ(cache.Get(&s2, "a", 1), nullptr);
}

TEST(FooterCacheTest, WarmOpenIssuesZeroGets) {
  auto store =
      std::make_shared<ObjectStore>(std::make_shared<MemoryStore>());
  ASSERT_TRUE(WriteRows(store.get(), "t.pxl", 1000).ok());
  FooterCache::Shared()->Clear();

  // Cold: the Size probe is free, the tail read is the only GET.
  auto cold = PixelsReader::Open(store.get(), "t.pxl");
  ASSERT_TRUE(cold.ok());
  const uint64_t gets_after_cold = store->stats().get_requests;
  EXPECT_EQ(gets_after_cold, 1u);

  // Warm: the footer comes from the process-wide cache; zero GETs.
  auto warm = PixelsReader::Open(store.get(), "t.pxl");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(store->stats().get_requests, gets_after_cold);
  EXPECT_EQ((*warm)->NumRows(), 1000u);
}

TEST(FooterCacheTest, OptOutSkipsTheCache) {
  auto store =
      std::make_shared<ObjectStore>(std::make_shared<MemoryStore>());
  ASSERT_TRUE(WriteRows(store.get(), "t.pxl", 100).ok());
  FooterCache::Shared()->Clear();
  IoOptions io;
  io.use_footer_cache = false;
  ASSERT_TRUE(PixelsReader::Open(store.get(), "t.pxl", io).ok());
  ASSERT_TRUE(PixelsReader::Open(store.get(), "t.pxl", io).ok());
  // Both opens paid their tail read: nothing was cached.
  EXPECT_EQ(store->stats().get_requests, 2u);
  EXPECT_EQ(FooterCache::Shared()->stats().entries, 0u);
}

TEST(FooterCacheTest, OverwriteInvalidatesCachedFooter) {
  auto store = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteRows(store.get(), "t.pxl", 500).ok());
  FooterCache::Shared()->Clear();
  auto before = PixelsReader::Open(store.get(), "t.pxl");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->NumRows(), 500u);

  // Rewrite through the writer: its Finish hook must drop the entry even
  // though the path (and possibly the size) is unchanged.
  ASSERT_TRUE(WriteRows(store.get(), "t.pxl", 700).ok());
  auto after = PixelsReader::Open(store.get(), "t.pxl");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->NumRows(), 700u);
}

}  // namespace
}  // namespace pixels
