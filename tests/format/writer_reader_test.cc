#include <gtest/gtest.h>

#include "common/random.h"
#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"

namespace pixels {
namespace {

class WriterReaderTest : public ::testing::Test {
 protected:
  void SetUp() override { store_ = std::make_shared<MemoryStore>(); }

  FileSchema TestSchema() {
    return {{"id", TypeId::kInt64},
            {"price", TypeId::kDouble},
            {"flag", TypeId::kString},
            {"ship", TypeId::kDate}};
  }

  // Writes n rows: id=i, price=i*1.5, flag=A/B/C cyclic, ship=1000+i/10.
  void WriteFile(const std::string& path, int n, size_t row_group_size) {
    WriterOptions options;
    options.row_group_size = row_group_size;
    PixelsWriter writer(TestSchema(), options);
    for (int i = 0; i < n; ++i) {
      const char* flags[] = {"A", "B", "C"};
      ASSERT_TRUE(writer
                      .AppendRow({Value::Int(i), Value::Double(i * 1.5),
                                  Value::String(flags[i % 3]),
                                  Value::Int(1000 + i / 10)})
                      .ok());
    }
    ASSERT_TRUE(writer.Finish(store_.get(), path).ok());
  }

  std::shared_ptr<MemoryStore> store_;
};

TEST_F(WriterReaderTest, RoundTripAllColumns) {
  WriteFile("t.pxl", 100, 32);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->NumRows(), 100u);
  EXPECT_EQ((*reader)->NumRowGroups(), 4u);  // ceil(100/32)
  EXPECT_EQ((*reader)->schema().size(), 4u);

  auto batches = (*reader)->Scan(ScanOptions{});
  ASSERT_TRUE(batches.ok());
  size_t row = 0;
  for (const auto& b : *batches) {
    for (size_t r = 0; r < b->num_rows(); ++r, ++row) {
      EXPECT_EQ(b->column(0)->GetInt(r), static_cast<int64_t>(row));
      EXPECT_DOUBLE_EQ(b->column(1)->GetDouble(r), row * 1.5);
    }
  }
  EXPECT_EQ(row, 100u);
}

TEST_F(WriterReaderTest, ProjectionReadsOnlyRequestedColumns) {
  WriteFile("t.pxl", 50, 64);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.columns = {"flag", "id"};
  auto batches = (*reader)->Scan(options);
  ASSERT_TRUE(batches.ok());
  ASSERT_EQ((*batches)[0]->num_columns(), 2u);
  EXPECT_EQ((*batches)[0]->name(0), "flag");
  EXPECT_EQ((*batches)[0]->name(1), "id");
}

TEST_F(WriterReaderTest, ProjectionReducesBytesScanned) {
  WriteFile("t.pxl", 2000, 500);
  auto reader_all = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader_all.ok());
  ASSERT_TRUE((*reader_all)->Scan(ScanOptions{}).ok());
  uint64_t all_bytes = (*reader_all)->scan_stats().bytes_scanned;

  auto reader_one = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader_one.ok());
  ScanOptions one;
  one.columns = {"id"};
  ASSERT_TRUE((*reader_one)->Scan(one).ok());
  uint64_t one_bytes = (*reader_one)->scan_stats().bytes_scanned;
  EXPECT_LT(one_bytes * 2, all_bytes);
}

TEST_F(WriterReaderTest, ZoneMapPruningSkipsRowGroups) {
  WriteFile("t.pxl", 1000, 100);  // id row groups: [0,99],[100,199],...
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.predicates = {{"id", ">", Value::Int(850)}};
  auto batches = (*reader)->Scan(options);
  ASSERT_TRUE(batches.ok());
  const auto& stats = (*reader)->scan_stats();
  EXPECT_EQ(stats.row_groups_total, 10u);
  EXPECT_EQ(stats.row_groups_read, 2u);  // groups [800..899], [900..999]
  EXPECT_EQ(stats.rows_read, 200u);
}

TEST_F(WriterReaderTest, ZoneMapEqualityPruning) {
  WriteFile("t.pxl", 1000, 100);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.predicates = {{"id", "=", Value::Int(5)}};
  ASSERT_TRUE((*reader)->Scan(options).ok());
  EXPECT_EQ((*reader)->scan_stats().row_groups_read, 1u);
}

TEST_F(WriterReaderTest, ConjunctionPruning) {
  WriteFile("t.pxl", 1000, 100);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.predicates = {{"id", ">", Value::Int(100)},
                        {"id", "<", Value::Int(250)}};
  ASSERT_TRUE((*reader)->Scan(options).ok());
  EXPECT_EQ((*reader)->scan_stats().row_groups_read, 2u);
}

TEST_F(WriterReaderTest, PredicateOnUnknownColumnIsIgnored) {
  WriteFile("t.pxl", 100, 50);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.predicates = {{"nonexistent", "=", Value::Int(1)}};
  auto batches = (*reader)->Scan(options);
  ASSERT_TRUE(batches.ok());
  EXPECT_EQ((*reader)->scan_stats().row_groups_read, 2u);
}

TEST_F(WriterReaderTest, FileStatsMergeAcrossRowGroups) {
  WriteFile("t.pxl", 300, 100);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  auto stats = (*reader)->FileStats("id");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->min.i, 0);
  EXPECT_EQ(stats->max.i, 299);
  EXPECT_EQ(stats->num_values, 300u);
  EXPECT_TRUE((*reader)->FileStats("zzz").status().IsNotFound());
}

TEST_F(WriterReaderTest, BatchAppendMatchesRowAppend) {
  // Write via Append(RowBatch) and verify contents.
  auto batch = std::make_shared<RowBatch>();
  auto id = MakeVector(TypeId::kInt64);
  auto price = MakeVector(TypeId::kDouble);
  auto flag = MakeVector(TypeId::kString);
  auto ship = MakeVector(TypeId::kDate);
  for (int i = 0; i < 10; ++i) {
    id->AppendInt(i);
    price->AppendDouble(i);
    flag->AppendString("F");
    ship->AppendInt(1);
  }
  batch->AddColumn("id", id);
  batch->AddColumn("price", price);
  batch->AddColumn("flag", flag);
  batch->AddColumn("ship", ship);

  PixelsWriter writer(TestSchema());
  ASSERT_TRUE(writer.Append(*batch).ok());
  EXPECT_EQ(writer.rows_appended(), 10u);
  ASSERT_TRUE(writer.Finish(store_.get(), "b.pxl").ok());

  auto reader = PixelsReader::Open(store_.get(), "b.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NumRows(), 10u);
}

TEST_F(WriterReaderTest, AppendRejectsWidthMismatch) {
  PixelsWriter writer(TestSchema());
  EXPECT_TRUE(writer.AppendRow({Value::Int(1)}).IsInvalidArgument());
}

TEST_F(WriterReaderTest, AppendRejectsTypeFamilyMismatch) {
  PixelsWriter writer(TestSchema());
  EXPECT_TRUE(writer
                  .AppendRow({Value::String("not an int"), Value::Double(0),
                              Value::String("A"), Value::Int(0)})
                  .IsTypeError());
}

TEST_F(WriterReaderTest, FinishTwiceFails) {
  PixelsWriter writer(TestSchema());
  ASSERT_TRUE(writer.Finish(store_.get(), "f.pxl").ok());
  EXPECT_TRUE(writer.Finish(store_.get(), "f.pxl").IsFailedPrecondition());
}

TEST_F(WriterReaderTest, EmptyFileRoundTrips) {
  PixelsWriter writer(TestSchema());
  ASSERT_TRUE(writer.Finish(store_.get(), "empty.pxl").ok());
  auto reader = PixelsReader::Open(store_.get(), "empty.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NumRows(), 0u);
  EXPECT_EQ((*reader)->NumRowGroups(), 0u);
  auto batches = (*reader)->Scan(ScanOptions{});
  ASSERT_TRUE(batches.ok());
  EXPECT_TRUE(batches->empty());
}

TEST_F(WriterReaderTest, NullValuesRoundTrip) {
  PixelsWriter writer(TestSchema());
  ASSERT_TRUE(writer
                  .AppendRow({Value::Null(), Value::Null(), Value::Null(),
                              Value::Null()})
                  .ok());
  ASSERT_TRUE(writer
                  .AppendRow({Value::Int(1), Value::Double(2), Value::String("x"),
                              Value::Int(3)})
                  .ok());
  ASSERT_TRUE(writer.Finish(store_.get(), "n.pxl").ok());
  auto reader = PixelsReader::Open(store_.get(), "n.pxl");
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadRowGroup(0, {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE((*batch)->column(0)->IsNull(0));
  EXPECT_FALSE((*batch)->column(0)->IsNull(1));
}

TEST_F(WriterReaderTest, ForcedEncodingApplied) {
  WriterOptions options;
  options.forced_encoding = Encoding::kPlain;
  PixelsWriter writer(TestSchema(), options);
  ASSERT_TRUE(writer
                  .AppendRow({Value::Int(1), Value::Double(1), Value::String("a"),
                              Value::Int(1)})
                  .ok());
  ASSERT_TRUE(writer.Finish(store_.get(), "forced.pxl").ok());
  auto reader = PixelsReader::Open(store_.get(), "forced.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NumRows(), 1u);
}

TEST_F(WriterReaderTest, OpenRejectsGarbage) {
  std::vector<uint8_t> garbage(100, 0x42);
  ASSERT_TRUE(store_->Write("bad.pxl", garbage).ok());
  EXPECT_TRUE(PixelsReader::Open(store_.get(), "bad.pxl").status().IsCorruption());
}

TEST_F(WriterReaderTest, OpenRejectsTinyFile) {
  ASSERT_TRUE(store_->Write("tiny.pxl", {1, 2, 3}).ok());
  EXPECT_FALSE(PixelsReader::Open(store_.get(), "tiny.pxl").ok());
}

TEST_F(WriterReaderTest, OpenRejectsTruncatedFooter) {
  WriteFile("t.pxl", 100, 50);
  auto data = store_->Read("t.pxl");
  ASSERT_TRUE(data.ok());
  auto truncated = *data;
  truncated.resize(truncated.size() - 6);  // destroy trailer
  ASSERT_TRUE(store_->Write("trunc.pxl", truncated).ok());
  EXPECT_FALSE(PixelsReader::Open(store_.get(), "trunc.pxl").ok());
}

TEST_F(WriterReaderTest, ReadRowGroupOutOfRange) {
  WriteFile("t.pxl", 10, 50);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->ReadRowGroup(5, {}).status().IsInvalidArgument());
}

TEST_F(WriterReaderTest, UnknownProjectionColumnFails) {
  WriteFile("t.pxl", 10, 50);
  auto reader = PixelsReader::Open(store_.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  ScanOptions options;
  options.columns = {"no_such"};
  EXPECT_TRUE((*reader)->Scan(options).status().IsNotFound());
}

TEST_F(WriterReaderTest, LargeFileManyRowGroups) {
  WriteFile("big.pxl", 10000, 256);
  auto reader = PixelsReader::Open(store_.get(), "big.pxl");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NumRowGroups(), 40u);
  EXPECT_EQ((*reader)->NumRows(), 10000u);
}

TEST_F(WriterReaderTest, OpenFetchesTrailerAndFooterInOneRead) {
  auto counting = std::make_shared<ObjectStore>(store_);
  WriterOptions options;
  options.row_group_size = 32;
  PixelsWriter writer(TestSchema(), options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int(i), Value::Double(i * 1.5),
                                Value::String("A"), Value::Int(1000)})
                    .ok());
  }
  ASSERT_TRUE(writer.Finish(counting.get(), "t.pxl").ok());

  IoOptions io;
  io.use_footer_cache = false;  // count raw opens, not cache behavior
  auto reader = PixelsReader::Open(counting.get(), "t.pxl", io);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Size probe is free; trailer + footer arrive in one speculative tail
  // read (this file's footer fits well inside the 8 KiB tail).
  EXPECT_EQ(counting->stats().get_requests, 1u);
  EXPECT_EQ((*reader)->NumRows(), 100u);
}

TEST_F(WriterReaderTest, OversizedFooterTakesSecondReadAndRoundTrips) {
  // ~1000 wide columns make the serialized footer far exceed the 8 KiB
  // speculative tail, forcing the stitched two-read path.
  FileSchema wide;
  for (int c = 0; c < 1000; ++c) {
    wide.push_back(ColumnDef{"very_long_column_name_number_" +
                                 std::to_string(c),
                             TypeId::kInt64});
  }
  auto counting = std::make_shared<ObjectStore>(store_);
  PixelsWriter writer(wide);
  std::vector<Value> row;
  for (int c = 0; c < 1000; ++c) row.push_back(Value::Int(c));
  ASSERT_TRUE(writer.AppendRow(row).ok());
  ASSERT_TRUE(writer.Finish(counting.get(), "wide.pxl").ok());

  IoOptions io;
  io.use_footer_cache = false;
  auto reader = PixelsReader::Open(counting.get(), "wide.pxl", io);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(counting->stats().get_requests, 2u);
  EXPECT_EQ((*reader)->schema().size(), 1000u);

  auto batch = (*reader)->ReadRowGroup(0, {"very_long_column_name_number_999"});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->column(0)->GetInt(0), 999);
}

}  // namespace
}  // namespace pixels
