#include "plan/subplan.h"

#include <gtest/gtest.h>

#include "plan/binder.h"
#include "plan/optimizer.h"
#include "testing/test_db.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class SubplanTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = testing::BuildTestCatalog(); }

  PlanPtr Plan(const std::string& sql) {
    auto plan = PlanQuery(sql, *catalog_, "db");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(SubplanTest, AggregateSplitsIntoPartialAndFinal) {
  auto plan = Plan("SELECT dept, sum(salary) FROM emp GROUP BY dept");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_TRUE(split->partial_agg);
  ASSERT_NE(split->subplan, nullptr);
  EXPECT_EQ(split->subplan->kind, LogicalPlan::Kind::kAggregate);
  EXPECT_TRUE(split->subplan->partial);
  // Final plan has a merge aggregate over a view placeholder.
  EXPECT_TRUE(split->final_plan->Contains(LogicalPlan::Kind::kMaterializedView));
  EXPECT_TRUE(split->final_plan->Contains(LogicalPlan::Kind::kAggregate));
}

TEST_F(SubplanTest, DistinctAggregateSplitsBelowAggregate) {
  auto plan = Plan("SELECT count(DISTINCT dept) FROM emp");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->partial_agg);
  ASSERT_NE(split->subplan, nullptr);
  // The sub-plan is below the aggregate (the scan subtree).
  EXPECT_NE(split->subplan->kind, LogicalPlan::Kind::kAggregate);
  // The aggregate remains top-level.
  EXPECT_TRUE(split->final_plan->Contains(LogicalPlan::Kind::kAggregate));
}

TEST_F(SubplanTest, ScanOnlyPlanSplitsAtScan) {
  auto plan = Plan("SELECT name FROM emp LIMIT 2");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  ASSERT_NE(split->subplan, nullptr);
  EXPECT_EQ(split->subplan->kind, LogicalPlan::Kind::kScan);
  // Limit and project stay top-level.
  EXPECT_EQ(split->final_plan->kind, LogicalPlan::Kind::kLimit);
}

TEST_F(SubplanTest, JoinSubtreeIsPushedWhole) {
  auto plan = Plan(
      "SELECT emp.name, dept.location FROM emp JOIN dept ON emp.dept = "
      "dept.name");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  ASSERT_NE(split->subplan, nullptr);
  EXPECT_TRUE(split->subplan->Contains(LogicalPlan::Kind::kJoin));
  EXPECT_FALSE(split->final_plan->Contains(LogicalPlan::Kind::kJoin));
}

TEST_F(SubplanTest, NoHeavyNodeMeansNoSplit) {
  auto plan = Plan("SELECT 1 + 1");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->subplan, nullptr);
}

TEST_F(SubplanTest, InjectViewFillsPlaceholder) {
  auto plan = Plan("SELECT name FROM emp LIMIT 2");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  auto view = std::make_shared<Table>();
  ASSERT_TRUE(InjectView(split->final_plan, view).ok());
  // Injecting twice fails: no empty placeholder remains.
  EXPECT_TRUE(InjectView(split->final_plan, view).IsFailedPrecondition());
}

TEST_F(SubplanTest, InjectViewWithoutPlaceholderFails) {
  auto plan = Plan("SELECT name FROM emp");
  EXPECT_TRUE(InjectView(plan, std::make_shared<Table>()).IsFailedPrecondition());
}

TEST_F(SubplanTest, PartitionAssignsDisjointFiles) {
  // Build a TPC-H catalog with several lineitem files.
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions options;
  options.scale_factor = 0.002;
  options.rows_per_file = 3000;  // 12000 lineitem rows -> 4 files
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", options).ok());

  auto plan = PlanQuery("SELECT sum(l_extendedprice) FROM lineitem", *catalog,
                        "tpch");
  ASSERT_TRUE(plan.ok());
  auto split = SplitForCf(*plan);
  ASSERT_TRUE(split.ok());
  ASSERT_NE(split->subplan, nullptr);

  auto partitions = PartitionSubplan(split->subplan, 3, *catalog);
  ASSERT_TRUE(partitions.ok()) << partitions.status().ToString();
  EXPECT_EQ(partitions->size(), 3u);
  // Every file appears exactly once across workers.
  std::set<std::string> seen;
  size_t total = 0;
  for (const auto& wp : *partitions) {
    const LogicalPlan* scan = wp.get();
    while (scan->kind != LogicalPlan::Kind::kScan) {
      scan = scan->children[0].get();
    }
    for (const auto& f : scan->file_subset) {
      EXPECT_TRUE(seen.insert(f).second) << "duplicate file " << f;
      ++total;
    }
  }
  auto table = catalog->GetTable("tpch", "lineitem");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(total, (*table)->files.size());
}

TEST_F(SubplanTest, PartitionCapsWorkersAtFileCount) {
  auto split = SplitForCf(Plan("SELECT name FROM emp"));
  ASSERT_TRUE(split.ok());
  auto partitions = PartitionSubplan(split->subplan, 8, *catalog_);
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(partitions->size(), 1u);  // emp has one file
}

TEST_F(SubplanTest, PartitionRejectsBadWorkerCount) {
  auto split = SplitForCf(Plan("SELECT name FROM emp"));
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(
      PartitionSubplan(split->subplan, 0, *catalog_).status().IsInvalidArgument());
}

TEST_F(SubplanTest, PartialAggOutputDeclaresStateColumns) {
  auto plan = Plan("SELECT dept, avg(salary) FROM emp GROUP BY dept");
  auto split = SplitForCf(plan);
  ASSERT_TRUE(split.ok());
  ASSERT_TRUE(split->partial_agg);
  // The merge aggregate references the same output names as the original.
  const LogicalPlan* merge = split->final_plan.get();
  while (merge->kind != LogicalPlan::Kind::kAggregate) {
    merge = merge->children[0].get();
  }
  EXPECT_TRUE(merge->merge_partials);
  ASSERT_EQ(merge->agg_names.size(), 1u);
  EXPECT_EQ(merge->agg_names[0], "avg(emp.salary)");
}

}  // namespace
}  // namespace pixels
