#include "plan/binder.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace pixels {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = testing::BuildTestCatalog(); }

  Result<PlanPtr> Bind(const std::string& sql) {
    return PlanQuery(sql, *catalog_, "db");
  }

  PlanPtr MustBind(const std::string& sql) {
    auto r = Bind(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(BinderTest, SimpleSelectProducesProjectOverScan) {
  auto plan = MustBind("SELECT name FROM emp");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kProject);
  EXPECT_EQ(plan->children[0]->kind, LogicalPlan::Kind::kScan);
  EXPECT_EQ(plan->names, (std::vector<std::string>{"name"}));
}

TEST_F(BinderTest, StarExpandsAllColumns) {
  auto plan = MustBind("SELECT * FROM emp");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->names.size(), 5u);
  EXPECT_EQ(plan->names[0], "id");
  EXPECT_EQ(plan->names[4], "hired");
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_FALSE(Bind("SELECT x FROM nope").ok());
}

TEST_F(BinderTest, UnknownColumnFails) {
  auto r = Bind("SELECT wat FROM emp");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("wat"), std::string::npos);
}

TEST_F(BinderTest, QualifierResolution) {
  auto plan = MustBind("SELECT e.name FROM emp AS e");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->exprs[0]->qualifier, "e");
}

TEST_F(BinderTest, UnknownQualifierFails) {
  EXPECT_FALSE(Bind("SELECT z.name FROM emp AS e").ok());
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  auto r = Bind("SELECT name FROM emp JOIN dept ON emp.dept = dept.name");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, JoinBuildsJoinNode) {
  auto plan =
      MustBind("SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.name");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kJoin));
}

TEST_F(BinderTest, DuplicateAliasFails) {
  EXPECT_FALSE(
      Bind("SELECT 1 FROM emp AS x JOIN dept AS x ON x.dept = x.name").ok());
}

TEST_F(BinderTest, WhereBecomesFilter) {
  auto plan = MustBind("SELECT name FROM emp WHERE salary > 100");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kFilter));
}

TEST_F(BinderTest, AggregateInWhereFails) {
  EXPECT_FALSE(Bind("SELECT name FROM emp WHERE sum(salary) > 10").ok());
}

TEST_F(BinderTest, GroupByBuildsAggregate) {
  auto plan = MustBind("SELECT dept, sum(salary) FROM emp GROUP BY dept");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kAggregate));
}

TEST_F(BinderTest, GlobalAggregateWithoutGroupBy) {
  auto plan = MustBind("SELECT count(*), avg(salary) FROM emp");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kAggregate));
}

TEST_F(BinderTest, NonGroupedColumnInAggregateFails) {
  auto r = Bind("SELECT name, sum(salary) FROM emp GROUP BY dept");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, GroupExprUsableInSelect) {
  auto plan =
      MustBind("SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kSort));
}

TEST_F(BinderTest, HavingBecomesFilterAboveAggregate) {
  auto plan = MustBind(
      "SELECT dept FROM emp GROUP BY dept HAVING count(*) > 2");
  ASSERT_NE(plan, nullptr);
  // Filter sits above the aggregate: project -> filter -> aggregate.
  const LogicalPlan* node = plan.get();
  ASSERT_EQ(node->kind, LogicalPlan::Kind::kProject);
  node = node->children[0].get();
  EXPECT_EQ(node->kind, LogicalPlan::Kind::kFilter);
  EXPECT_EQ(node->children[0]->kind, LogicalPlan::Kind::kAggregate);
}

TEST_F(BinderTest, AggregatesInGroupByFails) {
  EXPECT_FALSE(Bind("SELECT 1 FROM emp GROUP BY sum(salary)").ok());
}

TEST_F(BinderTest, OrderByAlias) {
  auto plan =
      MustBind("SELECT salary * 2 AS double_pay FROM emp ORDER BY double_pay");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kSort);
}

TEST_F(BinderTest, OrderByPosition) {
  auto plan = MustBind("SELECT name, salary FROM emp ORDER BY 2 DESC");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kSort);
  EXPECT_EQ(plan->order_by[0].expr->name, "salary");
  EXPECT_FALSE(plan->order_by[0].ascending);
}

TEST_F(BinderTest, OrderByPositionOutOfRangeFails) {
  EXPECT_FALSE(Bind("SELECT name FROM emp ORDER BY 5").ok());
}

TEST_F(BinderTest, OrderByUnselectedColumnUsesHiddenKey) {
  auto plan = MustBind("SELECT name FROM emp ORDER BY salary");
  ASSERT_NE(plan, nullptr);
  // A final projection drops the hidden sort column.
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kProject);
  EXPECT_EQ(plan->names, (std::vector<std::string>{"name"}));
  EXPECT_EQ(plan->children[0]->kind, LogicalPlan::Kind::kSort);
}

TEST_F(BinderTest, OrderByUnselectedColumnWithDistinctFails) {
  EXPECT_FALSE(Bind("SELECT DISTINCT name FROM emp ORDER BY salary").ok());
}

TEST_F(BinderTest, OrderByUngroupedColumnStillFails) {
  EXPECT_FALSE(
      Bind("SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY name").ok());
}

TEST_F(BinderTest, OrderByAggregateExpression) {
  auto plan = MustBind(
      "SELECT dept, sum(salary) FROM emp GROUP BY dept ORDER BY sum(salary) "
      "DESC");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kSort);
}

TEST_F(BinderTest, LimitBecomesLimitNode) {
  auto plan = MustBind("SELECT name FROM emp LIMIT 3");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kLimit);
  EXPECT_EQ(plan->limit, 3);
}

TEST_F(BinderTest, DistinctBecomesDistinctNode) {
  auto plan = MustBind("SELECT DISTINCT dept FROM emp");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kDistinct));
}

TEST_F(BinderTest, SelectWithoutFrom) {
  auto plan = MustBind("SELECT 1 + 1 AS two");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalPlan::Kind::kProject);
  EXPECT_EQ(plan->names[0], "two");
  EXPECT_EQ(plan->children[0]->kind, LogicalPlan::Kind::kMaterializedView);
}

TEST_F(BinderTest, StarWithoutFromFails) {
  EXPECT_FALSE(Bind("SELECT *").ok());
}

TEST_F(BinderTest, PlanToStringContainsNodes) {
  auto plan = MustBind(
      "SELECT dept, sum(salary) FROM emp WHERE salary > 50 GROUP BY dept");
  ASSERT_NE(plan, nullptr);
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Project"), std::string::npos);
  EXPECT_NE(s.find("Aggregate"), std::string::npos);
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Scan db.emp"), std::string::npos);
}

TEST_F(BinderTest, OutputColumnsPropagate) {
  auto plan = MustBind("SELECT name AS n, salary FROM emp");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->OutputColumns(),
            (std::vector<std::string>{"n", "salary"}));
}

}  // namespace
}  // namespace pixels
