#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include "plan/binder.h"
#include "sql/parser.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = testing::BuildTestCatalog(); }

  PlanPtr MustOptimize(const std::string& sql, OptimizerOptions options = {}) {
    auto plan = PlanQuery(sql, *catalog_, "db");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_, options);
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    return optimized.ok() ? *optimized : nullptr;
  }

  static const LogicalPlan* FindNode(const LogicalPlan* plan,
                                     LogicalPlan::Kind kind) {
    if (plan->kind == kind) return plan;
    for (const auto& c : plan->children) {
      const LogicalPlan* f = FindNode(c.get(), kind);
      if (f != nullptr) return f;
    }
    return nullptr;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST(FoldConstantsTest, FoldsArithmetic) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  auto folded = FoldConstants(std::move(*e));
  ASSERT_EQ(folded->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(folded->literal.i, 7);
}

TEST(FoldConstantsTest, FoldsLogicAndComparison) {
  auto folded = FoldConstants(*ParseExpression("1 < 2 AND 3 = 3"));
  ASSERT_EQ(folded->kind, Expr::Kind::kLiteral);
  EXPECT_TRUE(folded->literal.AsBool());
}

TEST(FoldConstantsTest, KeepsColumnRefs) {
  auto folded = FoldConstants(*ParseExpression("x + (2 * 3)"));
  ASSERT_EQ(folded->kind, Expr::Kind::kBinary);
  EXPECT_EQ(folded->args[1]->literal.i, 6);  // subtree folded
}

TEST(FoldConstantsTest, DivisionByZeroBecomesNull) {
  auto folded = FoldConstants(*ParseExpression("1 / 0"));
  ASSERT_EQ(folded->kind, Expr::Kind::kLiteral);
  EXPECT_TRUE(folded->literal.is_null());
}

TEST(FoldConstantsTest, FoldsCaseAndBetween) {
  auto folded =
      FoldConstants(*ParseExpression("CASE WHEN 1 = 1 THEN 5 ELSE 6 END"));
  ASSERT_EQ(folded->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(folded->literal.i, 5);
  folded = FoldConstants(*ParseExpression("5 BETWEEN 1 AND 10"));
  EXPECT_TRUE(folded->literal.AsBool());
}

TEST(FoldConstantsTest, StringOperations) {
  auto folded = FoldConstants(*ParseExpression("'abc' LIKE 'a%'"));
  EXPECT_TRUE(folded->literal.AsBool());
  folded = FoldConstants(*ParseExpression("'a' || 'b'"));
  EXPECT_EQ(folded->literal.s, "ab");
}

TEST(FoldConstantsTest, NeverFoldsAggregates) {
  auto folded = FoldConstants(*ParseExpression("sum(1)"));
  EXPECT_EQ(folded->kind, Expr::Kind::kFunction);
}

TEST(SplitConjunctsTest, SplitsNestedAnds) {
  auto e = ParseExpression("a = 1 AND b = 2 AND (c = 3 AND d = 4)");
  ASSERT_TRUE(e.ok());
  auto conjuncts = SplitConjuncts(**e);
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(SplitConjunctsTest, OrIsOneConjunct) {
  auto conjuncts = SplitConjuncts(**ParseExpression("a = 1 OR b = 2"));
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(CombineConjunctsTest, RoundTrips) {
  auto e = ParseExpression("a = 1 AND b = 2");
  auto combined = CombineConjuncts(SplitConjuncts(**e));
  EXPECT_TRUE(combined->Equals(**e));
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(CollectColumnRefsTest, FindsQualifiedNames) {
  auto e = ParseExpression("t.a + b * f(c.d)");
  std::vector<std::string> refs;
  CollectColumnRefs(**e, &refs);
  EXPECT_EQ(refs, (std::vector<std::string>{"t.a", "b", "c.d"}));
}

TEST_F(OptimizerTest, PushesPredicatesIntoScanZoneMaps) {
  auto plan = MustOptimize("SELECT name FROM emp WHERE salary > 100");
  ASSERT_NE(plan, nullptr);
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->pushed.size(), 1u);
  EXPECT_EQ(scan->pushed[0].column, "salary");
  EXPECT_EQ(scan->pushed[0].op, ">");
  // The exact filter must remain.
  EXPECT_TRUE(plan->Contains(LogicalPlan::Kind::kFilter));
}

TEST_F(OptimizerTest, PushesBetweenAsTwoRangePredicates) {
  auto plan =
      MustOptimize("SELECT name FROM emp WHERE salary BETWEEN 80 AND 100");
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->pushed.size(), 2u);
}

TEST_F(OptimizerTest, FlippedLiteralComparison) {
  auto plan = MustOptimize("SELECT name FROM emp WHERE 100 < salary");
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->pushed.size(), 1u);
  EXPECT_EQ(scan->pushed[0].op, ">");
}

TEST_F(OptimizerTest, PushesSingleSideFiltersBelowJoin) {
  auto plan = MustOptimize(
      "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.name WHERE "
      "emp.salary > 100 AND dept.location = 'nyc'");
  const LogicalPlan* join = FindNode(plan.get(), LogicalPlan::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  // Both join inputs should now have a filter above their scans.
  EXPECT_EQ(join->children[0]->kind, LogicalPlan::Kind::kFilter);
  EXPECT_EQ(join->children[1]->kind, LogicalPlan::Kind::kFilter);
}

TEST_F(OptimizerTest, CrossTableConjunctStaysAboveJoin) {
  auto plan = MustOptimize(
      "SELECT emp.name FROM emp JOIN dept ON emp.dept = dept.name WHERE "
      "emp.name < dept.location");
  // The filter referencing both sides must remain above the join.
  ASSERT_EQ(plan->kind, LogicalPlan::Kind::kProject);
  EXPECT_EQ(plan->children[0]->kind, LogicalPlan::Kind::kFilter);
  EXPECT_EQ(plan->children[0]->children[0]->kind, LogicalPlan::Kind::kJoin);
}

TEST_F(OptimizerTest, PrunesUnusedScanColumns) {
  auto plan = MustOptimize("SELECT name FROM emp WHERE salary > 10");
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  // Only name and salary are needed (5 columns in the table).
  EXPECT_EQ(scan->columns.size(), 2u);
}

TEST_F(OptimizerTest, PruningKeepsAtLeastOneColumn) {
  auto plan = MustOptimize("SELECT count(*) FROM emp");
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_GE(scan->columns.size(), 1u);
}

TEST_F(OptimizerTest, OptionsDisableRules) {
  OptimizerOptions options;
  options.pushdown_predicates = false;
  options.prune_projections = false;
  auto plan = MustOptimize("SELECT name FROM emp WHERE salary > 100", options);
  const LogicalPlan* scan = FindNode(plan.get(), LogicalPlan::Kind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->pushed.empty());
  EXPECT_EQ(scan->columns.size(), 5u);
}

TEST_F(OptimizerTest, ConstantFoldingInsidePlans) {
  auto plan = MustOptimize("SELECT salary * (2 + 3) FROM emp");
  ASSERT_EQ(plan->kind, LogicalPlan::Kind::kProject);
  EXPECT_EQ(plan->exprs[0]->args[1]->literal.i, 5);
}

}  // namespace
}  // namespace pixels
