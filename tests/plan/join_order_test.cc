#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "testing/test_db.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

const LogicalPlan* FindJoin(const LogicalPlan* plan) {
  if (plan->kind == LogicalPlan::Kind::kJoin) return plan;
  for (const auto& c : plan->children) {
    const LogicalPlan* f = FindJoin(c.get());
    if (f != nullptr) return f;
  }
  return nullptr;
}

const LogicalPlan* FindScanOf(const LogicalPlan* plan,
                              const std::string& table) {
  if (plan->kind == LogicalPlan::Kind::kScan && plan->table == table) {
    return plan;
  }
  for (const auto& c : plan->children) {
    const LogicalPlan* f = FindScanOf(c.get(), table);
    if (f != nullptr) return f;
  }
  return nullptr;
}

class JoinOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions options;
    options.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());
  }

  PlanPtr Optimized(const std::string& sql, OptimizerOptions options = {}) {
    auto plan = PlanQuery(sql, *catalog_, "tpch");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_, options);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(JoinOrderTest, EstimateRowsUsesCatalogCounts) {
  auto plan = Optimized("SELECT o_orderkey FROM orders",
                        OptimizerOptions{false, false, false, false});
  // orders at SF 0.001 has 1500 rows.
  EXPECT_EQ(EstimateRows(*plan, *catalog_), 1500u);
}

TEST_F(JoinOrderTest, FilterReducesEstimate) {
  auto plan = Optimized("SELECT o_orderkey FROM orders WHERE o_totalprice > 5",
                        OptimizerOptions{false, false, false, false});
  EXPECT_LT(EstimateRows(*plan, *catalog_), 1500u);
}

TEST_F(JoinOrderTest, LimitCapsEstimate) {
  auto plan = Optimized("SELECT o_orderkey FROM orders LIMIT 7",
                        OptimizerOptions{false, false, false, false});
  EXPECT_EQ(EstimateRows(*plan, *catalog_), 7u);
}

TEST_F(JoinOrderTest, SmallerTableBecomesBuildSide) {
  // lineitem (6000 rows) JOIN nation-sized table: writing the small table
  // first would put the big one on the build side without the rule.
  auto plan = Optimized(
      "SELECT count(*) FROM orders o JOIN lineitem l ON o.o_orderkey = "
      "l.l_orderkey");
  const LogicalPlan* join = FindJoin(plan.get());
  ASSERT_NE(join, nullptr);
  // Build side (children[1]) must be the smaller input: orders (1500) vs
  // lineitem (6000).
  EXPECT_NE(FindScanOf(join->children[1].get(), "orders"), nullptr);
  EXPECT_NE(FindScanOf(join->children[0].get(), "lineitem"), nullptr);
}

TEST_F(JoinOrderTest, DisabledRuleKeepsSyntacticOrder) {
  OptimizerOptions options;
  options.optimize_join_order = false;
  auto plan = Optimized(
      "SELECT count(*) FROM orders o JOIN lineitem l ON o.o_orderkey = "
      "l.l_orderkey",
      options);
  const LogicalPlan* join = FindJoin(plan.get());
  ASSERT_NE(join, nullptr);
  // Syntactic order: orders left, lineitem right.
  EXPECT_NE(FindScanOf(join->children[0].get(), "orders"), nullptr);
}

TEST_F(JoinOrderTest, LeftJoinNeverSwapped) {
  auto catalog = testing::BuildTestCatalog();
  auto plan = PlanQuery(
      "SELECT d.name FROM dept d LEFT JOIN emp e ON d.name = e.dept", *catalog,
      "db");
  ASSERT_TRUE(plan.ok());
  auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
  ASSERT_TRUE(optimized.ok());
  const LogicalPlan* join = FindJoin(optimized->get());
  ASSERT_NE(join, nullptr);
  // dept (4 rows) stays on the left even though emp (8 rows) is bigger:
  // LEFT JOIN is not symmetric.
  EXPECT_NE(FindScanOf(join->children[0].get(), "dept"), nullptr);
}

TEST_F(JoinOrderTest, SwappedJoinProducesSameResults) {
  const std::string sql =
      "SELECT o.o_orderpriority, count(*) AS n FROM lineitem l JOIN orders o "
      "ON l.l_orderkey = o.o_orderkey GROUP BY o.o_orderpriority ORDER BY "
      "o.o_orderpriority";
  ExecContext ctx_on, ctx_off;
  ctx_on.catalog = catalog_.get();
  ctx_off.catalog = catalog_.get();

  auto with_rule = ExecutePlan(Optimized(sql), &ctx_on);
  OptimizerOptions off;
  off.optimize_join_order = false;
  auto without_rule = ExecutePlan(Optimized(sql, off), &ctx_off);
  ASSERT_TRUE(with_rule.ok() && without_rule.ok());

  auto a = (*with_rule)->CollectColumn("n");
  auto b = (*without_rule)->CollectColumn("n");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].i, b[i].i);
}

}  // namespace
}  // namespace pixels
