#include "common/sim_clock.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
  EXPECT_EQ(clock.pending_events(), 0u);
}

TEST(SimClockTest, RunsEventsInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(30, [&] { order.push_back(3); });
  clock.Schedule(10, [&] { order.push_back(1); });
  clock.Schedule(20, [&] { order.push_back(2); });
  clock.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 30);
}

TEST(SimClockTest, TiesRunFifo) {
  SimClock clock;
  std::vector<int> order;
  clock.Schedule(10, [&] { order.push_back(1); });
  clock.Schedule(10, [&] { order.push_back(2); });
  clock.Schedule(10, [&] { order.push_back(3); });
  clock.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, EventsCanScheduleMoreEvents) {
  SimClock clock;
  std::vector<SimTime> times;
  clock.Schedule(5, [&] {
    times.push_back(clock.Now());
    clock.Schedule(5, [&] { times.push_back(clock.Now()); });
  });
  clock.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10}));
}

TEST(SimClockTest, RunUntilStopsAtDeadline) {
  SimClock clock;
  int fired = 0;
  clock.Schedule(10, [&] { ++fired; });
  clock.Schedule(100, [&] { ++fired; });
  clock.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.Now(), 50);
  EXPECT_EQ(clock.pending_events(), 1u);
  clock.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(SimClockTest, RunUntilAdvancesClockWithoutEvents) {
  SimClock clock;
  clock.RunUntil(42);
  EXPECT_EQ(clock.Now(), 42);
}

TEST(SimClockTest, CancelPreventsExecution) {
  SimClock clock;
  int fired = 0;
  uint64_t id = clock.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(clock.Cancel(id));
  clock.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(SimClockTest, CancelAfterRunReturnsFalse) {
  SimClock clock;
  uint64_t id = clock.Schedule(10, [] {});
  clock.RunAll();
  EXPECT_FALSE(clock.Cancel(id));
}

TEST(SimClockTest, CancelUnknownIdReturnsFalse) {
  SimClock clock;
  EXPECT_FALSE(clock.Cancel(9999));
  EXPECT_FALSE(clock.Cancel(0));
}

TEST(SimClockTest, DoubleCancelReturnsFalse) {
  SimClock clock;
  uint64_t id = clock.Schedule(10, [] {});
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));
}

TEST(SimClockTest, NegativeDelayClampsToNow) {
  SimClock clock;
  clock.RunUntil(100);
  SimTime when = -1;
  clock.Schedule(-50, [&] { when = clock.Now(); });
  clock.RunAll();
  EXPECT_EQ(when, 100);
}

TEST(SimClockTest, ScheduleAtAbsoluteTime) {
  SimClock clock;
  SimTime when = -1;
  clock.ScheduleAt(77, [&] { when = clock.Now(); });
  clock.RunAll();
  EXPECT_EQ(when, 77);
}

TEST(SimClockTest, StepRunsOneEvent) {
  SimClock clock;
  int fired = 0;
  clock.Schedule(1, [&] { ++fired; });
  clock.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(clock.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(clock.Step());
  EXPECT_FALSE(clock.Step());
}

TEST(SimClockTest, PendingEventsTracksCancellations) {
  SimClock clock;
  uint64_t a = clock.Schedule(1, [] {});
  clock.Schedule(2, [] {});
  EXPECT_EQ(clock.pending_events(), 2u);
  clock.Cancel(a);
  EXPECT_EQ(clock.pending_events(), 1u);
  clock.RunAll();
  EXPECT_EQ(clock.pending_events(), 0u);
}

TEST(SimClockTest, TimeConstantsAreConsistent) {
  EXPECT_EQ(kSeconds, 1000 * kMillis);
  EXPECT_EQ(kMinutes, 60 * kSeconds);
  EXPECT_EQ(kHours, 60 * kMinutes);
}

}  // namespace
}  // namespace pixels
