#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace pixels {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformSingletonRange) {
  Random rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(13);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.03);  // mean = 1/rate
}

TEST(RandomTest, GaussianMoments) {
  Random rng(17);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random rng(19);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(10, 1.2)]++;
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 10000 / 10);  // above uniform share
  for (const auto& [k, _] : counts) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 10);
  }
}

TEST(RandomTest, ZipfZeroSkewIsUniformish) {
  Random rng(21);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(5, 0)]++;
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(counts[k], 2000, 300);
  }
}

TEST(RandomTest, PoissonMeanSmall) {
  Random rng(23);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(total / n, 3.0, 0.1);
}

TEST(RandomTest, PoissonMeanLargeUsesNormalApprox) {
  Random rng(29);
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.Poisson(100.0));
  EXPECT_NEAR(total / n, 100.0, 2.0);
}

TEST(RandomTest, NextStringIsLowercaseAlpha) {
  Random rng(31);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, WeightedPickRespectsWeights) {
  Random rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedPick(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

}  // namespace
}  // namespace pixels
