#include "common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace pixels {
namespace {

TEST(MpscQueueTest, StartsEmpty) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.ApproxSize(), 0u);
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
}

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.Push(i);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.ApproxSize(), 100u);
  for (int i = 0; i < 100; ++i) {
    int v = -1;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.Empty());
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
}

TEST(MpscQueueTest, InterleavedPushPop) {
  MpscQueue<int> q;
  int next_expected = 0;
  for (int round = 0; round < 50; ++round) {
    q.Push(round * 2);
    q.Push(round * 2 + 1);
    int v = -1;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, next_expected++);
  }
  int v = -1;
  while (q.Pop(&v)) EXPECT_EQ(v, next_expected++);
  EXPECT_EQ(next_expected, 100);
}

TEST(MpscQueueTest, MoveOnlyPayload) {
  MpscQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(7));
  q.Push(std::make_unique<int>(8));
  std::unique_ptr<int> v;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(*v, 7);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(*v, 8);
}

TEST(MpscQueueTest, DestructorDrainsPendingNodes) {
  // Leak-checked (ASan in CI): destruction with queued elements must free
  // every node.
  auto q = std::make_unique<MpscQueue<std::string>>();
  for (int i = 0; i < 32; ++i) q->Push("pending-" + std::to_string(i));
  q.reset();
}

TEST(MpscQueueTest, ConcurrentProducersDeliverEverythingExactlyOnce) {
  // The TSan target: many producers race Push while the single consumer
  // drains. Every value must arrive exactly once, and per-producer order
  // must be preserved (MPSC guarantees producer-local FIFO).
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  MpscQueue<int64_t> q;
  std::atomic<int> started{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &started, p] {
      started.fetch_add(1);
      while (started.load() < kProducers) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(static_cast<int64_t>(p) * kPerProducer + i);
      }
    });
  }
  std::vector<int64_t> last_seen(kProducers, -1);
  size_t received = 0;
  while (received < static_cast<size_t>(kProducers) * kPerProducer) {
    int64_t v = -1;
    if (!q.Pop(&v)) {
      std::this_thread::yield();
      continue;
    }
    ++received;
    const int producer = static_cast<int>(v / kPerProducer);
    const int64_t seq = v % kPerProducer;
    ASSERT_LT(producer, kProducers);
    EXPECT_GT(seq, last_seen[producer]) << "per-producer FIFO violated";
    last_seen[producer] = seq;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.ApproxSize(), 0u);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[p], kPerProducer - 1);
  }
}

}  // namespace
}  // namespace pixels
