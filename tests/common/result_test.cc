#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace pixels {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<std::string> err(Status::IOError("x"));
  EXPECT_EQ(std::move(err).ValueOr("fallback"), "fallback");
  Result<std::string> ok(std::string("value"));
  EXPECT_EQ(std::move(ok).ValueOr("fallback"), "value");
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::Timeout("t"); };
  auto outer = [&]() -> Result<int> {
    PIXELS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_TRUE(outer().status().IsTimeout());
}

TEST(ResultTest, AssignOrReturnMacroPassesValue) {
  auto inner = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    PIXELS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  auto result = outer();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 11);
}

TEST(ResultTest, NestedMacroUsesDistinctTemporaries) {
  auto f = []() -> Result<int> { return 1; };
  auto g = [&]() -> Result<int> {
    PIXELS_ASSIGN_OR_RETURN(int a, f());
    PIXELS_ASSIGN_OR_RETURN(int b, f());
    return a + b;
  };
  EXPECT_EQ(*g(), 2);
}

}  // namespace
}  // namespace pixels
