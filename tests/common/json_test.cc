#include "common/json.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(3.5).Dump(), "3.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, ObjectAndArrayDump) {
  Json obj = Json::Object();
  obj.Set("name", "pixels");
  obj.Set("version", 1);
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append(2);
  obj.Set("values", std::move(arr));
  EXPECT_EQ(obj.Dump(), "{\"name\":\"pixels\",\"values\":[1,2],\"version\":1}");
}

TEST(JsonTest, ParseObject) {
  auto r = Json::Parse(R"({"question": "how many orders?", "n": 3, "ok": true})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->is_object());
  EXPECT_EQ(r->Get("question").AsString(), "how many orders?");
  EXPECT_EQ(r->Get("n").AsInt(), 3);
  EXPECT_TRUE(r->Get("ok").AsBool());
  EXPECT_TRUE(r->Get("missing").is_null());
}

TEST(JsonTest, ParseNestedArrays) {
  auto r = Json::Parse(R"([[1,2],[3,[4]]])");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->At(1).At(1).At(0).AsInt(), 4);
}

TEST(JsonTest, ParseEscapes) {
  auto r = Json::Parse(R"({"s": "a\"b\\c\ndA"})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Get("s").AsString(), "a\"b\\c\ndA");
}

TEST(JsonTest, EscapesOnDump) {
  Json j(std::string("line1\nline2\t\"q\""));
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "line1\nline2\t\"q\"");
}

TEST(JsonTest, ParseNumbers) {
  auto r = Json::Parse("[-1, 0.5, 1e3, -2.5e-2]");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->At(0).AsNumber(), -1);
  EXPECT_DOUBLE_EQ(r->At(1).AsNumber(), 0.5);
  EXPECT_DOUBLE_EQ(r->At(2).AsNumber(), 1000);
  EXPECT_DOUBLE_EQ(r->At(3).AsNumber(), -0.025);
}

TEST(JsonTest, RejectsTrailingGarbage) {
  EXPECT_TRUE(Json::Parse("{} x").status().IsParseError());
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("").ok());
}

TEST(JsonTest, RoundTripComplexDocument) {
  const std::string doc =
      R"({"database":"tpch","tables":[{"columns":[{"name":"a","type":"int"}],"table":"t"}]})";
  auto r = Json::Parse(doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Dump(), doc);
}

TEST(JsonTest, EqualityIsDeep) {
  auto a = Json::Parse(R"({"x":[1,2],"y":"z"})");
  auto b = Json::Parse(R"({"y":"z","x":[1,2]})");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  auto c = Json::Parse(R"({"x":[1,3],"y":"z"})");
  EXPECT_FALSE(*a == *c);
}

TEST(JsonTest, PrettyPrintParsesBack) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  Json arr = Json::Array();
  arr.Append("x");
  obj.Set("b", std::move(arr));
  auto r = Json::Parse(obj.Pretty());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r == obj);
}

}  // namespace
}  // namespace pixels
