// Tracer unit tests: zero-overhead off mode, span tree structure,
// virtual-time stamping, Chrome-trace JSON export (well-formed and
// deterministic), and thread-safety under concurrent span writers.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"

namespace pixels {
namespace {

TEST(TracerTest, OffLevelIsNoOp) {
  Tracer tracer;  // default kOff
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.profiling());
  const uint64_t id = tracer.StartSpan("query");
  EXPECT_EQ(id, 0u);
  // Every call on the no-op id is safe.
  tracer.Annotate(id, "k", "v");
  tracer.Annotate(id, "n", static_cast<uint64_t>(7));
  tracer.EndSpan(id);
  EXPECT_EQ(tracer.size(), 0u);
  auto doc = Json::Parse(tracer.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("traceEvents").size(), 0u);
}

TEST(TracerTest, LevelsGateProfiling) {
  Tracer tracer(TraceLevel::kSpans);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_FALSE(tracer.profiling());
  tracer.set_level(TraceLevel::kFull);
  EXPECT_TRUE(tracer.profiling());
}

TEST(TracerTest, SpanTreeAndAttributes) {
  Tracer tracer(TraceLevel::kSpans);
  const uint64_t root = tracer.StartSpan("query");
  const uint64_t plan = tracer.StartSpan("plan", root);
  tracer.EndSpan(plan);
  const uint64_t scan = tracer.StartSpan("scan", root);
  tracer.Annotate(scan, "bytes", static_cast<uint64_t>(4096));
  tracer.Annotate(scan, "cache", "miss");
  tracer.EndSpan(scan);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.size(), 3u);
  const auto roots = tracer.FindSpans("query");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].parent, 0u);
  const auto children = tracer.ChildrenOf(roots[0].id);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0].name, "plan");
  EXPECT_EQ(children[1].name, "scan");
  ASSERT_EQ(children[1].attrs.size(), 2u);
  EXPECT_EQ(children[1].attrs[0].first, "bytes");
  EXPECT_EQ(children[1].attrs[0].second, "4096");
  EXPECT_EQ(children[1].attrs[1].second, "miss");
}

TEST(TracerTest, SpansCarryVirtualTime) {
  Tracer tracer(TraceLevel::kSpans);
  tracer.SyncTime(100);
  const uint64_t a = tracer.StartSpan("a");
  tracer.SyncTime(250);
  tracer.EndSpan(a);
  // SyncTime is a monotonic max: going backwards is ignored.
  tracer.SyncTime(50);
  const uint64_t b = tracer.StartSpan("b");

  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start, 100);
  EXPECT_EQ(spans[0].end, 250);
  EXPECT_EQ(spans[1].start, 250);
  EXPECT_EQ(spans[1].end, -1);  // still open
  (void)b;
}

TEST(TracerTest, ActiveParentSlot) {
  Tracer tracer(TraceLevel::kSpans);
  EXPECT_EQ(tracer.ActiveParent(), 0u);
  const uint64_t attempt = tracer.StartSpan("cf-attempt");
  tracer.SetActiveParent(attempt);
  // A layer without a span handle (the storage decorator) parents here.
  const uint64_t get = tracer.StartSpan("storage-read",
                                        tracer.ActiveParent());
  EXPECT_EQ(tracer.Snapshot()[1].parent, attempt);
  tracer.EndSpan(get);
  tracer.SetActiveParent(0);
  EXPECT_EQ(tracer.ActiveParent(), 0u);
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  Tracer tracer(TraceLevel::kSpans);
  tracer.SyncTime(10);
  const uint64_t root = tracer.StartSpan("query");
  tracer.Annotate(root, "level", "immediate");
  tracer.SyncTime(35);
  tracer.EndSpan(root);

  const std::string json = tracer.ToChromeTraceJson();
  auto doc = Json::Parse(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->Get("traceEvents").is_array());
  ASSERT_EQ(doc->Get("traceEvents").size(), 1u);
  const Json& ev = doc->Get("traceEvents").At(0);
  EXPECT_EQ(ev.Get("name").AsString(), "query");
  EXPECT_EQ(ev.Get("ph").AsString(), "X");
  // Virtual milliseconds exported as microseconds.
  EXPECT_EQ(ev.Get("ts").AsInt(), 10 * 1000);
  EXPECT_EQ(ev.Get("dur").AsInt(), 25 * 1000);
  EXPECT_EQ(ev.Get("args").Get("level").AsString(), "immediate");
  EXPECT_EQ(ev.Get("args").Get("span_id").AsInt(), 1);
}

TEST(TracerTest, IdenticalRunsProduceIdenticalExports) {
  auto run = [] {
    Tracer tracer(TraceLevel::kSpans);
    tracer.SyncTime(5);
    const uint64_t q = tracer.StartSpan("query");
    const uint64_t s = tracer.StartSpan("scan", q);
    tracer.Annotate(s, "bytes", static_cast<uint64_t>(1234));
    tracer.SyncTime(17);
    tracer.EndSpan(s);
    tracer.EndSpan(q);
    return tracer.ToChromeTraceJson();
  };
  EXPECT_EQ(run(), run());
}

TEST(TracerTest, ScopedSpanEndsOnScopeExit) {
  Tracer tracer(TraceLevel::kSpans);
  {
    ScopedSpan scope(&tracer, tracer.StartSpan("scoped"));
    EXPECT_NE(scope.id(), 0u);
    EXPECT_EQ(tracer.Snapshot()[0].end, -1);
  }
  EXPECT_GE(tracer.Snapshot()[0].end, 0);
}

TEST(TracerTest, ConcurrentSpanWritersAreSafe) {
  // Pool threads open/annotate/end spans while the "simulation thread"
  // advances virtual time and readers snapshot. Run under TSan.
  Tracer tracer(TraceLevel::kSpans);
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 200;
  std::atomic<bool> stop{false};
  std::thread sim([&] {
    SimTime t = 0;
    while (!stop.load()) {
      tracer.SyncTime(++t);
      (void)tracer.Snapshot();
      (void)tracer.ToChromeTraceJson();
    }
  });
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&tracer, w] {
      for (int i = 0; i < kSpansPer; ++i) {
        const uint64_t id = tracer.StartSpan("worker");
        tracer.Annotate(id, "w", static_cast<uint64_t>(w));
        tracer.SetActiveParent(id);
        const uint64_t child =
            tracer.StartSpan("storage-read", tracer.ActiveParent());
        tracer.EndSpan(child);
        tracer.EndSpan(id);
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true);
  sim.join();
  EXPECT_EQ(tracer.size(), static_cast<size_t>(kThreads * kSpansPer * 2));
  // Every span id resolves and every parent reference is a valid id.
  for (const auto& span : tracer.Snapshot()) {
    EXPECT_GE(span.id, 1u);
    EXPECT_LE(span.parent, tracer.size());
  }
}

}  // namespace
}  // namespace pixels
