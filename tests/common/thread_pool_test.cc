#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pixels {
namespace {

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  // Drain: the caller helps until everything queued has run.
  while (pool.Help()) {
  }
  // Workers may still be mid-task; ParallelFor below acts as a barrier in
  // other tests, here just spin briefly.
  while (done.load() < 64) {
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  Status st = pool.ParallelFor(
      0, hits.size(), /*grain=*/7,
      [&](size_t i) {
        hits[i].fetch_add(1);
        return Status::OK();
      },
      4);
  ASSERT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSerialWhenParallelismOne) {
  ThreadPool pool(4);
  // With max_parallelism = 1 the body runs inline in index order.
  std::vector<size_t> order;
  Status st = pool.ParallelFor(
      5, 15, /*grain=*/3,
      [&](size_t i) {
        order.push_back(i);  // no synchronization needed: serial
        return Status::OK();
      },
      1);
  ASSERT_TRUE(st.ok());
  std::vector<size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 5);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstError) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = pool.ParallelFor(
      0, 100, /*grain=*/1,
      [&](size_t i) -> Status {
        ran.fetch_add(1);
        if (i == 17) return Status::InvalidArgument("morsel 17 is bad");
        return Status::OK();
      },
      4);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.ToString().find("morsel 17"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForCapturesExceptionsAsInternal) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(
      0, 8, /*grain=*/1,
      [&](size_t i) -> Status {
        if (i == 3) throw std::runtime_error("boom");
        return Status::OK();
      },
      2);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_NE(st.ToString().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // More outer tasks than pool threads, each running an inner
  // ParallelFor on the same pool: completes only because callers
  // participate in their own ranges.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  Status st = pool.ParallelFor(
      0, 8, /*grain=*/1,
      [&](size_t) {
        return pool.ParallelFor(
            0, 16, /*grain=*/1,
            [&](size_t) {
              inner_total.fetch_add(1);
              return Status::OK();
            },
            4);
      },
      8);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, DefaultParallelismOverride) {
  const int hw = DefaultParallelism();
  EXPECT_GE(hw, 1);
  SetDefaultParallelism(3);
  EXPECT_EQ(DefaultParallelism(), 3);
  SetDefaultParallelism(0);
  EXPECT_EQ(DefaultParallelism(), hw);
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndStable) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1);
  std::atomic<int> n{0};
  Status st = a->ParallelFor(
      0, 32, 1,
      [&](size_t) {
        n.fetch_add(1);
        return Status::OK();
      },
      4);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
}  // namespace pixels
