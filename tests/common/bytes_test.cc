#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace pixels {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(-1234567890123LL);
  w.PutF64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetI32(), -42);
  EXPECT_EQ(*r.GetI64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(*r.GetF64(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.data());
  for (uint64_t v : values) EXPECT_EQ(*r.GetVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.PutVarint(100);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, SignedVarintRoundTrip) {
  ByteWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, -1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) w.PutSignedVarint(v);
  ByteReader r(w.data());
  for (int64_t v : values) EXPECT_EQ(*r.GetSignedVarint(), v);
}

TEST(BytesTest, ZigzagKeepsSmallMagnitudesSmall) {
  ByteWriter w;
  w.PutSignedVarint(-2);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\0binary\xff", 8));
  ByteReader r(w.data());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_EQ(*r.GetString(), std::string("\0binary\xff", 8));
}

TEST(BytesTest, TruncatedFixedReadFails) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

TEST(BytesTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80};  // continuation with no next byte
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_TRUE(r.GetVarint().status().IsCorruption());
}

TEST(BytesTest, OverlongVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);
  ByteReader r(bytes.data(), bytes.size());
  EXPECT_TRUE(r.GetVarint().status().IsCorruption());
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.PutVarint(100);  // declared length longer than payload
  w.PutBytes("abc", 3);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(BytesTest, SeekAndPosition) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU32(2);
  ByteReader r(w.data());
  ASSERT_TRUE(r.Seek(4).ok());
  EXPECT_EQ(*r.GetU32(), 2u);
  EXPECT_TRUE(r.Seek(100).IsInvalidArgument());
}

TEST(BytesTest, GetBytesCopiesRaw) {
  ByteWriter w;
  w.PutBytes("abcdef", 6);
  ByteReader r(w.data());
  char buf[4] = {0};
  ASSERT_TRUE(r.GetBytes(buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
  EXPECT_EQ(r.remaining(), 3u);
}

}  // namespace
}  // namespace pixels
