// EventLog unit tests: emission order, virtual-time stamping via the
// atomic mirror, the capacity bound (oldest-first drops, counted), the
// byte-identical JSON-lines export, file export, and thread-safety under
// concurrent emitters (TSan target).
#include "common/event_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace pixels {
namespace {

Json Fields(const std::string& key, int64_t value) {
  Json f = Json::Object();
  f.Set(key, value);
  return f;
}

TEST(EventLogTest, EmitAndSnapshot) {
  EventLog log;
  log.SyncTime(100);
  log.Emit("admission.dispatch", Fields("server_id", 1));
  log.SyncTime(250);
  log.Emit("admission.hold", Fields("server_id", 2));
  ASSERT_EQ(log.size(), 2u);
  const auto records = log.Snapshot();
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].time, 100);
  EXPECT_EQ(records[0].type, "admission.dispatch");
  EXPECT_EQ(records[0].fields.Get("server_id").AsInt(), 1);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[1].time, 250);
  EXPECT_EQ(records[1].type, "admission.hold");
}

TEST(EventLogTest, OfTypeAndCount) {
  EventLog log;
  log.Emit("a", Fields("i", 0));
  log.Emit("b", Fields("i", 1));
  log.Emit("a", Fields("i", 2));
  EXPECT_EQ(log.CountOfType("a"), 2u);
  EXPECT_EQ(log.CountOfType("b"), 1u);
  EXPECT_EQ(log.CountOfType("c"), 0u);
  const auto as = log.OfType("a");
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[0].fields.Get("i").AsInt(), 0);
  EXPECT_EQ(as[1].fields.Get("i").AsInt(), 2);
}

TEST(EventLogTest, SyncTimeIsMonotone) {
  EventLog log;
  log.SyncTime(500);
  log.SyncTime(200);  // lagging call must not rewind
  EXPECT_EQ(log.VirtualNow(), 500);
  log.Emit("e");
  EXPECT_EQ(log.Snapshot()[0].time, 500);
}

TEST(EventLogTest, CapacityDropsOldestFirst) {
  EventLog log(3);
  for (int64_t i = 0; i < 5; ++i) log.Emit("e", Fields("i", i));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_emitted(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto records = log.Snapshot();
  // The two oldest events were evicted; seq stays global.
  EXPECT_EQ(records[0].seq, 2u);
  EXPECT_EQ(records[0].fields.Get("i").AsInt(), 2);
  EXPECT_EQ(records[2].seq, 4u);
}

TEST(EventLogTest, ClearKeepsCounters) {
  EventLog log;
  log.Emit("e");
  log.Emit("e");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_emitted(), 2u);
  log.Emit("e");
  EXPECT_EQ(log.Snapshot()[0].seq, 2u);  // seq never restarts
}

TEST(EventLogTest, JsonLinesAreWellFormedWithReservedKeys) {
  EventLog log;
  log.SyncTime(42);
  Json f = Json::Object();
  f.Set("reason", "low-watermark");
  f.Set("depth", static_cast<int64_t>(3));
  log.Emit("admission.release", std::move(f));
  const std::string lines = log.ToJsonLines();
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), '\n');
  auto doc = Json::Parse(lines.substr(0, lines.size() - 1));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("seq").AsInt(), 0);
  EXPECT_EQ(doc->Get("t_ms").AsInt(), 42);
  EXPECT_EQ(doc->Get("type").AsString(), "admission.release");
  EXPECT_EQ(doc->Get("reason").AsString(), "low-watermark");
  EXPECT_EQ(doc->Get("depth").AsInt(), 3);
}

TEST(EventLogTest, IdenticalRunsExportByteIdenticalLines) {
  auto run = [] {
    EventLog log;
    for (int64_t i = 0; i < 20; ++i) {
      log.SyncTime(i * 100);
      Json f = Json::Object();
      f.Set("server_id", i);
      f.Set("watermark", 0.75 + 0.125 * static_cast<double>(i % 3));
      f.Set("reason", i % 2 == 0 ? "capacity" : "grace-expired");
      log.Emit(i % 2 == 0 ? "admission.dispatch" : "admission.hold",
               std::move(f));
    }
    return log.ToJsonLines();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::count(a.begin(), a.end(), '\n'), 20);
}

TEST(EventLogTest, WriteToRoundTrips) {
  EventLog log;
  log.SyncTime(7);
  log.Emit("e", Fields("x", 1));
  const std::string path = ::testing::TempDir() + "/event_log_test.jsonl";
  ASSERT_TRUE(log.WriteTo(path).ok());
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(content, log.ToJsonLines());
  std::remove(path.c_str());
}

TEST(EventLogTest, WriteToBadPathFails) {
  EventLog log;
  log.Emit("e");
  EXPECT_FALSE(log.WriteTo("/nonexistent-dir-xyz/event.jsonl").ok());
}

TEST(EventLogTest, ConcurrentEmittersAreSafe) {
  // TSan target: N writer threads emit while a reader snapshots. Order
  // across threads is unspecified; totals and per-thread order are not.
  EventLog log(1 << 14);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        log.SyncTime(i);
        log.Emit("worker." + std::to_string(t), Fields("i", i));
      }
    });
  }
  std::thread reader([&log] {
    for (int i = 0; i < 50; ++i) {
      (void)log.Snapshot();
      (void)log.ToJsonLines();
    }
  });
  for (auto& w : writers) w.join();
  reader.join();
  EXPECT_EQ(log.total_emitted(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(log.dropped(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    const auto mine = log.OfType("worker." + std::to_string(t));
    ASSERT_EQ(mine.size(), static_cast<size_t>(kPerThread));
    for (int64_t i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(mine[static_cast<size_t>(i)].fields.Get("i").AsInt(), i);
    }
  }
  // Snapshot seq is globally unique and strictly increasing.
  const auto all = log.Snapshot();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].seq, all[i].seq);
  }
}

}  // namespace
}  // namespace pixels
