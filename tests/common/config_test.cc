#include "common/config.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(ConfigTest, ParsesKeyValues) {
  auto r = Config::FromString(
      "a=1\n"
      "b = hello world \n"
      "# comment\n"
      "\n"
      "c.d=3.5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetInt("a", 0), 1);
  EXPECT_EQ(r->GetString("b", ""), "hello world");
  EXPECT_DOUBLE_EQ(r->GetDouble("c.d", 0), 3.5);
  EXPECT_EQ(r->size(), 3u);
}

TEST(ConfigTest, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.GetInt("nope", 7), 7);
  EXPECT_EQ(c.GetString("nope", "d"), "d");
  EXPECT_TRUE(c.GetBool("nope", true));
}

TEST(ConfigTest, BooleanSpellings) {
  Config c;
  c.Set("a", "true");
  c.Set("b", "1");
  c.Set("c", "yes");
  c.Set("d", "on");
  c.Set("e", "false");
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_TRUE(c.GetBool("b", false));
  EXPECT_TRUE(c.GetBool("c", false));
  EXPECT_TRUE(c.GetBool("d", false));
  EXPECT_FALSE(c.GetBool("e", true));
}

TEST(ConfigTest, RejectsMissingEquals) {
  EXPECT_TRUE(Config::FromString("novalue\n").status().IsParseError());
}

TEST(ConfigTest, RejectsEmptyKey) {
  EXPECT_TRUE(Config::FromString("=x\n").status().IsParseError());
}

TEST(ConfigTest, SetOverwrites) {
  Config c;
  c.Set("k", "1");
  c.Set("k", "2");
  EXPECT_EQ(c.GetInt("k", 0), 2);
  EXPECT_TRUE(c.Has("k"));
}

TEST(ConfigTest, ToStringRoundTrips) {
  Config c;
  c.Set("b", "2");
  c.Set("a", "1");
  auto r = Config::FromString(c.ToString());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetInt("a", 0), 1);
  EXPECT_EQ(r->GetInt("b", 0), 2);
}

}  // namespace
}  // namespace pixels
