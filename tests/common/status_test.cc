#include "common/status.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ErrorStateCarriesMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("gone");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "gone");
  EXPECT_TRUE(s.IsNotFound());  // source unchanged
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::Corruption("bad bytes");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsCorruption());
  EXPECT_EQ(moved.message(), "bad bytes");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status a = Status::IOError("a");
  Status b = Status::NotFound("b");
  a = b;
  EXPECT_TRUE(a.IsNotFound());
  a = Status::OK();
  EXPECT_TRUE(a.ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PIXELS_RETURN_NOT_OK(Status::Timeout("slow"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsTimeout());
  auto passes = []() -> Status {
    PIXELS_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(passes().IsInvalidArgument());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
}

}  // namespace
}  // namespace pixels
