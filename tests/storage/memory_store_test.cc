#include "storage/memory_store.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(MemoryStoreTest, WriteReadRoundTrip) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("a/b", Bytes("hello")).ok());
  auto r = store.Read("a/b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->begin(), r->end()), "hello");
}

TEST(MemoryStoreTest, ReadMissingIsNotFound) {
  MemoryStore store;
  EXPECT_TRUE(store.Read("nope").status().IsNotFound());
  EXPECT_TRUE(store.Size("nope").status().IsNotFound());
}

TEST(MemoryStoreTest, WriteOverwrites) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("k", Bytes("one")).ok());
  ASSERT_TRUE(store.Write("k", Bytes("two")).ok());
  EXPECT_EQ(*store.Size("k"), 3u);
  auto data = store.Read("k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "two");
}

TEST(MemoryStoreTest, ReadRange) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("k", Bytes("abcdefgh")).ok());
  auto r = store.ReadRange("k", 2, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->begin(), r->end()), "cde");
}

TEST(MemoryStoreTest, ReadRangeBoundsChecked) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("k", Bytes("abc")).ok());
  EXPECT_TRUE(store.ReadRange("k", 2, 5).status().IsInvalidArgument());
  EXPECT_TRUE(store.ReadRange("k", 0, 3).ok());
  EXPECT_TRUE(store.ReadRange("missing", 0, 1).status().IsNotFound());
}

TEST(MemoryStoreTest, EmptyObject) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("empty", {}).ok());
  EXPECT_EQ(*store.Size("empty"), 0u);
  EXPECT_TRUE(store.Read("empty")->empty());
}

TEST(MemoryStoreTest, ListByPrefix) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("t/a", Bytes("1")).ok());
  ASSERT_TRUE(store.Write("t/b", Bytes("2")).ok());
  ASSERT_TRUE(store.Write("u/c", Bytes("3")).ok());
  auto r = store.List("t/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"t/a", "t/b"}));
  EXPECT_EQ(store.List("")->size(), 3u);
  EXPECT_TRUE(store.List("zzz")->empty());
}

TEST(MemoryStoreTest, DeleteRemovesObject) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("k", Bytes("x")).ok());
  EXPECT_TRUE(store.Exists("k"));
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_TRUE(store.Delete("k").IsNotFound());
}

TEST(MemoryStoreTest, TotalBytes) {
  MemoryStore store;
  ASSERT_TRUE(store.Write("a", Bytes("12345")).ok());
  ASSERT_TRUE(store.Write("b", Bytes("123")).ok());
  EXPECT_EQ(store.TotalBytes(), 8u);
}

}  // namespace
}  // namespace pixels
