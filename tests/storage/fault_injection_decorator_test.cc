// FaultInjectingStorage: seeded determinism, per-path rules,
// fail-N-then-succeed, and latency-spike accounting.
#include "storage/fault_injection.h"

#include <gtest/gtest.h>

#include <thread>

#include "storage/memory_store.h"

namespace pixels {
namespace {

std::shared_ptr<MemoryStore> StoreWithObjects() {
  auto store = std::make_shared<MemoryStore>();
  EXPECT_TRUE(store->Write("a/x", std::vector<uint8_t>(64, 1)).ok());
  EXPECT_TRUE(store->Write("b/y", std::vector<uint8_t>(64, 2)).ok());
  return store;
}

TEST(FaultInjectingStorageTest, ZeroRatesInjectNothing) {
  FaultInjectingStorage storage(StoreWithObjects(), {});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(storage.Read("a/x").ok());
    ASSERT_TRUE(storage.Write("a/z", {1, 2, 3}).ok());
  }
  const FaultInjectionStats stats = storage.stats();
  EXPECT_EQ(stats.injected_read_errors, 0u);
  EXPECT_EQ(stats.injected_write_errors, 0u);
  EXPECT_EQ(stats.injected_latency_spikes, 0u);
  EXPECT_EQ(stats.read_ops, 100u);
  EXPECT_EQ(stats.write_ops, 100u);
}

TEST(FaultInjectingStorageTest, SameSeedSameFaultSequence) {
  auto run = [](uint64_t seed) {
    FaultInjectionParams params;
    params.seed = seed;
    params.read_error_rate = 0.3;
    FaultInjectingStorage storage(StoreWithObjects(), params);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) outcomes.push_back(storage.Read("a/x").ok());
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultInjectingStorageTest, RateIsApproximatelyHonored) {
  FaultInjectionParams params;
  params.read_error_rate = 0.2;
  FaultInjectingStorage storage(StoreWithObjects(), params);
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!storage.Read("a/x").ok()) ++failures;
  }
  EXPECT_GT(failures, 300);
  EXPECT_LT(failures, 500);
}

TEST(FaultInjectingStorageTest, InjectedErrorsAreMarkedAndIOError) {
  FaultInjectionParams params;
  params.read_error_rate = 1.0;
  FaultInjectingStorage storage(StoreWithObjects(), params);
  auto r = storage.Read("a/x");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos);
}

TEST(FaultInjectingStorageTest, PathRuleOverridesGlobalRate) {
  FaultInjectionParams params;
  params.read_error_rate = 0;
  params.rules.push_back(FaultRule{"a/", /*read_error_rate=*/1.0, 0, 0, 0, 0, 0});
  FaultInjectingStorage storage(StoreWithObjects(), params);
  EXPECT_FALSE(storage.Read("a/x").ok());  // rule path: always fails
  EXPECT_TRUE(storage.Read("b/y").ok());   // other path: global zero rate
}

TEST(FaultInjectingStorageTest, FailFirstNThenSucceed) {
  FaultInjectionParams params;
  FaultRule rule;
  rule.path_substring = "a/";
  rule.fail_first_reads = 3;
  params.rules.push_back(rule);
  FaultInjectingStorage storage(StoreWithObjects(), params);
  EXPECT_FALSE(storage.Read("a/x").ok());
  EXPECT_FALSE(storage.ReadRange("a/x", 0, 8).ok());
  EXPECT_FALSE(storage.Size("a/x").ok());
  // Budget exhausted: everything succeeds from here on.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(storage.Read("a/x").ok());
  // The unmatched path never failed.
  EXPECT_TRUE(storage.Read("b/y").ok());
}

TEST(FaultInjectingStorageTest, WriteFaultsIndependentOfReadFaults) {
  FaultInjectionParams params;
  params.write_error_rate = 1.0;
  FaultInjectingStorage storage(StoreWithObjects(), params);
  EXPECT_TRUE(storage.Read("a/x").ok());
  Status w = storage.Write("a/z", {1});
  EXPECT_TRUE(w.IsIOError());
  EXPECT_TRUE(storage.Delete("a/x").IsIOError());  // write-side op
  EXPECT_EQ(storage.stats().injected_write_errors, 2u);
}

TEST(FaultInjectingStorageTest, LatencySpikesAccumulateSimulatedMs) {
  FaultInjectionParams params;
  params.latency_spike_rate = 1.0;
  params.latency_spike_ms = 100.0;
  FaultInjectingStorage storage(StoreWithObjects(), params);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(storage.Read("a/x").ok());
  const FaultInjectionStats stats = storage.stats();
  EXPECT_EQ(stats.injected_latency_spikes, 5u);
  EXPECT_DOUBLE_EQ(stats.injected_latency_ms, 500.0);
}

TEST(FaultInjectingStorageTest, ReadRangesDrawsPerMergedRange) {
  auto inner = std::make_shared<MemoryStore>();
  ASSERT_TRUE(inner->Write("obj", std::vector<uint8_t>(1000, 7)).ok());
  FaultInjectionParams params;
  FaultRule rule;
  rule.path_substring = "obj";
  rule.fail_first_reads = 1;
  params.rules.push_back(rule);
  FaultInjectingStorage storage(inner, params);
  // Two far-apart ranges, no coalescing: the first underlying request
  // fails, so the whole multi-range call fails — per-request injection.
  std::vector<ByteRange> ranges = {{0, 10}, {900, 10}};
  EXPECT_FALSE(storage.ReadRanges("obj", ranges, /*coalesce_gap_bytes=*/0).ok());
  // The retryable unit is one merged range: the second call succeeds.
  auto ok = storage.ReadRanges("obj", ranges, 0);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].size(), 10u);
}

TEST(FaultInjectingStorageTest, SlowRuleAddsFixedLatencyPerMatchingOp) {
  FaultInjectionParams params;
  FaultRule rule;
  rule.path_substring = "a/";
  rule.slow_ms = 40.0;
  params.rules.push_back(rule);
  FaultInjectingStorage storage(StoreWithObjects(), params);
  // Three matching ops (read + write sides both count), one non-matching.
  ASSERT_TRUE(storage.Read("a/x").ok());
  ASSERT_TRUE(storage.Read("a/x").ok());
  ASSERT_TRUE(storage.Write("a/z", {1}).ok());
  ASSERT_TRUE(storage.Read("b/y").ok());
  const FaultInjectionStats stats = storage.stats();
  EXPECT_EQ(stats.injected_slow_ops, 3u);
  EXPECT_DOUBLE_EQ(stats.injected_latency_ms, 120.0);
  // Deterministic: no error, no randomness, every matching op slowed.
  EXPECT_EQ(stats.injected_read_errors, 0u);
  EXPECT_EQ(stats.injected_latency_spikes, 0u);
}

TEST(FaultInjectingStorageTest, PathSlowMsIsPureFirstMatchWins) {
  FaultInjectionParams params;
  FaultRule first;
  first.path_substring = "task0";
  first.slow_ms = 500.0;
  FaultRule fallback;  // empty substring: matches everything
  fallback.slow_ms = 5.0;
  params.rules.push_back(first);
  params.rules.push_back(fallback);
  FaultInjectingStorage storage(StoreWithObjects(), params);

  EXPECT_DOUBLE_EQ(storage.PathSlowMs("q1/s0/task0.a1"), 500.0);
  EXPECT_DOUBLE_EQ(storage.PathSlowMs("q1/s0/task1.a1"), 5.0);
  // Pure: polling moves no counters and draws no randomness.
  const FaultInjectionStats stats = storage.stats();
  EXPECT_EQ(stats.read_ops, 0u);
  EXPECT_EQ(stats.write_ops, 0u);
  EXPECT_EQ(stats.injected_slow_ops, 0u);
  EXPECT_DOUBLE_EQ(stats.injected_latency_ms, 0.0);
}

TEST(FaultInjectingStorageConcurrencyTest, ThreadSafeUnderParallelOps) {
  FaultInjectionParams params;
  params.read_error_rate = 0.5;
  params.latency_spike_rate = 0.5;
  FaultInjectingStorage storage(StoreWithObjects(), params);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&storage, &failures] {
      for (int i = 0; i < 500; ++i) {
        if (!storage.Read("a/x").ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const FaultInjectionStats stats = storage.stats();
  EXPECT_EQ(stats.read_ops, 2000u);
  EXPECT_EQ(stats.injected_read_errors, static_cast<uint64_t>(failures.load()));
}

}  // namespace
}  // namespace pixels
