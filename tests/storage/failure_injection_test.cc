// Failure injection: a Storage decorator that fails deterministically
// lets us verify that every layer above surfaces IO errors as Status
// instead of crashing or silently truncating.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "format/footer_cache.h"
#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "turbo/coordinator.h"

namespace pixels {
namespace {

/// Fails every `failure_period`-th operation (1 = always fail), counting
/// reads and writes separately.
class FlakyStorage : public Storage {
 public:
  FlakyStorage(std::shared_ptr<Storage> inner, int read_failure_period,
               int write_failure_period)
      : inner_(std::move(inner)),
        read_period_(read_failure_period),
        write_period_(write_failure_period) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override {
    PIXELS_RETURN_NOT_OK(MaybeFailRead());
    return inner_->Read(path);
  }
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override {
    PIXELS_RETURN_NOT_OK(MaybeFailRead());
    return inner_->ReadRange(path, offset, length);
  }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override {
    PIXELS_RETURN_NOT_OK(MaybeFailWrite());
    return inner_->Write(path, data);
  }
  Result<uint64_t> Size(const std::string& path) override {
    PIXELS_RETURN_NOT_OK(MaybeFailRead());
    return inner_->Size(path);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return inner_->List(prefix);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  bool Exists(const std::string& path) override { return inner_->Exists(path); }

  int reads_attempted() const { return reads_; }

 private:
  Status MaybeFailRead() {
    ++reads_;
    if (read_period_ > 0 && reads_ % read_period_ == 0) {
      return Status::IOError("injected read failure #" + std::to_string(reads_));
    }
    return Status::OK();
  }
  Status MaybeFailWrite() {
    ++writes_;
    if (write_period_ > 0 && writes_ % write_period_ == 0) {
      return Status::IOError("injected write failure #" +
                             std::to_string(writes_));
    }
    return Status::OK();
  }

  std::shared_ptr<Storage> inner_;
  int read_period_;
  int write_period_;
  int reads_ = 0;
  int writes_ = 0;
};

FileSchema SimpleSchema() {
  return {{"id", TypeId::kInt64}, {"v", TypeId::kDouble}};
}

Status WriteRows(Storage* storage, const std::string& path, int rows) {
  PixelsWriter writer(SimpleSchema());
  for (int i = 0; i < rows; ++i) {
    PIXELS_RETURN_NOT_OK(
        writer.AppendRow({Value::Int(i), Value::Double(i * 0.5)}));
  }
  return writer.Finish(storage, path);
}

TEST(FailureInjectionTest, WriterSurfacesWriteFailure) {
  auto flaky = std::make_shared<FlakyStorage>(std::make_shared<MemoryStore>(),
                                              0, 1);  // every write fails
  Status st = WriteRows(flaky.get(), "t.pxl", 10);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("injected"), std::string::npos);
}

TEST(FailureInjectionTest, ReaderOpenSurfacesReadFailure) {
  auto inner = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteRows(inner.get(), "t.pxl", 10).ok());
  auto flaky = std::make_shared<FlakyStorage>(inner, 1, 0);  // reads fail
  EXPECT_TRUE(PixelsReader::Open(flaky.get(), "t.pxl").status().IsIOError());
}

TEST(FailureInjectionTest, ScanFailsMidwayWithoutCrash) {
  auto inner = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteRows(inner.get(), "t.pxl", 5000).ok());
  // This test counts storage ops, so start from a cold footer cache.
  FooterCache::Shared()->Clear();
  // Let Open succeed (2 ops: size + tail read covering trailer+footer),
  // then fail on the first chunk read.
  auto flaky = std::make_shared<FlakyStorage>(inner, 3, 0);
  auto reader = PixelsReader::Open(flaky.get(), "t.pxl");
  ASSERT_TRUE(reader.ok());
  auto batches = (*reader)->Scan(ScanOptions{});
  EXPECT_TRUE(batches.status().IsIOError());
}

TEST(FailureInjectionTest, QueryThroughEngineSurfacesError) {
  auto inner = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteRows(inner.get(), "db/t/p0.pxl", 100).ok());
  // Catalog registration over healthy storage, query over flaky storage.
  auto flaky = std::make_shared<FlakyStorage>(inner, 7, 0);
  auto catalog = std::make_shared<Catalog>(flaky);
  ASSERT_TRUE(catalog->CreateDatabase("db").ok());
  ASSERT_TRUE(catalog->CreateTable("db", "t", SimpleSchema()).ok());
  ASSERT_TRUE(catalog->AddTableFile("db", "t", "db/t/p0.pxl").ok());
  // Repeated queries eventually hit the injected failure; all failures
  // surface as Status, never a crash or a wrong result.
  int failures = 0, successes = 0;
  for (int i = 0; i < 20; ++i) {
    ExecContext ctx;
    ctx.catalog = catalog.get();
    auto result = ExecuteQuery("SELECT count(*) AS n FROM t", "db", &ctx);
    if (result.ok()) {
      ++successes;
      EXPECT_EQ((*result)->CollectColumn("n")[0].i, 100);
    } else {
      ++failures;
      EXPECT_TRUE(result.status().IsIOError());
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

TEST(FailureInjectionTest, CoordinatorMarksQueryFailed) {
  auto inner = std::make_shared<MemoryStore>();
  ASSERT_TRUE(WriteRows(inner.get(), "db/t/p0.pxl", 100).ok());
  // Fail every 9th read: registration can succeed (with retries), but a
  // stream of queries is guaranteed to trip the fault eventually.
  auto flaky = std::make_shared<FlakyStorage>(inner, 9, 0);
  auto flaky_catalog = std::make_shared<Catalog>(flaky);
  ASSERT_TRUE(flaky_catalog->CreateDatabase("db").ok());
  ASSERT_TRUE(flaky_catalog->CreateTable("db", "t", SimpleSchema()).ok());
  Status add;
  for (int i = 0; i < 8; ++i) {
    add = flaky_catalog->AddTableFile("db", "t", "db/t/p0.pxl");
    if (add.ok()) break;
  }
  ASSERT_TRUE(add.ok()) << add.ToString();

  SimClock clock;
  Random rng(42);
  CoordinatorParams params;
  Coordinator coordinator(&clock, &rng, params, flaky_catalog);
  QuerySpec spec;
  spec.sql = "SELECT count(*) FROM t";
  spec.db = "db";
  spec.execute_real = true;
  // Submit until one query trips the injected failure.
  bool saw_failure = false;
  for (int i = 0; i < 10 && !saw_failure; ++i) {
    int64_t id = coordinator.Submit(spec);
    clock.RunAll();
    const QueryRecord* rec = coordinator.GetQuery(id);
    if (rec->state == QueryState::kFailed) {
      saw_failure = true;
      EXPECT_NE(rec->error.find("IOError"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_failure);
}

}  // namespace
}  // namespace pixels
