// Conformance suite run against every Storage backend: ReadRanges must
// return exactly the requested bytes per range regardless of how the
// backend coalesces, and out-of-bounds requests must fail cleanly.
#include <gtest/gtest.h>

#include <numeric>

#include "storage/local_fs.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"

namespace pixels {
namespace {

struct BackendFactory {
  std::string name;
  std::function<std::shared_ptr<Storage>()> make;
};

class StorageConformanceTest
    : public ::testing::TestWithParam<BackendFactory> {
 protected:
  void SetUp() override { storage_ = GetParam().make(); }

  std::shared_ptr<Storage> storage_;
};

std::vector<uint8_t> Pattern(size_t n) {
  std::vector<uint8_t> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint8_t>(i % 251);
  return data;
}

TEST_P(StorageConformanceTest, ReadRangesSlicesExactly) {
  const auto data = Pattern(10'000);
  ASSERT_TRUE(storage_->Write("obj", data).ok());
  // Unsorted, overlapping, adjacent, and distant ranges in one call.
  std::vector<ByteRange> ranges = {
      {9'000, 500}, {0, 100}, {100, 100}, {50, 200}, {4'000, 1}};
  auto result = storage_->ReadRanges("obj", ranges);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    const auto expect = std::vector<uint8_t>(
        data.begin() + static_cast<ptrdiff_t>(ranges[i].offset),
        data.begin() +
            static_cast<ptrdiff_t>(ranges[i].offset + ranges[i].length));
    EXPECT_EQ((*result)[i], expect) << "range " << i;
  }
}

TEST_P(StorageConformanceTest, ReadRangesMatchesIndividualReadRange) {
  const auto data = Pattern(5'000);
  ASSERT_TRUE(storage_->Write("obj", data).ok());
  std::vector<ByteRange> ranges = {{0, 512}, {600, 512}, {4'000, 1'000}};
  // Sweep gap tolerances: slicing must be invariant to the fetch plan.
  for (uint64_t gap : {uint64_t{0}, uint64_t{100}, uint64_t{1'000'000}}) {
    auto multi = storage_->ReadRanges("obj", ranges, gap);
    ASSERT_TRUE(multi.ok());
    for (size_t i = 0; i < ranges.size(); ++i) {
      auto single =
          storage_->ReadRange("obj", ranges[i].offset, ranges[i].length);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ((*multi)[i], *single) << "gap " << gap << " range " << i;
    }
  }
}

TEST_P(StorageConformanceTest, ReadRangesEmptyInputAndEmptyRanges) {
  ASSERT_TRUE(storage_->Write("obj", Pattern(100)).ok());
  auto none = storage_->ReadRanges("obj", {});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto zero = storage_->ReadRanges("obj", {{10, 0}, {20, 5}});
  ASSERT_TRUE(zero.ok());
  ASSERT_EQ(zero->size(), 2u);
  EXPECT_TRUE((*zero)[0].empty());
  EXPECT_EQ((*zero)[1].size(), 5u);
}

TEST_P(StorageConformanceTest, ReadRangesOutOfBoundsFails) {
  ASSERT_TRUE(storage_->Write("obj", Pattern(100)).ok());
  EXPECT_FALSE(storage_->ReadRanges("obj", {{90, 20}}).ok());
  EXPECT_FALSE(storage_->ReadRanges("obj", {{0, 10}, {200, 1}}).ok());
  EXPECT_FALSE(storage_->ReadRanges("missing", {{0, 1}}).ok());
}

TEST_P(StorageConformanceTest, CoalescedFetchNeverChangesContent) {
  const auto data = Pattern(8'192);
  ASSERT_TRUE(storage_->Write("obj", data).ok());
  // Many small ranges with sub-tolerance gaps: one backend GET, N slices.
  std::vector<ByteRange> ranges;
  for (uint64_t off = 0; off + 64 <= data.size(); off += 256) {
    ranges.push_back({off, 64});
  }
  auto result = storage_->ReadRanges("obj", ranges, /*coalesce_gap_bytes=*/512);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_EQ((*result)[i].size(), 64u);
    EXPECT_EQ((*result)[i][0],
              static_cast<uint8_t>(ranges[i].offset % 251));
  }
}

std::vector<BackendFactory> Backends() {
  return {
      {"MemoryStore",
       [] { return std::make_shared<MemoryStore>(); }},
      {"ObjectStore",
       [] {
         return std::make_shared<ObjectStore>(std::make_shared<MemoryStore>());
       }},
      {"LocalFs",
       []() -> std::shared_ptr<Storage> {
         static int dir_seq = 0;
         auto root = std::filesystem::temp_directory_path() /
                     ("pixels_conformance_" + std::to_string(::getpid()) +
                      "_" + std::to_string(dir_seq++));
         auto fs = LocalFs::Open(root.string());
         return std::shared_ptr<Storage>(std::move(*fs));
       }},
  };
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageConformanceTest,
                         ::testing::ValuesIn(Backends()),
                         [](const ::testing::TestParamInfo<BackendFactory>& i) {
                           return i.param.name;
                         });

}  // namespace
}  // namespace pixels
