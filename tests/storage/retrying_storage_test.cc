// RetryingStorage: recovery from transient faults, permanent-error
// passthrough, budget exhaustion, backoff growth, and the ObjectStore
// stats merge.
#include "storage/retrying_storage.h"

#include <gtest/gtest.h>

#include <thread>

#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"

namespace pixels {
namespace {

std::shared_ptr<MemoryStore> StoreWithObject() {
  auto store = std::make_shared<MemoryStore>();
  EXPECT_TRUE(store->Write("db/t/part0", std::vector<uint8_t>(128, 9)).ok());
  return store;
}

FaultInjectionParams FailFirstReads(int n) {
  FaultInjectionParams params;
  FaultRule rule;
  rule.fail_first_reads = n;  // empty substring: matches every path
  params.rules.push_back(rule);
  return params;
}

TEST(RetryPolicyTest, ClassifiesTransientVsPermanent) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::IOError("flaky")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Timeout("slow")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("throttle")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("gone")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Corruption("bad bytes")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("bad arg")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 50.0;
  policy.jitter_fraction = 0;  // deterministic for this test
  Random rng(1);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, &rng), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, &rng), 20.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3, &rng), 40.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4, &rng), 50.0);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffMs(10, &rng), 50.0);
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.jitter_fraction = 0.2;
  Random rng(42);
  for (int i = 0; i < 100; ++i) {
    const double ms = policy.BackoffMs(1, &rng);
    EXPECT_GE(ms, 80.0);
    EXPECT_LE(ms, 120.0);
  }
}

TEST(RetryingStorageTest, RecoversFromTransientFaults) {
  // Two injected failures, budget of 4 attempts: the op succeeds.
  auto faulty = std::make_shared<FaultInjectingStorage>(StoreWithObject(),
                                                        FailFirstReads(2));
  RetryingStorage storage(faulty);
  auto r = storage.Read("db/t/part0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 128u);

  const RetryStats stats = storage.stats();
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.recovered_ops, 1u);
  EXPECT_EQ(stats.exhausted_ops, 0u);
  EXPECT_EQ(stats.permanent_errors, 0u);
  EXPECT_GT(stats.backoff_simulated_ms, 0.0);
}

TEST(RetryingStorageTest, ExhaustsBudgetOnPersistentTransientFault) {
  auto faulty = std::make_shared<FaultInjectingStorage>(StoreWithObject(),
                                                        FailFirstReads(100));
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingStorage storage(faulty, policy);
  auto r = storage.Read("db/t/part0");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());

  const RetryStats stats = storage.stats();
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted_ops, 1u);
  EXPECT_EQ(stats.recovered_ops, 0u);
  EXPECT_EQ(faulty->stats().read_ops, 3u);  // inner saw every attempt
}

TEST(RetryingStorageTest, PermanentErrorsAreNotRetried) {
  RetryingStorage storage(std::make_shared<MemoryStore>());
  auto r = storage.Read("missing/object");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());

  const RetryStats stats = storage.stats();
  EXPECT_EQ(stats.operations, 1u);
  EXPECT_EQ(stats.attempts, 1u);  // exactly one attempt: no retry
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.permanent_errors, 1u);
  EXPECT_DOUBLE_EQ(stats.backoff_simulated_ms, 0.0);
}

TEST(RetryingStorageTest, NoFaultsMeansZeroRetryCounters) {
  RetryingStorage storage(StoreWithObject());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(storage.Read("db/t/part0").ok());
    ASSERT_TRUE(storage.ReadRange("db/t/part0", 0, 16).ok());
    ASSERT_TRUE(storage.Size("db/t/part0").ok());
  }
  const RetryStats stats = storage.stats();
  EXPECT_EQ(stats.operations, 30u);
  EXPECT_EQ(stats.attempts, 30u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.recovered_ops, 0u);
  EXPECT_EQ(stats.exhausted_ops, 0u);
  EXPECT_DOUBLE_EQ(stats.backoff_simulated_ms, 0.0);
}

TEST(RetryingStorageTest, WriteAndDeleteRetryToo) {
  FaultInjectionParams params;
  FaultRule rule;
  rule.fail_first_writes = 1;
  params.rules.push_back(rule);
  auto faulty =
      std::make_shared<FaultInjectingStorage>(StoreWithObject(), params);
  RetryingStorage storage(faulty);
  ASSERT_TRUE(storage.Write("db/t/new", {1, 2, 3}).ok());
  EXPECT_EQ(storage.stats().recovered_ops, 1u);
  ASSERT_TRUE(storage.Delete("db/t/new").ok());
}

TEST(RetryingStorageTest, RetriedReadReturnsByteIdenticalData) {
  auto plain = StoreWithObject();
  auto expected = plain->Read("db/t/part0");
  ASSERT_TRUE(expected.ok());

  auto faulty = std::make_shared<FaultInjectingStorage>(StoreWithObject(),
                                                        FailFirstReads(2));
  RetryingStorage storage(faulty);
  auto got = storage.Read("db/t/part0");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *expected);
}

TEST(RetryingStorageTest, ObjectStoreCountsRetriedRequestOnce) {
  // Full stack: ObjectStore(RetryingStorage(FaultInjectingStorage(mem))).
  // A GET that needed 3 attempts is one request — billing inputs are
  // retry-oblivious.
  auto faulty = std::make_shared<FaultInjectingStorage>(StoreWithObject(),
                                                        FailFirstReads(2));
  auto retrying = std::make_shared<RetryingStorage>(faulty);
  ObjectStore store(retrying);
  auto r = store.Read("db/t/part0");
  ASSERT_TRUE(r.ok());

  const ObjectStoreStats stats = store.stats();
  EXPECT_EQ(stats.get_requests, 1u);
  EXPECT_EQ(stats.bytes_read, 128u);
  // ... while the retry counters surface through the same snapshot.
  EXPECT_EQ(stats.retry_attempts, 2u);
  EXPECT_EQ(stats.retry_recovered, 1u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
  EXPECT_GT(stats.retry_backoff_ms, 0.0);
}

TEST(RetryingStorageTest, ObjectStoreStatsZeroWithoutRetryingInner) {
  ObjectStore store(StoreWithObject());
  ASSERT_TRUE(store.Read("db/t/part0").ok());
  const ObjectStoreStats stats = store.stats();
  EXPECT_EQ(stats.retry_attempts, 0u);
  EXPECT_EQ(stats.retry_recovered, 0u);
  EXPECT_EQ(stats.retry_exhausted, 0u);
  EXPECT_DOUBLE_EQ(stats.retry_backoff_ms, 0.0);
}

TEST(RetryingStorageConcurrencyTest, ConcurrentOpsKeepCountersConsistent) {
  FaultInjectionParams params;
  params.read_error_rate = 0.3;
  auto faulty =
      std::make_shared<FaultInjectingStorage>(StoreWithObject(), params);
  RetryPolicy policy;
  policy.max_attempts = 8;  // high budget: 0.3^8 residual failure chance
  RetryingStorage storage(faulty, policy);
  std::vector<std::thread> threads;
  std::atomic<int> ok_ops{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&storage, &ok_ops] {
      for (int i = 0; i < 250; ++i) {
        if (storage.Read("db/t/part0").ok()) ok_ops.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const RetryStats stats = storage.stats();
  EXPECT_EQ(stats.operations, 1000u);
  EXPECT_EQ(stats.permanent_errors, 0u);  // only IOErrors were injected
  // Attempts reconcile: every op took >= 1 attempt and retries are the
  // overflow beyond the first.
  EXPECT_EQ(stats.attempts, stats.operations + stats.retries);
  EXPECT_EQ(static_cast<uint64_t>(ok_ops.load()),
            stats.operations - stats.exhausted_ops);
}

}  // namespace
}  // namespace pixels
