#include "storage/read_coalescer.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(ReadCoalescerTest, EmptyInputProducesEmptyPlan) {
  CoalescePlan plan = CoalesceRanges({}, 1024);
  EXPECT_TRUE(plan.merged.empty());
  EXPECT_TRUE(plan.slices.empty());
  EXPECT_EQ(plan.gap_bytes, 0u);
}

TEST(ReadCoalescerTest, SingleRangePassesThrough) {
  CoalescePlan plan = CoalesceRanges({{100, 50}}, 1024);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0], (ByteRange{100, 50}));
  EXPECT_EQ(plan.slices[0].merged_index, 0u);
  EXPECT_EQ(plan.slices[0].offset_in_merged, 0u);
  EXPECT_EQ(plan.ranges_served[0], 1u);
  EXPECT_EQ(plan.gap_bytes, 0u);
}

TEST(ReadCoalescerTest, AdjacentRangesMergeWithZeroGap) {
  CoalescePlan plan = CoalesceRanges({{0, 10}, {10, 10}}, 0);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0], (ByteRange{0, 20}));
  EXPECT_EQ(plan.ranges_served[0], 2u);
  EXPECT_EQ(plan.gap_bytes, 0u);
}

TEST(ReadCoalescerTest, GapWithinToleranceMergesAndCountsGapBytes) {
  CoalescePlan plan = CoalesceRanges({{0, 10}, {15, 10}}, 5);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0], (ByteRange{0, 25}));
  EXPECT_EQ(plan.gap_bytes, 5u);
  EXPECT_EQ(plan.slices[1].offset_in_merged, 15u);
}

TEST(ReadCoalescerTest, GapAboveToleranceStaysSeparate) {
  CoalescePlan plan = CoalesceRanges({{0, 10}, {16, 10}}, 5);
  ASSERT_EQ(plan.merged.size(), 2u);
  EXPECT_EQ(plan.gap_bytes, 0u);
  EXPECT_EQ(plan.slices[1].merged_index, 1u);
  EXPECT_EQ(plan.slices[1].offset_in_merged, 0u);
}

TEST(ReadCoalescerTest, UnsortedInputKeepsOriginalSliceOrder) {
  CoalescePlan plan = CoalesceRanges({{100, 10}, {0, 10}}, 0);
  ASSERT_EQ(plan.merged.size(), 2u);
  // merged is sorted, slices stay in input order.
  EXPECT_EQ(plan.merged[0], (ByteRange{0, 10}));
  EXPECT_EQ(plan.merged[1], (ByteRange{100, 10}));
  EXPECT_EQ(plan.slices[0].merged_index, 1u);
  EXPECT_EQ(plan.slices[1].merged_index, 0u);
}

TEST(ReadCoalescerTest, OverlappingRangesAlwaysMerge) {
  CoalescePlan plan = CoalesceRanges({{0, 20}, {10, 20}}, 0);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0], (ByteRange{0, 30}));
  // Overlap is not a gap: every merged byte was asked for.
  EXPECT_EQ(plan.gap_bytes, 0u);
  EXPECT_EQ(plan.slices[1].offset_in_merged, 10u);
}

TEST(ReadCoalescerTest, ContainedRangeAddsNoBytes) {
  CoalescePlan plan = CoalesceRanges({{0, 100}, {20, 10}}, 0);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0], (ByteRange{0, 100}));
  EXPECT_EQ(plan.gap_bytes, 0u);
}

TEST(ReadCoalescerTest, ZeroLengthRangesAreNeverFetched) {
  CoalescePlan plan = CoalesceRanges({{0, 10}, {5, 0}, {50, 0}}, 0);
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.slices[1].merged_index, CoalescePlan::kEmptyRange);
  EXPECT_EQ(plan.slices[2].merged_index, CoalescePlan::kEmptyRange);
}

TEST(ReadCoalescerTest, GapBytesAccumulateAcrossMergedRanges) {
  // Two merged clusters, each bridging one 4-byte gap.
  CoalescePlan plan =
      CoalesceRanges({{0, 8}, {12, 8}, {1000, 8}, {1012, 8}}, 4);
  ASSERT_EQ(plan.merged.size(), 2u);
  EXPECT_EQ(plan.gap_bytes, 8u);
  EXPECT_EQ(plan.ranges_served[0], 2u);
  EXPECT_EQ(plan.ranges_served[1], 2u);
}

TEST(ReadCoalescerTest, SliceCoalescedReturnsExactBytes) {
  std::vector<ByteRange> ranges = {{4, 3}, {0, 2}, {9, 0}};
  CoalescePlan plan = CoalesceRanges(ranges, 256);
  ASSERT_EQ(plan.merged.size(), 1u);
  // Merged read covers [0, 7): bytes 0..6.
  std::vector<std::vector<uint8_t>> merged = {{0, 1, 2, 3, 4, 5, 6}};
  auto sliced = SliceCoalesced(plan, merged, ranges);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ((*sliced)[0], (std::vector<uint8_t>{4, 5, 6}));
  EXPECT_EQ((*sliced)[1], (std::vector<uint8_t>{0, 1}));
  EXPECT_TRUE((*sliced)[2].empty());
}

TEST(ReadCoalescerTest, SliceCoalescedRejectsWrongBufferShape) {
  std::vector<ByteRange> ranges = {{0, 4}};
  CoalescePlan plan = CoalesceRanges(ranges, 0);
  std::vector<std::vector<uint8_t>> short_buf = {{1, 2}};
  EXPECT_FALSE(SliceCoalesced(plan, short_buf, ranges).ok());
  EXPECT_FALSE(SliceCoalesced(plan, {}, ranges).ok());
}

}  // namespace
}  // namespace pixels
