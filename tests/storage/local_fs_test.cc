#include "storage/local_fs.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace pixels {
namespace {

class LocalFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("pixels_fs_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    auto fs = LocalFs::Open(root_.string());
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).ValueOrDie();
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  static std::vector<uint8_t> Bytes(const std::string& s) {
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  std::filesystem::path root_;
  std::unique_ptr<LocalFs> fs_;
};

TEST_F(LocalFsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs_->Write("dir/file.bin", Bytes("payload")).ok());
  auto r = fs_->Read("dir/file.bin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->begin(), r->end()), "payload");
}

TEST_F(LocalFsTest, CreatesNestedDirectories) {
  ASSERT_TRUE(fs_->Write("a/b/c/d.txt", Bytes("x")).ok());
  EXPECT_TRUE(fs_->Exists("a/b/c/d.txt"));
}

TEST_F(LocalFsTest, ReadRange) {
  ASSERT_TRUE(fs_->Write("f", Bytes("0123456789")).ok());
  auto r = fs_->ReadRange("f", 3, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->begin(), r->end()), "3456");
  EXPECT_TRUE(fs_->ReadRange("f", 8, 5).status().IsInvalidArgument());
}

TEST_F(LocalFsTest, SizeAndMissing) {
  ASSERT_TRUE(fs_->Write("f", Bytes("12345")).ok());
  EXPECT_EQ(*fs_->Size("f"), 5u);
  EXPECT_TRUE(fs_->Size("missing").status().IsNotFound());
  EXPECT_TRUE(fs_->Read("missing").status().IsNotFound());
}

TEST_F(LocalFsTest, ListByPrefix) {
  ASSERT_TRUE(fs_->Write("t/p1.pxl", Bytes("1")).ok());
  ASSERT_TRUE(fs_->Write("t/p2.pxl", Bytes("2")).ok());
  ASSERT_TRUE(fs_->Write("other/x", Bytes("3")).ok());
  auto r = fs_->List("t/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"t/p1.pxl", "t/p2.pxl"}));
}

TEST_F(LocalFsTest, DeleteFile) {
  ASSERT_TRUE(fs_->Write("f", Bytes("x")).ok());
  ASSERT_TRUE(fs_->Delete("f").ok());
  EXPECT_FALSE(fs_->Exists("f"));
  EXPECT_TRUE(fs_->Delete("f").IsNotFound());
}

TEST_F(LocalFsTest, RejectsPathEscape) {
  EXPECT_TRUE(fs_->Write("../escape", Bytes("x")).IsInvalidArgument());
  EXPECT_TRUE(fs_->Read("a/../../escape").status().IsInvalidArgument());
  EXPECT_TRUE(fs_->Write("", Bytes("x")).IsInvalidArgument());
}

TEST_F(LocalFsTest, EmptyFile) {
  ASSERT_TRUE(fs_->Write("empty", {}).ok());
  EXPECT_EQ(*fs_->Size("empty"), 0u);
  EXPECT_TRUE(fs_->Read("empty")->empty());
}

TEST_F(LocalFsTest, StringHelpers) {
  ASSERT_TRUE(WriteString(fs_.get(), "s.txt", "text content").ok());
  auto r = ReadString(fs_.get(), "s.txt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "text content");
}

}  // namespace
}  // namespace pixels
