#include "storage/buffer_cache.h"

#include <gtest/gtest.h>

#include <thread>

#include "format/writer.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

BufferCache::Buffer MakeBuf(size_t n, uint8_t fill = 0xab) {
  return std::make_shared<const std::vector<uint8_t>>(n, fill);
}

TEST(BufferCacheTest, GetMissThenHit) {
  MemoryStore storage;
  BufferCache cache(1 << 20, /*num_shards=*/1);
  EXPECT_EQ(cache.Get(&storage, "a", 0, 100), nullptr);
  cache.Put(&storage, "a", 0, 100, MakeBuf(100));
  auto hit = cache.Get(&storage, "a", 0, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 100u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(BufferCacheTest, KeyIncludesStorageOffsetAndLength) {
  MemoryStore s1, s2;
  BufferCache cache(1 << 20, 1);
  cache.Put(&s1, "a", 0, 100, MakeBuf(100, 1));
  EXPECT_EQ(cache.Get(&s2, "a", 0, 100), nullptr);  // other storage
  EXPECT_EQ(cache.Get(&s1, "a", 100, 100), nullptr);  // other offset
  EXPECT_EQ(cache.Get(&s1, "a", 0, 50), nullptr);  // other length
  EXPECT_NE(cache.Get(&s1, "a", 0, 100), nullptr);
}

TEST(BufferCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  MemoryStore storage;
  // Room for ~3 1-KiB entries (charge = data + path + 64B overhead).
  BufferCache cache(3 * 1100, /*num_shards=*/1);
  cache.Put(&storage, "a", 0, 1024, MakeBuf(1024));
  cache.Put(&storage, "b", 0, 1024, MakeBuf(1024));
  cache.Put(&storage, "c", 0, 1024, MakeBuf(1024));
  // Touch "a" so "b" is the LRU victim of the next insert.
  ASSERT_NE(cache.Get(&storage, "a", 0, 1024), nullptr);
  cache.Put(&storage, "d", 0, 1024, MakeBuf(1024));
  EXPECT_NE(cache.Get(&storage, "a", 0, 1024), nullptr);
  EXPECT_EQ(cache.Get(&storage, "b", 0, 1024), nullptr);
  EXPECT_NE(cache.Get(&storage, "d", 0, 1024), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes_cached, cache.capacity_bytes());
}

TEST(BufferCacheTest, OversizedEntryIsNotCached) {
  MemoryStore storage;
  BufferCache cache(1024, /*num_shards=*/4);  // 256 bytes per shard
  cache.Put(&storage, "big", 0, 512, MakeBuf(512));
  EXPECT_EQ(cache.Get(&storage, "big", 0, 512), nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(BufferCacheTest, DuplicatePutKeepsOneCopy) {
  MemoryStore storage;
  BufferCache cache(1 << 20, 1);
  cache.Put(&storage, "a", 0, 100, MakeBuf(100, 1));
  cache.Put(&storage, "a", 0, 100, MakeBuf(100, 2));
  EXPECT_EQ(cache.stats().entries, 1u);
  // First writer wins; the racing duplicate is dropped.
  EXPECT_EQ((*cache.Get(&storage, "a", 0, 100))[0], 1);
}

TEST(BufferCacheTest, EraseObjectDropsAllItsChunks) {
  MemoryStore storage;
  BufferCache cache(1 << 20, 4);
  for (uint64_t off = 0; off < 16 * 1024; off += 1024) {
    cache.Put(&storage, "obj", off, 1024, MakeBuf(1024));
    cache.Put(&storage, "other", off, 1024, MakeBuf(1024));
  }
  cache.EraseObject(&storage, "obj");
  EXPECT_EQ(cache.Get(&storage, "obj", 0, 1024), nullptr);
  EXPECT_NE(cache.Get(&storage, "other", 0, 1024), nullptr);
}

TEST(BufferCacheTest, WriterFinishInvalidatesEveryLiveCache) {
  auto storage = std::make_shared<MemoryStore>();
  BufferCache cache_a(1 << 20), cache_b(1 << 20);
  cache_a.Put(storage.get(), "t.pxl", 0, 64, MakeBuf(64));
  cache_b.Put(storage.get(), "t.pxl", 0, 64, MakeBuf(64));

  PixelsWriter writer({{"id", TypeId::kInt64}});
  ASSERT_TRUE(writer.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(writer.Finish(storage.get(), "t.pxl").ok());

  // Overwriting t.pxl dropped its chunks from both registered caches.
  EXPECT_EQ(cache_a.Get(storage.get(), "t.pxl", 0, 64), nullptr);
  EXPECT_EQ(cache_b.Get(storage.get(), "t.pxl", 0, 64), nullptr);
}

TEST(BufferCacheTest, ConcurrentMixedOperationsStayConsistent) {
  MemoryStore storage;
  BufferCache cache(64 * 1024, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &storage, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t off = static_cast<uint64_t>((t * 7 + i) % 64) * 512;
        auto hit = cache.Get(&storage, "obj", off, 512);
        if (hit != nullptr) {
          // Content must always match what some thread inserted.
          ASSERT_EQ(hit->size(), 512u);
          ASSERT_EQ((*hit)[0], static_cast<uint8_t>(off / 512));
        } else {
          cache.Put(&storage, "obj", off, 512,
                    MakeBuf(512, static_cast<uint8_t>(off / 512)));
        }
        if (i % 257 == 0) cache.EraseObject(&storage, "obj");
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes_cached, cache.capacity_bytes());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace pixels
