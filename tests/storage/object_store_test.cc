#include "storage/object_store.h"

#include <gtest/gtest.h>

#include "storage/memory_store.h"

namespace pixels {
namespace {

std::vector<uint8_t> Bytes(size_t n) { return std::vector<uint8_t>(n, 0x5a); }

TEST(ObjectStoreTest, ForwardsToInner) {
  auto inner = std::make_shared<MemoryStore>();
  ObjectStore store(inner);
  ASSERT_TRUE(store.Write("k", Bytes(10)).ok());
  EXPECT_TRUE(inner->Exists("k"));
  EXPECT_EQ(store.Read("k")->size(), 10u);
  EXPECT_EQ(*store.Size("k"), 10u);
  EXPECT_EQ(store.List("")->size(), 1u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
}

TEST(ObjectStoreTest, CountsRequestsAndBytes) {
  ObjectStore store(std::make_shared<MemoryStore>());
  ASSERT_TRUE(store.Write("k", Bytes(1000)).ok());
  ASSERT_TRUE(store.Read("k").ok());
  ASSERT_TRUE(store.ReadRange("k", 0, 500).ok());
  const auto& stats = store.stats();
  EXPECT_EQ(stats.put_requests, 1u);
  EXPECT_EQ(stats.get_requests, 2u);
  EXPECT_EQ(stats.bytes_written, 1000u);
  EXPECT_EQ(stats.bytes_read, 1500u);
}

TEST(ObjectStoreTest, FailedReadsNotCounted) {
  ObjectStore store(std::make_shared<MemoryStore>());
  EXPECT_FALSE(store.Read("missing").ok());
  EXPECT_EQ(store.stats().get_requests, 0u);
}

TEST(ObjectStoreTest, LatencyModelScalesWithBytes) {
  ObjectStoreParams params;
  params.first_byte_latency_ms = 10;
  params.bandwidth_mbps = 100;  // 100 MB/s
  ObjectStore store(std::make_shared<MemoryStore>(), params);
  // 100 MB at 100 MB/s = 1000 ms transfer + 10 ms first byte.
  EXPECT_NEAR(store.EstimateReadLatencyMs(100'000'000), 1010.0, 1e-6);
  EXPECT_NEAR(store.EstimateReadLatencyMs(0), 10.0, 1e-6);
}

TEST(ObjectStoreTest, SimulatedReadTimeAccumulates) {
  ObjectStoreParams params;
  params.first_byte_latency_ms = 5;
  params.bandwidth_mbps = 1000;
  ObjectStore store(std::make_shared<MemoryStore>(), params);
  ASSERT_TRUE(store.Write("k", Bytes(1'000'000)).ok());
  ASSERT_TRUE(store.Read("k").ok());
  // 1MB at 1000 MB/s = 1 ms + 5 ms first byte.
  EXPECT_NEAR(store.stats().simulated_read_ms, 6.0, 1e-6);
}

TEST(ObjectStoreTest, RequestCostAccrues) {
  ObjectStoreParams params;
  params.get_price_per_1000 = 0.4;  // $0.0004 per GET
  params.put_price_per_1000 = 5.0;  // $0.005 per PUT
  ObjectStore store(std::make_shared<MemoryStore>(), params);
  ASSERT_TRUE(store.Write("k", Bytes(1)).ok());
  ASSERT_TRUE(store.Read("k").ok());
  EXPECT_NEAR(store.stats().request_cost_usd, 0.0054, 1e-9);
}

TEST(ObjectStoreTest, ResetStatsClearsCounters) {
  ObjectStore store(std::make_shared<MemoryStore>());
  ASSERT_TRUE(store.Write("k", Bytes(5)).ok());
  store.ResetStats();
  EXPECT_EQ(store.stats().put_requests, 0u);
  EXPECT_EQ(store.stats().bytes_written, 0u);
}

}  // namespace
}  // namespace pixels
