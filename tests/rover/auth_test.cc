#include "rover/auth.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(AuthTest, RegisterAndLogin) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "secret", {"tpch"}).ok());
  auto token = auth.Login("alice", "secret");
  ASSERT_TRUE(token.ok());
  auto user = auth.Authenticate(*token);
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(*user, "alice");
}

TEST(AuthTest, WrongPasswordRejected) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "secret", {}).ok());
  EXPECT_FALSE(auth.Login("alice", "wrong").ok());
  EXPECT_FALSE(auth.Login("nobody", "secret").ok());
  // Same message for both (no user enumeration).
  EXPECT_EQ(auth.Login("alice", "wrong").status().message(),
            auth.Login("nobody", "x").status().message());
}

TEST(AuthTest, DuplicateUserRejected) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "a", {}).ok());
  EXPECT_TRUE(auth.RegisterUser("alice", "b", {}).IsAlreadyExists());
  EXPECT_TRUE(auth.RegisterUser("", "b", {}).IsInvalidArgument());
}

TEST(AuthTest, TokensAreUniquePerLogin) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "secret", {}).ok());
  auto t1 = auth.Login("alice", "secret");
  auto t2 = auth.Login("alice", "secret");
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_NE(*t1, *t2);
  // Both sessions valid simultaneously.
  EXPECT_TRUE(auth.Authenticate(*t1).ok());
  EXPECT_TRUE(auth.Authenticate(*t2).ok());
}

TEST(AuthTest, LogoutInvalidatesToken) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "secret", {}).ok());
  auto token = auth.Login("alice", "secret");
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(auth.Logout(*token).ok());
  EXPECT_FALSE(auth.Authenticate(*token).ok());
  EXPECT_TRUE(auth.Logout(*token).IsNotFound());
}

TEST(AuthTest, InvalidTokenRejected) {
  AuthService auth;
  EXPECT_FALSE(auth.Authenticate("tok-garbage").ok());
  EXPECT_FALSE(auth.Authenticate("").ok());
}

TEST(AuthTest, DatabaseAuthorization) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("alice", "x", {"tpch", "logs"}).ok());
  ASSERT_TRUE(auth.RegisterUser("bob", "y", {"logs"}).ok());
  EXPECT_TRUE(auth.IsAuthorized("alice", "tpch"));
  EXPECT_FALSE(auth.IsAuthorized("bob", "tpch"));
  EXPECT_FALSE(auth.IsAuthorized("nobody", "tpch"));
  EXPECT_EQ(auth.AuthorizedDbs("alice"),
            (std::vector<std::string>{"logs", "tpch"}));
  EXPECT_TRUE(auth.AuthorizedDbs("nobody").empty());
}

TEST(AuthTest, GrantExtendsAccess) {
  AuthService auth;
  ASSERT_TRUE(auth.RegisterUser("bob", "y", {}).ok());
  EXPECT_FALSE(auth.IsAuthorized("bob", "tpch"));
  ASSERT_TRUE(auth.GrantDatabase("bob", "tpch").ok());
  EXPECT_TRUE(auth.IsAuthorized("bob", "tpch"));
  EXPECT_TRUE(auth.GrantDatabase("nobody", "tpch").IsNotFound());
}

}  // namespace
}  // namespace pixels
