#include "rover/backend.h"

#include <gtest/gtest.h>

#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class RoverBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions options;
    options.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());

    CoordinatorParams cparams;
    cparams.vm.initial_vms = 2;
    coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams,
                                                 catalog_);
    server_ = std::make_unique<QueryServer>(&clock_, coordinator_.get());
    codes_ = std::make_unique<CodesService>(catalog_.get());
    for (const auto& [w, t] : TpchSynonyms()) codes_->AddSynonym(w, t);
    auth_ = std::make_unique<AuthService>();
    ASSERT_TRUE(auth_->RegisterUser("analyst", "pw", {"tpch"}).ok());
    ASSERT_TRUE(auth_->RegisterUser("outsider", "pw", {}).ok());
    backend_ = std::make_unique<RoverBackend>(catalog_.get(), server_.get(),
                                              codes_.get(), auth_.get(),
                                              &clock_);
  }

  void TearDown() override {
    server_->Stop();
    coordinator_->Stop();
  }

  std::string LoginAnalyst() {
    auto token = backend_->Login("analyst", "pw");
    EXPECT_TRUE(token.ok());
    EXPECT_TRUE(backend_->SelectDatabase(*token, "tpch").ok());
    return *token;
  }

  SimClock clock_;
  Random rng_{42};
  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<CodesService> codes_;
  std::unique_ptr<AuthService> auth_;
  std::unique_ptr<RoverBackend> backend_;
};

TEST_F(RoverBackendTest, LoginRequired) {
  EXPECT_FALSE(backend_->ListSchemas("bogus").ok());
  EXPECT_FALSE(backend_->Translate("bogus", "how many orders").ok());
  EXPECT_FALSE(backend_->Submit("bogus", 0, ServiceLevel::kImmediate, 0,
                                "SELECT 1")
                   .ok());
}

TEST_F(RoverBackendTest, SchemaSidebarListsAuthorizedDbs) {
  std::string token = LoginAnalyst();
  auto schemas = backend_->ListSchemas(token);
  ASSERT_TRUE(schemas.ok());
  ASSERT_EQ(schemas->Get("databases").size(), 1u);
  EXPECT_EQ(schemas->Get("databases").At(0).Get("database").AsString(),
            "tpch");
}

TEST_F(RoverBackendTest, OutsiderSeesNoSchemas) {
  auto token = backend_->Login("outsider", "pw");
  ASSERT_TRUE(token.ok());
  auto schemas = backend_->ListSchemas(*token);
  ASSERT_TRUE(schemas.ok());
  EXPECT_EQ(schemas->Get("databases").size(), 0u);
  EXPECT_TRUE(
      backend_->SelectDatabase(*token, "tpch").IsFailedPrecondition());
}

TEST_F(RoverBackendTest, TranslateNeedsSelectedDatabase) {
  auto token = backend_->Login("analyst", "pw");
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(backend_->Translate(*token, "how many orders")
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(RoverBackendTest, TranslateReturnsSqlBlock) {
  std::string token = LoginAnalyst();
  auto t = backend_->Translate(token, "how many orders are there?");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->Get("sql").AsString(), "SELECT count(*) FROM orders");
  EXPECT_GT(t->Get("query_id").AsInt(), 0);
  // Before submission the block reports "translated".
  auto status = backend_->QueryStatus(token, t->Get("query_id").AsInt());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->Get("status").AsString(), "translated");
}

TEST_F(RoverBackendTest, EditThenSubmitAndFetchResult) {
  std::string token = LoginAnalyst();
  auto t = backend_->Translate(token, "first 3 orders");
  ASSERT_TRUE(t.ok());
  int64_t qid = t->Get("query_id").AsInt();
  ASSERT_TRUE(backend_
                  ->EditQuery(token, qid,
                              "SELECT count(*) AS n FROM orders")
                  .ok());
  auto submitted = backend_->Submit(token, qid, ServiceLevel::kImmediate);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  clock_.RunAll();
  auto status = backend_->QueryStatus(token, qid);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->Get("status").AsString(), "finished");
  EXPECT_EQ(status->Get("service_level").AsString(), "immediate");
  ASSERT_EQ(status->Get("rows").size(), 1u);
  EXPECT_EQ(status->Get("rows").At(0).At(0).AsInt(), 1500);
  EXPECT_GE(status->Get("cost_usd").AsNumber(), 0);
}

TEST_F(RoverBackendTest, EditAfterSubmitRejected) {
  std::string token = LoginAnalyst();
  auto t = backend_->Translate(token, "how many orders are there?");
  ASSERT_TRUE(t.ok());
  int64_t qid = t->Get("query_id").AsInt();
  ASSERT_TRUE(backend_->Submit(token, qid, ServiceLevel::kImmediate).ok());
  EXPECT_TRUE(backend_->EditQuery(token, qid, "SELECT 1")
                  .IsFailedPrecondition());
  EXPECT_TRUE(backend_->Submit(token, qid, ServiceLevel::kImmediate)
                  .status()
                  .IsFailedPrecondition());
  clock_.RunAll();
}

TEST_F(RoverBackendTest, RawSqlSubmission) {
  std::string token = LoginAnalyst();
  auto submitted =
      backend_->Submit(token, 0, ServiceLevel::kRelaxed, 2,
                       "SELECT o_orderkey FROM orders ORDER BY o_orderkey");
  ASSERT_TRUE(submitted.ok());
  clock_.RunAll();
  auto status = backend_->QueryStatus(token, *submitted);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->Get("status").AsString(), "finished");
  // The result-size limit from the submission form applies.
  EXPECT_EQ(status->Get("rows").size(), 2u);
}

TEST_F(RoverBackendTest, FailedQueryCarriesError) {
  std::string token = LoginAnalyst();
  auto submitted = backend_->Submit(token, 0, ServiceLevel::kImmediate, 0,
                                    "SELECT nonsense FROM orders");
  ASSERT_TRUE(submitted.ok());
  clock_.RunAll();
  auto status = backend_->QueryStatus(token, *submitted);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->Get("status").AsString(), "failed");
  EXPECT_FALSE(status->Get("error").AsString().empty());
}

TEST_F(RoverBackendTest, UsersCannotSeeEachOthersQueries) {
  std::string token = LoginAnalyst();
  auto submitted = backend_->Submit(token, 0, ServiceLevel::kImmediate, 0,
                                    "SELECT count(*) FROM orders");
  ASSERT_TRUE(submitted.ok());
  auto other = backend_->Login("outsider", "pw");
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(
      backend_->QueryStatus(*other, *submitted).status().IsNotFound());
  clock_.RunAll();
}

TEST_F(RoverBackendTest, BillingSummaryAggregatesPerUser) {
  std::string token = LoginAnalyst();
  ASSERT_TRUE(backend_
                  ->Submit(token, 0, ServiceLevel::kImmediate, 0,
                           "SELECT count(*) FROM lineitem")
                  .ok());
  ASSERT_TRUE(backend_
                  ->Submit(token, 0, ServiceLevel::kRelaxed, 0,
                           "SELECT count(*) FROM lineitem")
                  .ok());
  clock_.RunUntil(10 * kMinutes);
  auto bill = backend_->BillingSummary(token);
  ASSERT_TRUE(bill.ok());
  EXPECT_EQ(bill->Get("user").AsString(), "analyst");
  EXPECT_EQ(bill->Get("queries").AsInt(), 2);
  double immediate = bill->Get("by_level").Get("immediate").AsNumber();
  double relaxed = bill->Get("by_level").Get("relaxed").AsNumber();
  EXPECT_GT(immediate, 0);
  EXPECT_NEAR(relaxed / immediate, 0.2, 1e-9);
  EXPECT_NEAR(bill->Get("total_usd").AsNumber(), immediate + relaxed, 1e-12);
}

TEST_F(RoverBackendTest, ExplainThroughBackend) {
  std::string token = LoginAnalyst();
  auto submitted = backend_->Submit(
      token, 0, ServiceLevel::kImmediate, 0,
      "EXPLAIN SELECT count(*) FROM orders WHERE o_totalprice > 100");
  ASSERT_TRUE(submitted.ok());
  clock_.RunAll();
  auto status = backend_->QueryStatus(token, *submitted);
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status->Get("status").AsString(), "finished");
  bool has_aggregate_line = false;
  const Json& rows = status->Get("rows");
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows.At(i).At(0).AsString().find("Aggregate") != std::string::npos) {
      has_aggregate_line = true;
    }
  }
  EXPECT_TRUE(has_aggregate_line);
}

}  // namespace
}  // namespace pixels
