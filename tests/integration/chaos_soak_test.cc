// Chaos soak (the tentpole invariant of the fault-injection PR): with
// seeded transient faults at 1% / 5% / 20%, every query's results,
// scanned bytes, and bill are byte-/cent-identical to the fault-free
// run — retries are invisible everywhere except the retry counters.
// With injection disabled, the retry counters are exactly zero.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "format/footer_cache.h"
#include "server/query_server.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "testing/switchable_storage.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

struct QueryOutcome {
  std::vector<std::string> rows;  // sorted result rows
  uint64_t bytes_scanned = 0;
  double bill_usd = 0;
  QueryState state = QueryState::kPending;
};

struct SoakOutcome {
  std::vector<QueryOutcome> queries;
  double total_billed = 0;
  uint64_t retry_attempts = 0;
  uint64_t retry_recovered = 0;
  uint64_t retry_exhausted = 0;
  double storage_retries_metric = 0;
  uint64_t injected_errors = 0;
  /// Intermediate exchange objects still in storage after the soak
  /// (cf_shuffle is on for every run; the GC sweep must leave zero).
  size_t leaked_shuffle_objects = 0;
};

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r)
      rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// One full run of the server/coordinator/engine stack over TPC-H data
/// with the production storage stack
///   ObjectStore( RetryingStorage( [FaultInjectingStorage] MemoryStore ))
/// where faults at `fault_rate` switch on only after data generation.
SoakOutcome RunSoak(double fault_rate) {
  // Footer-cache keys include the storage pointer; clear so a recycled
  // allocation can never leak warm footers between runs.
  FooterCache::Shared()->Clear();

  auto mem = std::make_shared<MemoryStore>();
  auto switchable = std::make_shared<testing::SwitchableStorage>(mem);
  RetryPolicy policy;
  policy.max_attempts = 8;  // 0.2^8: exhaustion is effectively impossible
  auto retrying = std::make_shared<RetryingStorage>(switchable, policy);
  auto store = std::make_shared<ObjectStore>(retrying);
  auto catalog = std::make_shared<Catalog>(store);

  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  EXPECT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  std::shared_ptr<FaultInjectingStorage> injector;
  if (fault_rate > 0) {
    FaultInjectionParams params;
    params.seed = 7;  // fixed seed: this soak is reproducible forever
    params.read_error_rate = fault_rate;
    params.latency_spike_rate = fault_rate;
    injector = std::make_shared<FaultInjectingStorage>(mem, params);
    switchable->SetTarget(injector);
  }

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 4;
  cparams.vm.monitor_interval = 5 * kSeconds;
  // Shuffle on for the whole soak: any query that takes the CF path and
  // has an eligible join core runs the multi-stage DAG — under chaos —
  // and must stay byte-identical to the fault-free baseline.
  cparams.cf_shuffle = true;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServer server(&clock, &coordinator);

  const struct {
    const char* sql;
    ServiceLevel level;
  } kQueries[] = {
      {"SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
       "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
       ServiceLevel::kImmediate},
      {"SELECT o.o_orderpriority, count(*) AS n FROM orders o JOIN "
       "lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity < 25 "
       "GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority",
       ServiceLevel::kImmediate},
      {"SELECT l_linestatus, sum(l_quantity) AS q FROM lineitem "
       "WHERE l_discount > 0.02 GROUP BY l_linestatus ORDER BY l_linestatus",
       ServiceLevel::kRelaxed},
  };

  SoakOutcome out;
  out.queries.resize(std::size(kQueries));
  for (size_t i = 0; i < std::size(kQueries); ++i) {
    Submission s;
    s.level = kQueries[i].level;
    s.query.sql = kQueries[i].sql;
    s.query.db = "tpch";
    s.query.execute_real = true;
    server.Submit(s, [&out, i](const SubmissionRecord& srec,
                               const QueryRecord& qrec) {
      QueryOutcome& q = out.queries[i];
      q.state = qrec.state;
      q.bytes_scanned = qrec.bytes_scanned;
      q.bill_usd = srec.bill_usd;
      if (qrec.result != nullptr) q.rows = SortedRows(*qrec.result);
    });
  }
  clock.RunAll();
  server.Stop();
  coordinator.Stop();
  clock.RunAll();

  out.total_billed = server.TotalBilledUsd();
  const ObjectStoreStats stats = store->stats();
  out.retry_attempts = stats.retry_attempts;
  out.retry_recovered = stats.retry_recovered;
  out.retry_exhausted = stats.retry_exhausted;
  out.storage_retries_metric = coordinator.metrics().Counter("storage_retries");
  if (injector != nullptr) {
    out.injected_errors = injector->stats().injected_read_errors;
  }
  // No-leak scan: nothing under any ".shuffle" exchange prefix survives
  // the queries, chaos or not.
  auto all = mem->List("");
  EXPECT_TRUE(all.ok());
  if (all.ok()) {
    for (const auto& f : *all) {
      if (f.find(".shuffle/") != std::string::npos) ++out.leaked_shuffle_objects;
    }
  }
  return out;
}

void ExpectIdentical(const SoakOutcome& baseline, const SoakOutcome& chaotic,
                     double rate) {
  ASSERT_EQ(baseline.queries.size(), chaotic.queries.size());
  for (size_t i = 0; i < baseline.queries.size(); ++i) {
    SCOPED_TRACE("rate=" + std::to_string(rate) + " query=" +
                 std::to_string(i));
    EXPECT_EQ(chaotic.queries[i].state, QueryState::kFinished);
    // Byte-identical results and billing inputs...
    EXPECT_EQ(baseline.queries[i].rows, chaotic.queries[i].rows);
    EXPECT_EQ(baseline.queries[i].bytes_scanned,
              chaotic.queries[i].bytes_scanned);
    // ...and cent-identical bills (same inputs, same deterministic math).
    EXPECT_DOUBLE_EQ(baseline.queries[i].bill_usd,
                     chaotic.queries[i].bill_usd);
  }
  EXPECT_DOUBLE_EQ(baseline.total_billed, chaotic.total_billed);
  EXPECT_EQ(chaotic.leaked_shuffle_objects, 0u);
  // Every injected fault was either recovered by a retry or never blocked
  // an op (no query failed, so nothing was exhausted).
  EXPECT_EQ(chaotic.retry_exhausted, 0u);
  EXPECT_GE(chaotic.retry_attempts, chaotic.retry_recovered);
}

TEST(ChaosSoakTest, FaultRatesNeverChangeResultsOrBills) {
  const SoakOutcome baseline = RunSoak(0.0);
  for (const auto& q : baseline.queries) {
    ASSERT_EQ(q.state, QueryState::kFinished);
    ASSERT_FALSE(q.rows.empty());
    ASSERT_GT(q.bytes_scanned, 0u);
    ASSERT_GT(q.bill_usd, 0.0);
  }
  // Injection disabled: the retry counters are exactly zero.
  EXPECT_EQ(baseline.retry_attempts, 0u);
  EXPECT_EQ(baseline.retry_recovered, 0u);
  EXPECT_EQ(baseline.retry_exhausted, 0u);
  EXPECT_DOUBLE_EQ(baseline.storage_retries_metric, 0.0);
  EXPECT_EQ(baseline.leaked_shuffle_objects, 0u);

  for (double rate : {0.01, 0.05, 0.20}) {
    const SoakOutcome chaotic = RunSoak(rate);
    ExpectIdentical(baseline, chaotic, rate);
    if (rate == 0.20) {
      // At the highest rate the chaos was real: faults were injected and
      // absorbed by retries, visible in the coordinator's metrics.
      EXPECT_GT(chaotic.injected_errors, 0u);
      EXPECT_GT(chaotic.retry_attempts, 0u);
      EXPECT_GT(chaotic.retry_recovered, 0u);
      EXPECT_GT(chaotic.storage_retries_metric, 0.0);
    }
  }
}

// Forced-CF shuffle soak: the join query is pinned to the CF path (the
// single VM slot is saturated), cf_shuffle runs the DAG for every round,
// and seeded read faults hammer both the base-table scans and the
// exchange objects. Invariants: every round finishes with identical rows
// and bytes, and not one intermediate object outlives its query.
TEST(ChaosSoakTest, ShuffleUnderChaosNeverLeaksOrDiverges) {
  FooterCache::Shared()->Clear();
  auto mem = std::make_shared<MemoryStore>();
  auto switchable = std::make_shared<testing::SwitchableStorage>(mem);
  RetryPolicy policy;
  policy.max_attempts = 8;
  auto retrying = std::make_shared<RetryingStorage>(switchable, policy);
  auto store = std::make_shared<ObjectStore>(retrying);
  auto catalog = std::make_shared<Catalog>(store);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  FaultInjectionParams fparams;
  fparams.seed = 11;
  fparams.read_error_rate = 0.10;
  fparams.latency_spike_rate = 0.10;
  auto injector = std::make_shared<FaultInjectingStorage>(mem, fparams);
  switchable->SetTarget(injector);

  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 1;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 1;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.default_cf_workers = 4;
  cparams.cf_shuffle = true;
  cparams.cf_shuffle_partitions = 4;
  cparams.cf_shuffle_producer_tasks = 4;

  std::vector<std::string> first_rows;
  uint64_t first_bytes = 0;
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    SimClock clock;
    Random rng(42);
    Coordinator coord(&clock, &rng, cparams, catalog);
    QuerySpec filler;
    filler.work_vcpu_seconds = 1000.0;
    coord.Submit(filler);

    QuerySpec spec;
    spec.sql =
        "SELECT o_orderpriority, count(*) AS n FROM lineitem l JOIN orders "
        "o ON l.l_orderkey = o.o_orderkey GROUP BY o_orderpriority "
        "ORDER BY o_orderpriority";
    spec.db = "tpch";
    spec.execute_real = true;
    spec.cf_enabled = true;
    int64_t id = coord.Submit(spec);
    clock.RunAll();

    const QueryRecord* rec = coord.GetQuery(id);
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
    EXPECT_TRUE(rec->used_shuffle);
    ASSERT_NE(rec->result, nullptr);
    const auto rows = SortedRows(*rec->result);
    if (round == 0) {
      first_rows = rows;
      first_bytes = rec->bytes_scanned;
      ASSERT_FALSE(first_rows.empty());
      ASSERT_GT(first_bytes, 0u);
    } else {
      EXPECT_EQ(rows, first_rows);
      EXPECT_EQ(rec->bytes_scanned, first_bytes);
    }
    coord.Stop();
    clock.RunAll();

    auto all = mem->List("");
    ASSERT_TRUE(all.ok());
    for (const auto& f : *all) {
      EXPECT_EQ(f.find(".shuffle/"), std::string::npos) << "leaked: " << f;
    }
  }
  // The chaos was real: faults hit this workload and were absorbed.
  EXPECT_GT(injector->stats().injected_read_errors, 0u);
}

}  // namespace
}  // namespace pixels
