// Full-pipeline integration tests: the PixelsDB flow of the paper's demo
// (§4) — generate data, translate an NL question, submit at a service
// level, execute (with and without CF pushdown), and check status,
// result, and bill.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "nl2sql/codes_service.h"
#include "server/query_server.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "workload/loggen.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);

    TpchOptions topt;
    topt.scale_factor = 0.001;
    topt.rows_per_file = 2000;
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", topt).ok());
    LogGenOptions lopt;
    lopt.num_rows = 3000;
    ASSERT_TRUE(GenerateWebLogs(catalog_.get(), "logs", lopt).ok());

    CoordinatorParams cparams;
    cparams.vm.initial_vms = 1;
    cparams.vm.slots_per_vm = 2;
    cparams.vm.high_watermark = 2.0;
    cparams.vm.low_watermark = 0.75;
    cparams.vm.monitor_interval = 5 * kSeconds;
    coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams,
                                                 catalog_);
    QueryServerParams sparams;
    sparams.poll_interval = 1 * kSeconds;
    server_ = std::make_unique<QueryServer>(&clock_, coordinator_.get(),
                                            sparams);
    codes_ = std::make_unique<CodesService>(catalog_.get());
    for (const auto& [w, t] : TpchSynonyms()) codes_->AddSynonym(w, t);
    for (const auto& [w, t] : LogSynonyms()) codes_->AddSynonym(w, t);
  }

  void TearDown() override {
    server_->Stop();
    coordinator_->Stop();
  }

  SimClock clock_;
  Random rng_{42};
  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryServer> server_;
  std::unique_ptr<CodesService> codes_;
};

TEST_F(EndToEndTest, NlQuestionToBilledResult) {
  // 1. The user types a question; Pixels-Rover sends it to CodeS.
  Json request = Json::Object();
  request.Set("question", "how many orders are there?");
  request.Set("database", "tpch");
  Json response = codes_->HandleRequest(request);
  ASSERT_TRUE(response.Has("sql")) << response.Dump();

  // 2. The translated SQL is submitted at the relaxed level.
  Submission submission;
  submission.level = ServiceLevel::kRelaxed;
  submission.query.sql = response.Get("sql").AsString();
  submission.query.db = "tpch";
  submission.query.execute_real = true;
  TablePtr result;
  double bill = -1;
  int64_t id = server_->Submit(
      submission, [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
        result = qrec.result;
        bill = srec.bill_usd;
      });
  clock_.RunUntil(5 * kMinutes);

  // 3. Status, result, and statistics are available (§4.3).
  auto status = server_->GetStatus(id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, QueryState::kFinished);
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->CollectColumn("count(*)")[0].i, 1500);
  EXPECT_GT(bill, 0);
  EXPECT_GE(status->execution_ms, 0);
}

TEST_F(EndToEndTest, TpchQueriesThroughAllServiceLevels) {
  struct Pending {
    int64_t id;
    ServiceLevel level;
  };
  std::vector<Pending> submitted;
  ServiceLevel levels[] = {ServiceLevel::kImmediate, ServiceLevel::kRelaxed,
                           ServiceLevel::kBestEffort};
  int i = 0;
  for (const auto& q : TpchQuerySet()) {
    Submission s;
    s.level = levels[i++ % 3];
    s.query.sql = q.sql;
    s.query.db = "tpch";
    s.query.execute_real = true;
    submitted.push_back({server_->Submit(s), s.level});
  }
  clock_.RunUntil(60 * kMinutes);
  for (const auto& p : submitted) {
    auto status = server_->GetStatus(p.id);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, QueryState::kFinished)
        << "level " << ServiceLevelName(p.level) << ": " << status->error;
  }
  EXPECT_GT(server_->TotalBilledUsd(), 0);
}

TEST_F(EndToEndTest, CfPushdownUnderLoadProducesCorrectResults) {
  // Saturate the VM cluster with synthetic work.
  for (int i = 0; i < 2; ++i) {
    Submission filler;
    filler.level = ServiceLevel::kImmediate;
    filler.query.work_vcpu_seconds = 500.0;
    server_->Submit(filler);
  }
  // An immediate TPC-H aggregation must run via CF pushdown now.
  Submission s;
  s.level = ServiceLevel::kImmediate;
  s.query.sql =
      "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY "
      "l_returnflag ORDER BY l_returnflag";
  s.query.db = "tpch";
  s.query.execute_real = true;
  TablePtr result;
  bool used_cf = false;
  server_->Submit(s, [&](const SubmissionRecord&, const QueryRecord& qrec) {
    result = qrec.result;
    used_cf = qrec.used_cf;
  });
  clock_.RunUntil(10 * kMinutes);
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(used_cf);
  // Compare against direct execution.
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  auto direct = ExecuteQuery(s.query.sql, "tpch", &ctx);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(result->num_rows(), (*direct)->num_rows());
  auto got = result->CollectColumn("n");
  auto want = (*direct)->CollectColumn("n");
  ASSERT_EQ(got.size(), want.size());
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].i, want[k].i);
  }
  // Intermediate views landed in object storage (paper: S3).
  auto views = storage_->List("intermediate/");
  ASSERT_TRUE(views.ok());
  EXPECT_GE(views->size(), 1u);
}

TEST_F(EndToEndTest, LogAnalyticsNlFlow) {
  auto t = codes_->Translate("logs", "how many weblogs have status at least 400?");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  Submission s;
  s.level = ServiceLevel::kBestEffort;
  s.query.sql = t->sql;
  s.query.db = "logs";
  s.query.execute_real = true;
  TablePtr result;
  server_->Submit(s, [&](const SubmissionRecord&, const QueryRecord& qrec) {
    result = qrec.result;
  });
  clock_.RunUntil(5 * kMinutes);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->num_rows(), 1u);
  EXPECT_GT(result->CollectColumn("count(*)")[0].i, 0);
}

// The MV acceptance criterion: a repeated identical Immediate query is
// answered from the MV store with ZERO object-store GETs and a strictly
// lower (discounted) bill; a data write invalidates the entry and the
// next run re-bills exactly the original amount.
TEST_F(EndToEndTest, MvReuseRepeatHasZeroGetsAndDiscountedBill) {
  // Re-mount the generated data behind a GET-counting object store and
  // bring up a coordinator with the MV store enabled. The chunk cache is
  // off so any re-read would show up as GETs.
  ASSERT_TRUE(catalog_->SaveToStorage("meta/catalog.json").ok());
  auto object_store = std::make_shared<ObjectStore>(storage_);
  auto catalog = std::make_shared<Catalog>(object_store);
  ASSERT_TRUE(catalog->LoadFromStorage("meta/catalog.json").ok());

  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.chunk_cache_bytes = 0;
  cparams.mv_store_bytes = 256ULL << 20;
  Coordinator coordinator(&clock_, &rng_, cparams, catalog);
  QueryServerParams sparams;
  QueryServer server(&clock_, &coordinator, sparams);

  struct RunResult {
    double bill = -1;
    bool mv_hit = false;
    uint64_t saved = 0;
    uint64_t gets = 0;
    TablePtr result;
  };
  auto run = [&] {
    Submission s;
    s.level = ServiceLevel::kImmediate;
    s.query.sql =
        "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY "
        "l_returnflag ORDER BY l_returnflag";
    s.query.db = "tpch";
    s.query.execute_real = true;
    RunResult r;
    const uint64_t gets_before = object_store->stats().get_requests;
    server.Submit(s, [&r](const SubmissionRecord& srec,
                          const QueryRecord& qrec) {
      r.bill = srec.bill_usd;
      r.mv_hit = srec.mv_hit;
      r.saved = srec.mv_saved_bytes;
      r.result = qrec.result;
    });
    clock_.RunUntil(clock_.Now() + 5 * kMinutes);
    r.gets = object_store->stats().get_requests - gets_before;
    return r;
  };

  auto first = run();
  ASSERT_NE(first.result, nullptr);
  EXPECT_FALSE(first.mv_hit);
  EXPECT_GT(first.gets, 0u);
  ASSERT_GT(first.bill, 0);

  auto second = run();
  ASSERT_NE(second.result, nullptr);
  EXPECT_TRUE(second.mv_hit);
  EXPECT_EQ(second.gets, 0u);  // planning touches only catalog metadata
  EXPECT_GT(second.saved, 0u);
  EXPECT_LT(second.bill, first.bill);
  EXPECT_NEAR(second.bill / first.bill, sparams.mv_reuse_bill_fraction,
              1e-9);
  // Same answer, byte for byte.
  ASSERT_EQ(second.result->num_rows(), first.result->num_rows());
  auto want = first.result->CollectColumn("n");
  auto got = second.result->CollectColumn("n");
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i].i, want[i].i);

  // Invalidate via a file-list swap that keeps the data identical (the
  // compaction code path, minus the rewrite): the version epoch bumps,
  // the entry dies, and the third run re-bills exactly the seed amount.
  auto table = catalog->GetTable("tpch", "lineitem");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      catalog->ReplaceTableFiles("tpch", "lineitem", (*table)->files).ok());

  auto third = run();
  EXPECT_FALSE(third.mv_hit);
  EXPECT_GT(third.gets, 0u);
  EXPECT_NEAR(third.bill, first.bill, 1e-12);

  auto mv_stats = coordinator.mv_store()->stats();
  EXPECT_GE(mv_stats.hits, 1u);
  EXPECT_GE(mv_stats.invalidations, 1u);
  server.Stop();
  coordinator.Stop();
}

TEST_F(EndToEndTest, BillsReflectServiceLevelDiscounts) {
  // The same query at three levels: relaxed pays 20%, best-effort 10%.
  double bills[3] = {-1, -1, -1};
  ServiceLevel levels[] = {ServiceLevel::kImmediate, ServiceLevel::kRelaxed,
                           ServiceLevel::kBestEffort};
  for (int i = 0; i < 3; ++i) {
    Submission s;
    s.level = levels[i];
    s.query.sql = "SELECT count(*) FROM lineitem";
    s.query.db = "tpch";
    s.query.execute_real = true;
    server_->Submit(s, [&bills, i](const SubmissionRecord& srec,
                                   const QueryRecord&) {
      bills[i] = srec.bill_usd;
    });
    clock_.RunUntil(clock_.Now() + 5 * kMinutes);
  }
  ASSERT_GT(bills[0], 0);
  EXPECT_NEAR(bills[1] / bills[0], 0.2, 1e-9);
  EXPECT_NEAR(bills[2] / bills[0], 0.1, 1e-9);
}

}  // namespace
}  // namespace pixels
