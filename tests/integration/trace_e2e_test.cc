// End-to-end observability: one trace follows a query through the query
// server (hold), the coordinator (queue/execute), the CF fleet (worker
// attempts with injected retries), and individual storage operations; the
// unified metrics snapshot exports valid Prometheus text with
// per-service-level histograms; and tracing never changes results, bytes,
// or bills.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace.h"
#include "format/footer_cache.h"
#include "server/query_server.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "storage/tracing_storage.h"
#include "testing/switchable_storage.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r)
      rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

const char* kCfSql =
    "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
    "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
const char* kRelaxedSql =
    "SELECT l_linestatus, sum(l_quantity) AS q FROM lineitem "
    "WHERE l_discount > 0.02 GROUP BY l_linestatus ORDER BY l_linestatus";

struct RunOutcome {
  std::vector<std::vector<std::string>> rows;
  std::vector<uint64_t> bytes;
  std::vector<double> bills;
  std::vector<QueryState> states;
  std::vector<std::string> profiles;
  double total_billed = 0;
  std::string prometheus;
  std::string status_profile;  // StatusView of the CF query
};

/// One run of the full stack — storage chain
///   TracingStorage( ObjectStore( RetryingStorage( Switchable( faults ))))
/// — with a single-slot VM cluster so the immediate real query takes the
/// CF path, the relaxed query is held, and one injected transient read
/// error forces exactly one CF worker re-invocation.
RunOutcome RunWorkload(TraceLevel level, Tracer* tracer) {
  FooterCache::Shared()->Clear();

  auto mem = std::make_shared<MemoryStore>();
  auto switchable = std::make_shared<testing::SwitchableStorage>(mem);
  RetryPolicy policy;
  policy.max_attempts = 1;  // storage absorbs nothing: faults reach the
                            // CF worker, exercising worker re-invocation
  auto retrying = std::make_shared<RetryingStorage>(switchable, policy);
  auto object_store = std::make_shared<ObjectStore>(retrying);
  auto tracing = std::make_shared<TracingStorage>(object_store, tracer);
  auto catalog = std::make_shared<Catalog>(tracing);

  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  EXPECT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  // One transient read failure, switched on only after data generation.
  FaultInjectionParams fparams;
  FaultRule rule;
  rule.fail_first_reads = 1;
  fparams.rules.push_back(rule);
  auto injector = std::make_shared<FaultInjectingStorage>(mem, fparams);
  switchable->SetTarget(injector);

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 1;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 1;
  cparams.vm.high_watermark = 1;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.mv_store_bytes = 8ULL << 20;  // mv-lookup spans on both paths
  cparams.trace_level = level;
  cparams.tracer = tracer;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServer server(&clock, &coordinator);

  RunOutcome out;
  out.rows.resize(3);
  out.bytes.assign(3, 0);
  out.bills.assign(3, 0);
  out.states.assign(3, QueryState::kPending);
  out.profiles.resize(3);
  auto submit = [&](size_t i, Submission s) {
    return server.Submit(std::move(s),
                         [&out, i](const SubmissionRecord& srec,
                                   const QueryRecord& qrec) {
                           out.states[i] = qrec.state;
                           out.bytes[i] = qrec.bytes_scanned;
                           out.bills[i] = srec.bill_usd;
                           out.profiles[i] = qrec.profile;
                           if (qrec.result != nullptr) {
                             out.rows[i] = SortedRows(*qrec.result);
                           }
                         });
  };

  // Occupies the single VM slot so the next immediate query goes to CF
  // and the relaxed one is held behind the high watermark.
  Submission occupier;
  occupier.level = ServiceLevel::kImmediate;
  occupier.query.work_vcpu_seconds = 30;
  submit(0, std::move(occupier));

  Submission cf_query;
  cf_query.level = ServiceLevel::kImmediate;
  cf_query.query.sql = kCfSql;
  cf_query.query.db = "tpch";
  cf_query.query.execute_real = true;
  const int64_t cf_id = submit(1, std::move(cf_query));

  Submission relaxed;
  relaxed.level = ServiceLevel::kRelaxed;
  relaxed.query.sql = kRelaxedSql;
  relaxed.query.db = "tpch";
  relaxed.query.execute_real = true;
  submit(2, std::move(relaxed));

  clock.RunAll();
  server.Stop();
  coordinator.Stop();
  clock.RunAll();

  out.total_billed = server.TotalBilledUsd();
  out.prometheus = server.MetricsSnapshot().ToPrometheusText();
  auto status = server.GetStatus(cf_id);
  EXPECT_TRUE(status.ok());
  if (status.ok()) out.status_profile = status->profile;
  return out;
}

TEST(TraceE2eTest, FullTraceCoversHoldMvLookupWorkerRetryAndStorage) {
  Tracer tracer;  // off during data generation; the coordinator raises it
  const RunOutcome out = RunWorkload(TraceLevel::kFull, &tracer);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(out.states[i], QueryState::kFinished) << "query " << i;
  }

  // Three root "query" spans, one per submission.
  EXPECT_EQ(tracer.FindSpans("query").size(), 3u);
  EXPECT_EQ(tracer.FindSpans("coordinator").size(), 3u);

  // The relaxed query was held and eventually released.
  const auto holds = tracer.FindSpans("hold");
  ASSERT_EQ(holds.size(), 1u);
  EXPECT_GE(holds[0].end, 0);
  bool released = false;
  for (const auto& [k, v] : holds[0].attrs) {
    if (k == "released_by") released = !v.empty();
  }
  EXPECT_TRUE(released);

  // MV lookups were traced (missed: first execution of each query).
  const auto mv = tracer.FindSpans("mv-lookup");
  EXPECT_GE(mv.size(), 2u);

  // CF fleet: every partition got a worker span; exactly one worker
  // needed a re-invocation (one injected fault), so attempts = workers+1.
  ASSERT_EQ(tracer.FindSpans("cf-fleet").size(), 1u);
  const auto workers = tracer.FindSpans("cf-worker");
  const auto attempts = tracer.FindSpans("cf-attempt");
  ASSERT_GE(workers.size(), 2u);
  EXPECT_EQ(attempts.size(), workers.size() + 1);
  int total_retries = 0;
  for (const auto& w : workers) {
    for (const auto& [k, v] : w.attrs) {
      if (k == "retries") total_retries += std::stoi(v);
    }
  }
  EXPECT_EQ(total_retries, 1);

  // Storage operations were traced and (at least those from CF attempts)
  // parented under a cf-attempt span via the ambient active parent.
  std::map<uint64_t, std::string> name_of;
  size_t storage_spans = 0;
  for (const auto& span : tracer.Snapshot()) {
    name_of[span.id] = span.name;
    if (span.name.rfind("storage-", 0) == 0) ++storage_spans;
  }
  ASSERT_GT(storage_spans, 0u);
  size_t under_attempt = 0;
  for (const auto& span : tracer.Snapshot()) {
    if (span.name.rfind("storage-", 0) == 0 && span.parent != 0 &&
        name_of[span.parent] == "cf-attempt") {
      ++under_attempt;
    }
  }
  EXPECT_GT(under_attempt, 0u);

  // trace_level=full attached EXPLAIN ANALYZE reports to the real
  // executions, visible through both the record and StatusView; the CF
  // query's report includes the fleet's aggregate worker nodes.
  EXPECT_NE(out.profiles[1].find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(out.profiles[1].find("CfWorker["), std::string::npos);
  EXPECT_NE(out.profiles[2].find("Scan(tpch.lineitem)"), std::string::npos);
  EXPECT_EQ(out.status_profile, out.profiles[1]);
  EXPECT_TRUE(out.profiles[0].empty());  // simulated query: nothing ran

  // The unified snapshot parses as Prometheus text and carries the
  // per-service-level histograms and storage gauges.
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(out.prometheus, &error)) << error;
  EXPECT_NE(out.prometheus.find(
                "pixels_query_latency_ms_bucket{level=\"immediate\""),
            std::string::npos);
  EXPECT_NE(out.prometheus.find(
                "pixels_query_latency_ms_bucket{level=\"relaxed\""),
            std::string::npos);
  EXPECT_NE(out.prometheus.find("pixels_queue_wait_ms"), std::string::npos);
  EXPECT_NE(out.prometheus.find("pixels_storage_get_latency_ms"),
            std::string::npos);
  EXPECT_NE(out.prometheus.find("pixels_cf_worker_retries 1"),
            std::string::npos);

  // The export is parseable Chrome-trace JSON.
  auto doc = Json::Parse(tracer.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("traceEvents").size(), tracer.size());
}

TEST(TraceE2eTest, BurstPreemptionEmitsNestedRecallAndBurstSpans) {
  // Burst scenario: a single-slot cluster, one queued best-effort query,
  // then an Immediate burst that recalls it. The preemption must show up
  // in the trace tree (admission.burst under the triggering Immediate
  // query, admission.recall under the recalled best-effort query) and in
  // the audit event log.
  SimClock clock;
  Random rng(42);
  Tracer tracer(TraceLevel::kSpans);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 1;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 4;
  cparams.vm.high_watermark = 2.0;
  cparams.vm.low_watermark = 2.0;  // permissive best-effort gate
  cparams.vm.scale_in_cooldown = 0;
  cparams.cf.max_concurrent_workers = 0;  // immediates queue on VMs too
  cparams.trace_level = TraceLevel::kSpans;
  cparams.tracer = &tracer;
  cparams.event_log_capacity = 4096;
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServerParams sparams;
  sparams.poll_interval = 1 * kSeconds;
  sparams.admission.preempt_best_effort = true;
  sparams.admission.burst_window = 10 * kSeconds;
  sparams.admission.burst_threshold = 3;
  QueryServer server(&clock, &coordinator, sparams);

  auto work = [](ServiceLevel level, double vcpu_seconds) {
    Submission s;
    s.level = level;
    s.query.work_vcpu_seconds = vcpu_seconds;
    s.query.bytes_to_scan = 1'000'000'000;
    return s;
  };
  server.Submit(work(ServiceLevel::kImmediate, 600.0));  // occupy the slot
  const int64_t best_id = server.Submit(work(ServiceLevel::kBestEffort, 5.0));
  for (int i = 0; i < 3; ++i) {
    server.Submit(work(ServiceLevel::kImmediate, 30.0));
  }
  const SubmissionRecord* best_rec = server.GetRecord(best_id);
  ASSERT_NE(best_rec, nullptr);
  EXPECT_EQ(best_rec->coordinator_id, 0);  // recalled
  const uint64_t best_span = best_rec->span_id;

  std::map<uint64_t, const TraceSpan*> by_id;
  const auto spans = tracer.Snapshot();
  for (const auto& s : spans) by_id[s.id] = &s;

  // admission.recall: instant span nested under the best-effort query's
  // root span, carrying the reason.
  const auto recalls = tracer.FindSpans("admission.recall");
  ASSERT_EQ(recalls.size(), 1u);
  EXPECT_EQ(recalls[0].parent, best_span);
  EXPECT_GE(recalls[0].end, recalls[0].start);  // instant, but ended
  bool recall_reason = false;
  for (const auto& [k, v] : recalls[0].attrs) {
    if (k == "reason") recall_reason = (v == "immediate-burst");
  }
  EXPECT_TRUE(recall_reason);

  // admission.burst: instant span nested under the TRIGGERING Immediate
  // query's root span (the third burst arrival), with the recall count.
  const auto bursts = tracer.FindSpans("admission.burst");
  ASSERT_EQ(bursts.size(), 1u);
  ASSERT_NE(by_id.find(bursts[0].parent), by_id.end());
  const TraceSpan* burst_parent = by_id[bursts[0].parent];
  EXPECT_EQ(burst_parent->name, "query");
  bool parent_is_immediate = false;
  for (const auto& [k, v] : burst_parent->attrs) {
    if (k == "level") parent_is_immediate = (v == "immediate");
  }
  EXPECT_TRUE(parent_is_immediate);
  bool burst_recalled = false;
  for (const auto& [k, v] : bursts[0].attrs) {
    if (k == "recalled") burst_recalled = (v == "1");
  }
  EXPECT_TRUE(burst_recalled);

  // The audit log saw the same story: the recall (from the coordinator)
  // and the burst (from the server), in virtual-time order.
  ASSERT_NE(coordinator.event_log(), nullptr);
  EXPECT_EQ(coordinator.event_log()->CountOfType("admission.recall"), 1u);
  EXPECT_EQ(coordinator.event_log()->CountOfType("admission.burst"), 1u);
  const auto recall_events = coordinator.event_log()->OfType("admission.recall");
  EXPECT_EQ(recall_events[0].fields.Get("reason").AsString(),
            "immediate-burst");

  clock.RunUntil(2 * kHours);
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
}

TEST(TraceE2eTest, TracingNeverChangesResultsBytesOrBills) {
  Tracer off_tracer;
  const RunOutcome off = RunWorkload(TraceLevel::kOff, &off_tracer);
  EXPECT_EQ(off_tracer.size(), 0u);  // kOff records nothing at all
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(off.states[i], QueryState::kFinished);
    EXPECT_TRUE(off.profiles[i].empty());
  }

  Tracer full_tracer;
  const RunOutcome full = RunWorkload(TraceLevel::kFull, &full_tracer);
  EXPECT_GT(full_tracer.size(), 0u);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    EXPECT_EQ(off.rows[i], full.rows[i]);
    EXPECT_EQ(off.bytes[i], full.bytes[i]);
    EXPECT_DOUBLE_EQ(off.bills[i], full.bills[i]);
  }
  EXPECT_DOUBLE_EQ(off.total_billed, full.total_billed);
}

TEST(TraceE2eTest, IdenticalSimulatedRunsProduceIdenticalExports) {
  // Simulated queries execute nothing real (no pool threads), so span
  // creation order is fully deterministic and two identical runs must
  // export byte-identical traces and Prometheus snapshots.
  auto run = [](std::string* prometheus) {
    Tracer tracer(TraceLevel::kSpans);
    SimClock clock;
    Random rng(7);
    CoordinatorParams cparams;
    cparams.vm.initial_vms = 1;
    cparams.vm.slots_per_vm = 1;
    cparams.vm.min_vms = 1;
    cparams.vm.max_vms = 1;
    cparams.vm.high_watermark = 1;
    cparams.vm.monitor_interval = 5 * kSeconds;
    cparams.trace_level = TraceLevel::kSpans;
    cparams.tracer = &tracer;
    Coordinator coordinator(&clock, &rng, cparams, nullptr);
    QueryServer server(&clock, &coordinator);
    // The occupier outlasts the relaxed grace period, so the relaxed
    // query is force-dispatched into the coordinator's VM queue (a
    // "vm-queue" span); the second immediate overflows to CF.
    const struct {
      ServiceLevel level;
      double work;
    } kLoad[] = {{ServiceLevel::kImmediate, 3600},
                 {ServiceLevel::kRelaxed, 5},
                 {ServiceLevel::kBestEffort, 5},
                 {ServiceLevel::kImmediate, 5}};
    for (const auto& q : kLoad) {
      Submission s;
      s.level = q.level;
      s.query.work_vcpu_seconds = q.work;
      server.Submit(std::move(s));
    }
    clock.RunAll();
    server.Stop();
    coordinator.Stop();
    clock.RunAll();
    *prometheus = server.MetricsSnapshot().ToPrometheusText();
    return tracer.ToChromeTraceJson();
  };
  std::string prom_a;
  std::string prom_b;
  const std::string trace_a = run(&prom_a);
  const std::string trace_b = run(&prom_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(prom_a, prom_b);
  EXPECT_NE(trace_a.find("\"name\":\"hold\""), std::string::npos);
  EXPECT_NE(trace_a.find("\"name\":\"vm-queue\""), std::string::npos);
}

}  // namespace
}  // namespace pixels
