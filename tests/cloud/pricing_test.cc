#include "cloud/pricing.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(PricingTest, VmPricePerVcpuSecond) {
  PricingModel p;
  p.vm_price_per_vcpu_hour = 0.036;
  EXPECT_DOUBLE_EQ(p.VmPricePerVcpuSecond(), 0.00001);
}

TEST(PricingTest, CfUnitPriceRatioInPaperRange) {
  // Paper §2: CF has 9-24x higher resource unit prices than VMs.
  PricingModel p;
  double ratio = p.CfPricePerVcpuSecond() / p.VmPricePerVcpuSecond();
  EXPECT_GE(ratio, 9.0);
  EXPECT_LE(ratio, 24.0);
}

TEST(PricingTest, VmComputeCostLinearInWork) {
  PricingModel p;
  EXPECT_DOUBLE_EQ(p.VmComputeCost(7200.0),
                   7200.0 * p.vm_price_per_vcpu_hour / 3600.0);
  EXPECT_DOUBLE_EQ(p.VmComputeCost(0), 0);
}

TEST(PricingTest, CfInvocationIncludesRequestCost) {
  PricingModel p;
  p.cf_invocation_cost = 0.001;
  double c = p.CfInvocationCost(1.0, 0);
  EXPECT_DOUBLE_EQ(c, 0.001);
}

TEST(PricingTest, CfBillingQuantumRoundsUp) {
  PricingModel p;
  p.cf_invocation_cost = 0;
  p.cf_billing_quantum_ms = 100;
  double c1 = p.CfInvocationCost(1.0, 1);    // rounds to 100ms
  double c2 = p.CfInvocationCost(1.0, 100);  // exactly 100ms
  EXPECT_DOUBLE_EQ(c1, c2);
  double c3 = p.CfInvocationCost(1.0, 101);  // rounds to 200ms
  EXPECT_DOUBLE_EQ(c3, 2 * c2);
}

TEST(PricingTest, CfCostScalesWithVcpus) {
  PricingModel p;
  p.cf_invocation_cost = 0;
  EXPECT_NEAR(p.CfInvocationCost(6.0, 1000),
              6.0 * p.CfPricePerVcpuSecond(), 1e-12);
}

TEST(PricingTest, BytesPerTbConstant) {
  EXPECT_DOUBLE_EQ(kBytesPerTB, 1e12);
}

}  // namespace
}  // namespace pixels
