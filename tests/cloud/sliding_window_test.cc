// SlidingWindow / SlidingRatio unit tests: eviction boundary, incremental
// sum vs recomputation, exact quantiles, rates, and monotone-time feeds.
#include "cloud/sliding_window.h"

#include <gtest/gtest.h>

#include <vector>

namespace pixels {
namespace {

TEST(SlidingWindowTest, EmptyReadsAreZero) {
  SlidingWindow w(10 * kSeconds);
  EXPECT_TRUE(w.Empty());
  EXPECT_EQ(w.Count(), 0u);
  EXPECT_EQ(w.Sum(), 0.0);
  EXPECT_EQ(w.Mean(), 0.0);
  EXPECT_EQ(w.Quantile(50), 0.0);
  EXPECT_EQ(w.Max(), 0.0);
  EXPECT_EQ(w.RatePerSecond(), 0.0);
}

TEST(SlidingWindowTest, EvictionBoundaryIsHalfOpen) {
  SlidingWindow w(10 * kSeconds);
  w.Add(0, 1.0);
  w.Add(1, 2.0);
  // At now = window, the sample at t=0 sits exactly `window` in the past
  // and is evicted; the one at t=1 survives.
  w.AdvanceTo(10 * kSeconds);
  EXPECT_EQ(w.Count(), 1u);
  EXPECT_EQ(w.Sum(), 2.0);
  w.AdvanceTo(10 * kSeconds + 1);
  EXPECT_TRUE(w.Empty());
}

TEST(SlidingWindowTest, IncrementalSumMatchesRecompute) {
  SlidingWindow w(5 * kSeconds);
  double expect_sum = 0;
  std::vector<std::pair<SimTime, double>> added;
  for (int i = 0; i < 200; ++i) {
    const SimTime t = static_cast<SimTime>(i) * 100;
    const double v = static_cast<double>((i * 37) % 11);
    w.Add(t, v);
    added.push_back({t, v});
    // Recompute the retained sum from scratch and compare.
    expect_sum = 0;
    for (const auto& [at, val] : added) {
      if (at > t - 5 * kSeconds) expect_sum += val;
    }
    ASSERT_DOUBLE_EQ(w.Sum(), expect_sum) << "at i=" << i;
  }
}

TEST(SlidingWindowTest, QuantilesAreExactOverRetained) {
  SlidingWindow w(1 * kMinutes);
  for (int i = 1; i <= 100; ++i) {
    w.Add(i, static_cast<double>(i));  // values 1..100
  }
  EXPECT_EQ(w.Quantile(0), 1.0);
  EXPECT_EQ(w.Quantile(100), 100.0);
  EXPECT_GE(w.Quantile(50), 50.0);
  EXPECT_LE(w.Quantile(50), 51.0);
  EXPECT_GE(w.Quantile(99), 99.0);
  EXPECT_EQ(w.Max(), 100.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 50.5);
}

TEST(SlidingWindowTest, RatePerSecond) {
  SlidingWindow w(10 * kSeconds);
  for (int i = 0; i < 20; ++i) w.Add(i * 100, 1.0);
  // 20 samples over a 10-second window span.
  EXPECT_DOUBLE_EQ(w.RatePerSecond(), 2.0);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow w;
  w.Add(1, 5.0);
  w.Clear();
  EXPECT_TRUE(w.Empty());
  EXPECT_EQ(w.Sum(), 0.0);
}

TEST(SlidingRatioTest, RateOverWindow) {
  SlidingRatio r(10 * kSeconds);
  EXPECT_EQ(r.Rate(), 0.0);
  r.Add(0, true);
  r.Add(1, false);
  r.Add(2, false);
  r.Add(3, true);
  EXPECT_EQ(r.Total(), 4u);
  EXPECT_EQ(r.Hits(), 2u);
  EXPECT_DOUBLE_EQ(r.Rate(), 0.5);
  // Half-open eviction (outcomes at <= now - window drop): the hit at 0
  // and miss at 1 leave; the miss at 2 and hit at 3 remain.
  r.AdvanceTo(10 * kSeconds + 1);
  EXPECT_EQ(r.Total(), 2u);
  EXPECT_EQ(r.Hits(), 1u);
  EXPECT_DOUBLE_EQ(r.Rate(), 0.5);
  r.AdvanceTo(10 * kSeconds + 4);
  EXPECT_EQ(r.Total(), 0u);
  EXPECT_EQ(r.Rate(), 0.0);
}

TEST(SlidingRatioTest, ClearResets) {
  SlidingRatio r;
  r.Add(0, true);
  r.Clear();
  EXPECT_EQ(r.Total(), 0u);
  EXPECT_EQ(r.Hits(), 0u);
  EXPECT_EQ(r.Rate(), 0.0);
}

}  // namespace
}  // namespace pixels
