#include "cloud/cf_service.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

class CfServiceTest : public ::testing::Test {
 protected:
  SimClock clock_;
  Random rng_{42};
  CfServiceParams params_;
  PricingModel pricing_;
};

TEST_F(CfServiceTest, StartupLatencyWithinParameters) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  for (int i = 0; i < 20; ++i) {
    auto result = cf.Invoke(100, 10.0, nullptr);
    EXPECT_GE(result.startup_latency, params_.startup_min);
    EXPECT_LE(result.startup_latency, params_.startup_max);
  }
  clock_.RunAll();
}

TEST_F(CfServiceTest, HundredsOfWorkersInAboutASecond) {
  // Paper: "create hundreds of workers in 1 second".
  CfService cf(&clock_, &rng_, params_, pricing_);
  auto result = cf.Invoke(500, 0.0, nullptr);
  EXPECT_EQ(result.workers, 500);
  EXPECT_LE(result.startup_latency, 1500 * kMillis);
  clock_.RunAll();
}

TEST_F(CfServiceTest, WorkDividesAcrossWorkers) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  // 60 vCPU-seconds over 10 workers of 6 vCPU = 1 second each.
  auto result = cf.Invoke(10, 60.0, nullptr);
  EXPECT_EQ(result.run_duration, 1000);
  // Same work over 1 worker = 10 seconds.
  auto single = cf.Invoke(1, 60.0, nullptr);
  EXPECT_EQ(single.run_duration, 10000);
  clock_.RunAll();
}

TEST_F(CfServiceTest, DurationCappedAtMax) {
  params_.max_duration = 2 * kSeconds;
  CfService cf(&clock_, &rng_, params_, pricing_);
  auto result = cf.Invoke(1, 1e6, nullptr);
  EXPECT_EQ(result.run_duration, 2 * kSeconds);
  clock_.RunAll();
}

TEST_F(CfServiceTest, CompletionCallbackFiresAfterStartupPlusRun) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  SimTime done_at = -1;
  auto result = cf.Invoke(4, 24.0, [&] { done_at = clock_.Now(); });
  clock_.RunAll();
  EXPECT_EQ(done_at, result.startup_latency + result.run_duration);
}

TEST_F(CfServiceTest, InFlightTracking) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  cf.Invoke(10, 60.0, nullptr);
  EXPECT_EQ(cf.in_flight(), 10);
  EXPECT_TRUE(cf.CanInvoke(params_.max_concurrent_workers - 10));
  EXPECT_FALSE(cf.CanInvoke(params_.max_concurrent_workers - 9));
  clock_.RunAll();
  EXPECT_EQ(cf.in_flight(), 0);
}

TEST_F(CfServiceTest, CostScalesWithWorkersAndDuration) {
  pricing_.cf_invocation_cost = 0;
  CfService cf(&clock_, &rng_, params_, pricing_);
  auto r1 = cf.Invoke(1, 6.0, nullptr);   // 1 worker, 1s at 6 vCPU
  auto r2 = cf.Invoke(2, 12.0, nullptr);  // 2 workers, 1s each
  EXPECT_NEAR(r2.cost_usd, 2 * r1.cost_usd, 1e-12);
  clock_.RunAll();
}

TEST_F(CfServiceTest, CfMoreExpensiveThanVmForSameWork) {
  // The paper's core pricing premise: the same vCPU-seconds cost 9-24x
  // more on CF than on VMs.
  pricing_.cf_invocation_cost = 0;
  CfService cf(&clock_, &rng_, params_, pricing_);
  const double work = 600.0;  // vCPU-seconds
  auto result = cf.Invoke(10, work, nullptr);
  double vm_cost = pricing_.VmComputeCost(work);
  double ratio = result.cost_usd / vm_cost;
  EXPECT_GE(ratio, 9.0);
  EXPECT_LE(ratio, 24.0);
  clock_.RunAll();
}

TEST_F(CfServiceTest, AccruedCostAccumulates) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  auto r1 = cf.Invoke(5, 30.0, nullptr);
  auto r2 = cf.Invoke(3, 18.0, nullptr);
  EXPECT_NEAR(cf.AccruedCostUsd(), r1.cost_usd + r2.cost_usd, 1e-12);
  EXPECT_EQ(cf.total_invocations(), 8);
  clock_.RunAll();
}

TEST_F(CfServiceTest, ZeroWorkersClampedToOne) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  auto result = cf.Invoke(0, 6.0, nullptr);
  EXPECT_EQ(result.workers, 1);
  clock_.RunAll();
}

TEST_F(CfServiceTest, MetricsRecordInFlight) {
  CfService cf(&clock_, &rng_, params_, pricing_);
  cf.Invoke(2, 12.0, nullptr);
  clock_.RunAll();
  EXPECT_GE(cf.metrics().GetSeries("cf_in_flight").size(), 2u);
}

}  // namespace
}  // namespace pixels
