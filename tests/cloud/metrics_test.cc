#include "cloud/metrics.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries ts;
  ts.Record(0, 1);
  ts.Record(10, 5);
  ts.Record(20, 3);
  EXPECT_DOUBLE_EQ(ts.Min(), 1);
  EXPECT_DOUBLE_EQ(ts.Max(), 5);
  EXPECT_DOUBLE_EQ(ts.Mean(), 3);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.Min(), 0);
  EXPECT_DOUBLE_EQ(ts.Max(), 0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(100), 0);
}

TEST(TimeSeriesTest, ValueAtStepSemantics) {
  TimeSeries ts;
  ts.Record(10, 1);
  ts.Record(20, 2);
  EXPECT_DOUBLE_EQ(ts.ValueAt(5), 0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(10), 1);
  EXPECT_DOUBLE_EQ(ts.ValueAt(15), 1);
  EXPECT_DOUBLE_EQ(ts.ValueAt(20), 2);
  EXPECT_DOUBLE_EQ(ts.ValueAt(1000), 2);
}

TEST(TimeSeriesTest, TimeWeightedMean) {
  TimeSeries ts;
  ts.Record(0, 0);
  ts.Record(10, 10);  // value 0 during [0,10), 10 during [10,20)
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 20), 5.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(10, 20), 10.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 10), 0.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanDegenerateWindow) {
  TimeSeries ts;
  ts.Record(0, 7);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(5, 5), 7.0);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  m.Add("queries", 1);
  m.Add("queries", 2);
  EXPECT_DOUBLE_EQ(m.Counter("queries"), 3);
  EXPECT_DOUBLE_EQ(m.Counter("missing"), 0);
}

TEST(MetricsRegistryTest, SeriesByName) {
  MetricsRegistry m;
  m.Series("vms").Record(0, 2);
  m.Series("vms").Record(1000, 3);
  EXPECT_EQ(m.Series("vms").size(), 2u);
  EXPECT_EQ(m.AllSeries().size(), 1u);
}

TEST(MetricsRegistryTest, CsvFormat) {
  MetricsRegistry m;
  m.Series("x").Record(2000, 1.5);
  std::string csv = m.ToCsv("x");
  EXPECT_NE(csv.find("x,2.0"), std::string::npos);
  EXPECT_NE(csv.find("1.5"), std::string::npos);
  EXPECT_TRUE(m.ToCsv("missing").empty());
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({42}, 99), 42);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3}, 50), 3);
}

}  // namespace
}  // namespace pixels
