#include "cloud/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pixels {
namespace {

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries ts;
  ts.Record(0, 1);
  ts.Record(10, 5);
  ts.Record(20, 3);
  EXPECT_DOUBLE_EQ(ts.Min(), 1);
  EXPECT_DOUBLE_EQ(ts.Max(), 5);
  EXPECT_DOUBLE_EQ(ts.Mean(), 3);
  EXPECT_EQ(ts.size(), 3u);
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.Min(), 0);
  EXPECT_DOUBLE_EQ(ts.Max(), 0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(100), 0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 100), 0);
}

TEST(TimeSeriesTest, ValueAtStepSemantics) {
  TimeSeries ts;
  ts.Record(10, 1);
  ts.Record(20, 2);
  EXPECT_DOUBLE_EQ(ts.ValueAt(5), 0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(10), 1);
  EXPECT_DOUBLE_EQ(ts.ValueAt(15), 1);
  EXPECT_DOUBLE_EQ(ts.ValueAt(20), 2);
  EXPECT_DOUBLE_EQ(ts.ValueAt(1000), 2);
}

TEST(TimeSeriesTest, ValueAtManyPointsMatchesLinearScan) {
  // The binary-search rewrite must agree with the obvious linear scan at
  // every boundary, including exact sample times and duplicates.
  TimeSeries ts;
  const SimTime times[] = {0, 5, 5, 7, 100, 1000};
  double v = 1;
  for (SimTime t : times) ts.Record(t, v++);
  auto linear = [&](SimTime t) {
    double out = 0;
    for (const Sample& s : ts.samples()) {
      if (s.time <= t) out = s.value;
    }
    return out;
  };
  for (SimTime t = -2; t <= 1002; t += 1) {
    ASSERT_DOUBLE_EQ(ts.ValueAt(t), linear(t)) << "t=" << t;
  }
}

TEST(TimeSeriesTest, TimeWeightedMean) {
  TimeSeries ts;
  ts.Record(0, 0);
  ts.Record(10, 10);  // value 0 during [0,10), 10 during [10,20)
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 20), 5.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(10, 20), 10.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 10), 0.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanDegenerateWindow) {
  TimeSeries ts;
  ts.Record(0, 7);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(5, 5), 7.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanWindowBeforeFirstSample) {
  TimeSeries ts;
  ts.Record(100, 9);
  // The whole window precedes the first sample: the value is 0 there.
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 50), 0.0);
  // Window straddling the first sample: 0 for [0,100), 9 for [100,200).
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(0, 200), 4.5);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  m.Add("queries", 1);
  m.Add("queries", 2);
  EXPECT_DOUBLE_EQ(m.Counter("queries"), 3);
  EXPECT_DOUBLE_EQ(m.Counter("missing"), 0);
}

TEST(MetricsRegistryTest, SeriesByName) {
  MetricsRegistry m;
  m.Record("vms", 0, 2);
  m.Record("vms", 1000, 3);
  EXPECT_EQ(m.GetSeries("vms").size(), 2u);
  EXPECT_EQ(m.AllSeries().size(), 1u);
  EXPECT_TRUE(m.GetSeries("missing").empty());
}

TEST(MetricsRegistryTest, Gauges) {
  MetricsRegistry m;
  m.SetGauge("cache_bytes", 10);
  m.SetGauge("cache_bytes", 20);  // gauges overwrite
  EXPECT_DOUBLE_EQ(m.Gauge("cache_bytes"), 20);
  EXPECT_DOUBLE_EQ(m.Gauge("missing"), 0);
}

TEST(MetricsRegistryTest, CsvFormat) {
  MetricsRegistry m;
  m.Record("x", 2000, 1.5);
  std::string csv = m.ToCsv("x");
  EXPECT_NE(csv.find("x,2.0"), std::string::npos);
  EXPECT_NE(csv.find("1.5"), std::string::npos);
  EXPECT_TRUE(m.ToCsv("missing").empty());
}

TEST(MetricsRegistryTest, CopyAndMerge) {
  MetricsRegistry a;
  a.Add("c", 1);
  a.SetGauge("g", 5);
  a.Record("s", 0, 1);
  a.Observe("h", 10);

  MetricsRegistry b = a;  // copy
  b.Add("c", 2);
  EXPECT_DOUBLE_EQ(a.Counter("c"), 1);  // deep copy, not shared
  EXPECT_DOUBLE_EQ(b.Counter("c"), 3);

  MetricsRegistry c;
  c.Add("c", 10);
  c.MergeFrom(a);
  EXPECT_DOUBLE_EQ(c.Counter("c"), 11);  // counters add
  EXPECT_DOUBLE_EQ(c.Gauge("g"), 5);
  EXPECT_EQ(c.GetSeries("s").size(), 1u);
  EXPECT_EQ(c.GetHistogram("h").count(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentMixedWriters) {
  // Hammer every mutator from several threads; run under TSan to prove
  // the registry's internal locking. Totals are checked for exactness.
  MetricsRegistry m;
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < kOps; ++i) {
        m.Add("counter", 1);
        m.SetGauge("gauge", static_cast<double>(t));
        m.Record("series", i, static_cast<double>(i));
        m.Observe("hist", static_cast<double>(i % 100));
        if (i % 64 == 0) {
          // Readers race the writers (return-by-value snapshots).
          (void)m.Counter("counter");
          (void)m.GetSeries("series").size();
          (void)m.GetHistogram("hist").count();
          MetricsRegistry copy = m;
          (void)copy.AllCounters().size();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(m.Counter("counter"), kThreads * kOps);
  EXPECT_EQ(m.GetSeries("series").size(),
            static_cast<size_t>(kThreads * kOps));
  EXPECT_EQ(m.GetHistogram("hist").count(),
            static_cast<uint64_t>(kThreads * kOps));
}

TEST(HistogramTest, BucketsAreCumulativeInExportOnly) {
  Histogram h({10, 100});
  h.Observe(5);
  h.Observe(50);
  h.Observe(500);
  h.Observe(10);  // boundary lands in the <= 10 bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);  // <= 10
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // (10, 100]
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // > 100 (+Inf)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 565);
}

TEST(HistogramTest, QuantileMatchesPercentileExactly) {
  // The histogram retains raw samples, so its quantiles are exact — by
  // construction they must equal Percentile() over the same data.
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 257; ++i) {
    const double v = static_cast<double>((i * 7919) % 1000);
    h.Observe(v);
    samples.push_back(v);
  }
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(p), Percentile(samples, p)) << "p=" << p;
  }
}

TEST(PrometheusTest, ExportsAllMetricKinds) {
  MetricsRegistry m;
  m.Add("queries_finished", 3);
  m.SetGauge("cache_bytes", 1024);
  m.Record("vms", 0, 2);
  m.Record("vms", 1000, 4);
  m.Observe("latency_ms", 12.5);
  m.Observe("latency_ms", 250);
  const std::string text = m.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE pixels_queries_finished counter"),
            std::string::npos);
  EXPECT_NE(text.find("pixels_queries_finished 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pixels_cache_bytes gauge"), std::string::npos);
  // A series exports its last value as a gauge.
  EXPECT_NE(text.find("pixels_vms 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pixels_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pixels_latency_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pixels_latency_ms_count 2"), std::string::npos);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
}

TEST(PrometheusTest, LabeledMetricNamesSplitAtBrace) {
  MetricsRegistry m;
  m.Observe("queue_wait_ms{level=\"immediate\"}", 1);
  m.Observe("queue_wait_ms{level=\"relaxed\"}", 100);
  const std::string text = m.ToPrometheusText();
  // One TYPE line for the base name, two labeled bucket families.
  const std::string type_line = "# TYPE pixels_queue_wait_ms histogram";
  const size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
  EXPECT_NE(text.find("pixels_queue_wait_ms_bucket{level=\"immediate\",le="),
            std::string::npos);
  EXPECT_NE(text.find("pixels_queue_wait_ms_count{level=\"relaxed\"} 1"),
            std::string::npos);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
}

TEST(PrometheusTest, ValidatorRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText("9bad_name 1\n", &error));
  EXPECT_FALSE(ValidatePrometheusText("name_without_value\n", &error));
  EXPECT_FALSE(ValidatePrometheusText("name not_a_number\n", &error));
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE pixels_x made_up_kind\n", &error));
  EXPECT_FALSE(ValidatePrometheusText("broken{le=\"1\" 3\n", &error));
  EXPECT_TRUE(ValidatePrometheusText("", &error)) << error;
  EXPECT_TRUE(ValidatePrometheusText("x_total 1\nx_free +Inf\n", &error))
      << error;
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(Percentile({42}, 99), 42);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3}, 50), 3);
}

// ---------------------------------------------------------------------------
// Histogram semantics in the Prometheus export (ISSUE 10 satellite)

TEST(PrometheusTest, HistogramBucketsAreCumulativeMonotoneAndSumToCount) {
  MetricsRegistry reg;
  for (int i = 0; i < 50; ++i) {
    reg.Observe("latency_ms", static_cast<double>(i * 40));
  }
  const std::string text = reg.ToPrometheusText();
  std::string error;
  ASSERT_TRUE(ValidatePrometheusText(text, &error)) << error;
  // Parse the bucket lines back: values must be non-decreasing and the
  // +Inf bucket must equal _count.
  double prev = -1;
  double inf = -1, count = -1;
  size_t buckets = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("pixels_latency_ms_bucket", 0) == 0) {
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << line;
      prev = v;
      buckets++;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
    } else if (line.rfind("pixels_latency_ms_count", 0) == 0) {
      count = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_GT(buckets, 1u);
  EXPECT_EQ(inf, 50.0);
  EXPECT_EQ(count, 50.0);
}

TEST(PrometheusTest, ValidatorRejectsNonMonotoneBuckets) {
  const std::string bad =
      "pixels_x_bucket{le=\"1\"} 5\n"
      "pixels_x_bucket{le=\"10\"} 3\n"  // cumulative count went DOWN
      "pixels_x_bucket{le=\"+Inf\"} 8\n"
      "pixels_x_sum 40\n"
      "pixels_x_count 8\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(bad, &error));
  EXPECT_NE(error.find("non-monotone"), std::string::npos) << error;
}

TEST(PrometheusTest, ValidatorRejectsInfBucketCountMismatch) {
  const std::string bad =
      "pixels_x_bucket{le=\"1\"} 2\n"
      "pixels_x_bucket{le=\"+Inf\"} 8\n"
      "pixels_x_sum 40\n"
      "pixels_x_count 9\n";  // != +Inf bucket
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(bad, &error));
  EXPECT_NE(error.find("_count"), std::string::npos) << error;
}

TEST(PrometheusTest, LabeledHistogramsValidateIndependently) {
  MetricsRegistry reg;
  reg.Observe("wait_ms{level=\"immediate\"}", 5.0);
  reg.Observe("wait_ms{level=\"relaxed\"}", 500.0);
  reg.Observe("wait_ms{level=\"relaxed\"}", 900.0);
  std::string error;
  ASSERT_TRUE(ValidatePrometheusText(reg.ToPrometheusText(), &error))
      << error;
}

TEST(MetricsRegistryTest, DeclareHistogramKeepsSignedBounds) {
  MetricsRegistry reg;
  reg.DeclareHistogram("margin_ms", {-1000, 0, 1000});
  reg.Observe("margin_ms", -500);   // a violation margin
  reg.Observe("margin_ms", 250);
  const Histogram h = reg.GetHistogram("margin_ms");
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], -1000.0);
  EXPECT_EQ(h.bucket_counts()[1], 1u);  // (-1000, 0]: the -500 sample
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // (0, 1000]: the 250 sample
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(reg.ToPrometheusText(), &error))
      << error;
}

TEST(MetricsRegistryTest, MergeFromPreservesCustomBucketBounds) {
  MetricsRegistry src;
  src.DeclareHistogram("margin_ms", {-1000, 0, 1000});
  src.Observe("margin_ms", -500);
  MetricsRegistry dst;  // has no margin_ms yet
  dst.MergeFrom(src);
  const Histogram h = dst.GetHistogram("margin_ms");
  // Without copy-on-absent the merge would re-bucket into default bounds
  // (which start at 1) and the negative sample's bucket would be lost.
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], -1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
}

TEST(MetricsRegistryTest, MergeHistogramCopiesWhenAbsentMergesWhenPresent) {
  Histogram src({-10, 0, 10});
  src.Observe(-5);
  MetricsRegistry reg;
  reg.MergeHistogram("m", src);
  EXPECT_EQ(reg.GetHistogram("m").bounds().size(), 3u);
  EXPECT_EQ(reg.GetHistogram("m").count(), 1u);
  // Merging again into the now-present histogram accumulates.
  reg.MergeHistogram("m", src);
  EXPECT_EQ(reg.GetHistogram("m").count(), 2u);
  EXPECT_EQ(reg.GetHistogram("m").bucket_counts()[1], 2u);
}

}  // namespace
}  // namespace pixels
