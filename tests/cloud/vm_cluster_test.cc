#include "cloud/vm_cluster.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

class VmClusterTest : public ::testing::Test {
 protected:
  VmClusterParams DefaultParams() {
    VmClusterParams p;
    p.initial_vms = 2;
    p.min_vms = 1;
    p.max_vms = 16;
    p.slots_per_vm = 2;
    p.provision_delay_min = 60 * kSeconds;
    p.provision_delay_max = 120 * kSeconds;
    p.high_watermark = 5.0;
    p.low_watermark = 0.75;
    p.monitor_interval = 5 * kSeconds;
    p.scale_in_window = 60 * kSeconds;
    p.scale_in_cooldown = 0;
    return p;
  }

  SimClock clock_;
  Random rng_{42};
};

TEST_F(VmClusterTest, InitialState) {
  VmCluster vm(&clock_, &rng_, DefaultParams(), PricingModel{});
  EXPECT_EQ(vm.num_vms(), 2);
  EXPECT_EQ(vm.pending_vms(), 0);
  EXPECT_EQ(vm.TotalSlots(), 4);
  EXPECT_EQ(vm.FreeSlots(), 4);
  EXPECT_DOUBLE_EQ(vm.Concurrency(), 0);
}

TEST_F(VmClusterTest, SlotAccounting) {
  VmCluster vm(&clock_, &rng_, DefaultParams(), PricingModel{});
  EXPECT_TRUE(vm.TryStartQuery());
  EXPECT_TRUE(vm.TryStartQuery());
  EXPECT_TRUE(vm.TryStartQuery());
  EXPECT_TRUE(vm.TryStartQuery());
  EXPECT_FALSE(vm.TryStartQuery());  // saturated: 2 VMs * 2 slots
  vm.FinishQuery();
  EXPECT_TRUE(vm.TryStartQuery());
}

TEST_F(VmClusterTest, WatermarkPredicates) {
  auto params = DefaultParams();
  params.initial_vms = 8;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  EXPECT_TRUE(vm.BelowLowWatermark());  // 0 < 0.75
  ASSERT_TRUE(vm.TryStartQuery());
  EXPECT_FALSE(vm.BelowLowWatermark());  // 1 >= 0.75
  EXPECT_FALSE(vm.AboveHighWatermark());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(vm.TryStartQuery());
  EXPECT_TRUE(vm.AboveHighWatermark());  // 5 >= 5
}

TEST_F(VmClusterTest, ScaleOutTriggersAfterProvisionDelay) {
  VmCluster vm(&clock_, &rng_, DefaultParams(), PricingModel{});
  vm.Start();
  // Saturate above the high watermark (needs > 5 running; capacity is 4,
  // so occupy all slots and note concurrency 4 < 5: raise initial load).
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(vm.TryStartQuery());
  // Concurrency 4 is below watermark 5 -> no scale-out.
  clock_.RunUntil(30 * kSeconds);
  EXPECT_EQ(vm.pending_vms(), 0);

  // Push concurrency past the watermark via the monitor's view: lower the
  // watermark by using more slots -> emulate by a fresh cluster with more
  // initial VMs.
  auto params = DefaultParams();
  params.initial_vms = 3;  // 6 slots
  SimClock clock2;
  Random rng2(7);
  VmCluster vm2(&clock2, &rng2, params, PricingModel{});
  vm2.Start();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(vm2.TryStartQuery());
  clock2.RunUntil(10 * kSeconds);  // first monitor tick at 5s
  EXPECT_GT(vm2.pending_vms(), 0);
  EXPECT_EQ(vm2.num_vms(), 3);
  // VMs arrive within [60, 120] seconds of the trigger.
  clock2.RunUntil(200 * kSeconds);
  EXPECT_EQ(vm2.pending_vms(), 0);
  EXPECT_GT(vm2.num_vms(), 3);
  vm2.Stop();
  vm.Stop();
}

TEST_F(VmClusterTest, ProvisionDelayWithinPaperRange) {
  // Measure the lag between trigger and VM activation: must be 1-2 min.
  auto params = DefaultParams();
  params.initial_vms = 3;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(vm.TryStartQuery());
  clock_.RunUntil(5 * kSeconds);  // trigger at first tick
  ASSERT_GT(vm.pending_vms(), 0);
  const SimTime trigger_time = clock_.Now();
  SimTime activation = -1;
  vm.SetCapacityAvailableCallback([&] {
    if (activation < 0 && vm.num_vms() > 3) activation = clock_.Now();
  });
  clock_.RunUntil(300 * kSeconds);
  ASSERT_GT(activation, 0);
  EXPECT_GE(activation - trigger_time, 60 * kSeconds);
  EXPECT_LE(activation - trigger_time, 120 * kSeconds);
  vm.Stop();
}

TEST_F(VmClusterTest, ScaleInAfterIdleWindow) {
  auto params = DefaultParams();
  params.initial_vms = 4;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  // Idle cluster: concurrency 0 < 0.75 for the whole window.
  clock_.RunUntil(10 * kMinutes);
  EXPECT_LT(vm.num_vms(), 4);
  EXPECT_GE(vm.num_vms(), params.min_vms);
  EXPECT_GT(vm.scale_in_events(), 0);
  vm.Stop();
}

TEST_F(VmClusterTest, ScaleInNeverBelowMin) {
  auto params = DefaultParams();
  params.initial_vms = 2;
  params.min_vms = 2;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  clock_.RunUntil(20 * kMinutes);
  EXPECT_EQ(vm.num_vms(), 2);
  vm.Stop();
}

TEST_F(VmClusterTest, LazyScaleInSlowsRelease) {
  auto eager = DefaultParams();
  eager.initial_vms = 10;
  eager.scale_in_cooldown = 0;
  SimClock c1;
  Random r1(1);
  VmCluster vm_eager(&c1, &r1, eager, PricingModel{});
  vm_eager.Start();
  c1.RunUntil(10 * kMinutes);
  vm_eager.Stop();

  auto lazy = eager;
  lazy.scale_in_cooldown = 3 * kMinutes;
  SimClock c2;
  Random r2(1);
  VmCluster vm_lazy(&c2, &r2, lazy, PricingModel{});
  vm_lazy.Start();
  c2.RunUntil(10 * kMinutes);
  vm_lazy.Stop();

  EXPECT_LT(vm_eager.num_vms(), vm_lazy.num_vms());
}

TEST_F(VmClusterTest, BusyClusterDoesNotScaleIn) {
  auto params = DefaultParams();
  params.initial_vms = 2;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  // Keep 2 queries running (concurrency 2 > 0.75).
  ASSERT_TRUE(vm.TryStartQuery());
  ASSERT_TRUE(vm.TryStartQuery());
  clock_.RunUntil(10 * kMinutes);
  EXPECT_EQ(vm.num_vms(), 2);
  EXPECT_EQ(vm.scale_in_events(), 0);
  vm.Stop();
}

TEST_F(VmClusterTest, CostAccruesWithTimeAndSize) {
  PricingModel pricing;
  auto params = DefaultParams();
  params.initial_vms = 2;
  params.vcpus_per_vm = 8;
  // Disable scaling so size stays constant.
  params.min_vms = 2;
  params.max_vms = 2;
  VmCluster vm(&clock_, &rng_, params, pricing);
  clock_.RunUntil(1 * kHours);
  double expected = 2 * 8 * pricing.vm_price_per_vcpu_hour;
  EXPECT_NEAR(vm.AccruedCostUsd(), expected, 1e-9);
}

TEST_F(VmClusterTest, CapacityCallbackFiresOnFinish) {
  VmCluster vm(&clock_, &rng_, DefaultParams(), PricingModel{});
  int calls = 0;
  vm.SetCapacityAvailableCallback([&] { ++calls; });
  ASSERT_TRUE(vm.TryStartQuery());
  vm.FinishQuery();
  EXPECT_EQ(calls, 1);
}

TEST_F(VmClusterTest, MetricsRecordConcurrencyAndVms) {
  VmCluster vm(&clock_, &rng_, DefaultParams(), PricingModel{});
  ASSERT_TRUE(vm.TryStartQuery());
  vm.FinishQuery();
  EXPECT_GE(vm.metrics().GetSeries("concurrency").size(), 2u);
  EXPECT_GE(vm.metrics().GetSeries("vms").size(), 1u);
}

TEST_F(VmClusterTest, MaxVmsCapsScaleOut) {
  auto params = DefaultParams();
  params.initial_vms = 3;
  params.max_vms = 4;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(vm.TryStartQuery());
  clock_.RunUntil(10 * kMinutes);
  EXPECT_LE(vm.num_vms() + vm.pending_vms(), 4);
  vm.Stop();
}

TEST_F(VmClusterTest, TargetTrackingDoesNotOvershoot) {
  // Regression: steady concurrency just above the watermark but within
  // capacity must not grow the cluster tick after tick.
  auto params = DefaultParams();
  params.initial_vms = 4;  // 8 slots
  params.high_watermark = 5.0;
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(vm.TryStartQuery());
  // Concurrency 6 >= watermark 5, but demand fits in 8 slots.
  clock_.RunUntil(10 * kMinutes);
  EXPECT_EQ(vm.num_vms() + vm.pending_vms(), 4);
  vm.Stop();
}

TEST_F(VmClusterTest, SaturatedClusterScalesProportionallyToBacklog) {
  auto params = DefaultParams();
  params.initial_vms = 1;  // 2 slots
  VmCluster vm(&clock_, &rng_, params, PricingModel{});
  vm.Start();
  ASSERT_TRUE(vm.TryStartQuery());
  ASSERT_TRUE(vm.TryStartQuery());
  vm.SetBacklog(30);  // total demand 32 -> target = ceil(32/2) = 16 VMs
  clock_.RunUntil(10 * kSeconds);
  EXPECT_EQ(vm.num_vms() + vm.pending_vms(), 16);
  vm.Stop();
}

}  // namespace
}  // namespace pixels
