#include "server/session_shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace pixels {
namespace {

struct Entry {
  int64_t id = 0;
  double bill = 0;
  std::string note;
};

TEST(ShardedTableTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedTable<int>(1).shard_count(), 1u);
  EXPECT_EQ(ShardedTable<int>(2).shard_count(), 2u);
  EXPECT_EQ(ShardedTable<int>(3).shard_count(), 4u);
  EXPECT_EQ(ShardedTable<int>(16).shard_count(), 16u);
  EXPECT_EQ(ShardedTable<int>(17).shard_count(), 32u);
  EXPECT_EQ(ShardedTable<int>(0).shard_count(), 1u);
}

TEST(ShardedTableTest, EmplaceFindErase) {
  ShardedTable<Entry> t(4);
  Entry* e = t.Emplace(42);
  ASSERT_NE(e, nullptr);
  e->id = 42;
  e->bill = 1.5;
  EXPECT_EQ(t.Size(), 1u);
  Entry* found = t.Find(42);
  EXPECT_EQ(found, e);
  EXPECT_EQ(t.Find(7), nullptr);
  // Emplace of an existing id returns the same entry, not a reset one.
  Entry* again = t.Emplace(42);
  EXPECT_EQ(again, e);
  EXPECT_DOUBLE_EQ(again->bill, 1.5);
  EXPECT_TRUE(t.Erase(42));
  EXPECT_FALSE(t.Erase(42));
  EXPECT_EQ(t.Find(42), nullptr);
  EXPECT_EQ(t.Size(), 0u);
}

TEST(ShardedTableTest, PointersStableAcrossGrowth) {
  // The server hands out SubmissionRecord pointers that must survive any
  // number of later inserts (node-based maps guarantee it).
  ShardedTable<Entry> t(2);
  Entry* first = t.Emplace(1);
  first->bill = 123.0;
  std::vector<Entry*> handed_out{first};
  for (int64_t id = 2; id <= 5000; ++id) {
    Entry* e = t.Emplace(id);
    e->bill = static_cast<double>(id);
    if (id % 997 == 0) handed_out.push_back(e);
  }
  EXPECT_DOUBLE_EQ(first->bill, 123.0);
  EXPECT_EQ(t.Find(1), first);
  for (Entry* e : handed_out) {
    EXPECT_EQ(t.Find(e->bill == 123.0 ? 1 : static_cast<int64_t>(e->bill)), e);
  }
}

TEST(ShardedTableTest, ProjectCopiesUnderLock) {
  ShardedTable<Entry> t(4);
  Entry* e = t.Emplace(9);
  e->bill = 2.5;
  e->note = "hello";
  double bill = 0;
  EXPECT_TRUE(t.Project(
      9, [](const Entry& x) { return x.bill; }, &bill));
  EXPECT_DOUBLE_EQ(bill, 2.5);
  EXPECT_FALSE(t.Project(
      10, [](const Entry& x) { return x.bill; }, &bill));
  EXPECT_DOUBLE_EQ(bill, 2.5);  // untouched on miss
}

TEST(ShardedTableTest, ProjectBatchVisitsEachShardOnce) {
  ShardedTable<Entry> t(8);
  for (int64_t id = 1; id <= 100; ++id) t.Emplace(id)->bill = id * 10.0;
  std::vector<int64_t> ids;
  for (int64_t id = 90; id <= 110; ++id) ids.push_back(id);  // 101-110 absent
  std::vector<double> bills;
  std::vector<bool> present;
  t.ProjectBatch(
      ids, [](const Entry& x) { return x.bill; }, &bills, &present);
  ASSERT_EQ(bills.size(), ids.size());
  ASSERT_EQ(present.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] <= 100) {
      EXPECT_TRUE(present[i]);
      EXPECT_DOUBLE_EQ(bills[i], ids[i] * 10.0);
    } else {
      EXPECT_FALSE(present[i]);
      EXPECT_DOUBLE_EQ(bills[i], 0.0);
    }
  }
}

TEST(ShardedTableTest, MillionEntriesSpreadAcrossShards) {
  // Sequential ids (the server's id allocator) must fan out, not pile
  // into one shard.
  ShardedTable<int64_t> t(16);
  constexpr int64_t kN = 1'000'000;
  for (int64_t id = 1; id <= kN; ++id) *t.Emplace(id) = id;
  EXPECT_EQ(t.Size(), static_cast<size_t>(kN));
  EXPECT_EQ(*t.Find(1), 1);
  EXPECT_EQ(*t.Find(kN), kN);
}

TEST(ShardedTableTest, ConcurrentReadersDoNotBlockEachOtherOrTheWriter) {
  // The TSan target: one writer (the dispatcher) keeps inserting while
  // reader threads project batches. Readers must only ever see fully
  // written entries (writes happen under the shard lock).
  ShardedTable<Entry> t(16);
  constexpr int64_t kTotal = 20000;
  std::atomic<int64_t> high_water{0};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int64_t id = 1; id <= kTotal; ++id) {
      Entry* e = t.Emplace(id);
      e->id = id;
      e->bill = static_cast<double>(id) * 0.5;
      e->note = "q" + std::to_string(id);
      high_water.store(id, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t hw = high_water.load(std::memory_order_acquire);
        if (hw < 10) continue;
        std::vector<int64_t> ids;
        for (int64_t id = hw > 100 ? hw - 100 : 1; id <= hw; ++id) {
          ids.push_back(id);
        }
        std::vector<Entry> copies;
        std::vector<bool> present;
        t.ProjectBatch(
            ids, [](const Entry& e) { return e; }, &copies, &present);
        for (size_t i = 0; i < ids.size(); ++i) {
          if (!present[i]) continue;  // insert may still be in flight
          EXPECT_EQ(copies[i].id, ids[i]);
          EXPECT_DOUBLE_EQ(copies[i].bill, ids[i] * 0.5);
          EXPECT_EQ(copies[i].note, "q" + std::to_string(ids[i]));
        }
      }
    });
  }
  writer.join();
  for (auto& rt : readers) rt.join();
  EXPECT_EQ(t.Size(), static_cast<size_t>(kTotal));
}

}  // namespace
}  // namespace pixels
