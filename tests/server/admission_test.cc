// Admission-control policy suite (ISSUE 9 tentpole): watermark
// generalization of the seed gates, cost-based VM-vs-CF placement,
// Immediate-burst detection, and best-effort deferral/preemption
// (including the coordinator's TryRecall hook).
#include <gtest/gtest.h>

#include "server/admission.h"
#include "server/query_server.h"

namespace pixels {
namespace {

AdmissionSignals IdleSignals() {
  AdmissionSignals sig;
  sig.engine_concurrency = 0;
  sig.total_concurrency = 0;
  sig.high_watermark = 5.0;
  sig.low_watermark = 0.75;
  sig.free_slots = 8;
  sig.queue_depth = 0;
  sig.cf_available = true;
  sig.bytes_per_vcpu_second = 100e6;
  return sig;
}

AdmissionController MakeController(AdmissionParams p = {}) {
  return AdmissionController(p, PriceList{}, PricingModel{},
                             /*default_cf_workers=*/8);
}

// ---------------------------------------------------------------------------
// Watermark semantics

TEST(AdmissionControllerTest, DefaultsReproduceSeedGates) {
  AdmissionController ac = MakeController();
  AdmissionSignals sig = IdleSignals();

  // Immediate: always dispatch, CF enabled.
  AdmissionDecision d = ac.Decide(ServiceLevel::kImmediate, 1 << 30, sig, 0);
  EXPECT_TRUE(d.dispatch);
  EXPECT_TRUE(d.cf_enabled);

  // Relaxed gates on ENGINE concurrency vs the VM high watermark.
  sig.engine_concurrency = 4.9;
  EXPECT_TRUE(ac.Decide(ServiceLevel::kRelaxed, 0, sig, 0).dispatch);
  sig.engine_concurrency = 5.0;  // at the watermark: held (seed used >=)
  EXPECT_FALSE(ac.Decide(ServiceLevel::kRelaxed, 0, sig, 0).dispatch);
  // Total concurrency (held relaxed demand) must NOT close the relaxed
  // gate — the seed's "held queries don't gate themselves" invariant.
  sig.engine_concurrency = 0;
  sig.total_concurrency = 100;
  EXPECT_TRUE(ac.Decide(ServiceLevel::kRelaxed, 0, sig, 0).dispatch);

  // Best-effort gates on TOTAL concurrency vs the VM low watermark.
  sig.total_concurrency = 0.5;
  EXPECT_TRUE(ac.Decide(ServiceLevel::kBestEffort, 0, sig, 0).dispatch);
  sig.total_concurrency = 0.75;
  EXPECT_FALSE(ac.Decide(ServiceLevel::kBestEffort, 0, sig, 0).dispatch);
}

TEST(AdmissionControllerTest, ExplicitWatermarksOverrideVmDefaults) {
  AdmissionParams p;
  p.relaxed_admit_watermark = 10.0;
  p.best_effort_admit_watermark = 2.0;
  AdmissionController ac = MakeController(p);
  AdmissionSignals sig = IdleSignals();  // vm watermarks 5.0 / 0.75

  sig.engine_concurrency = 7.0;  // above VM high, below the override
  EXPECT_TRUE(ac.Decide(ServiceLevel::kRelaxed, 0, sig, 0).dispatch);
  sig.engine_concurrency = 10.0;
  EXPECT_FALSE(ac.Decide(ServiceLevel::kRelaxed, 0, sig, 0).dispatch);

  sig.total_concurrency = 1.5;  // above VM low, below the override
  EXPECT_TRUE(ac.Decide(ServiceLevel::kBestEffort, 0, sig, 0).dispatch);
  sig.total_concurrency = 2.0;
  EXPECT_FALSE(ac.Decide(ServiceLevel::kBestEffort, 0, sig, 0).dispatch);
}

// ---------------------------------------------------------------------------
// Cost-based placement

TEST(AdmissionControllerTest, CostBasedPlacementGatesCfOnBillFraction) {
  AdmissionParams p;
  p.cost_based_placement = true;
  p.cf_bill_fraction_cap = 0.5;
  AdmissionController ac = MakeController(p);
  AdmissionSignals sig = IdleSignals();

  // A 1 TB scan bills $5 at Immediate; CF cost ≈ 10000 vcpu-s at the CF
  // unit price (~$0.16 per 1000 s) — far under the $2.50 cap.
  const uint64_t tb = 1'000'000'000'000ULL;
  AdmissionDecision big = ac.Decide(ServiceLevel::kImmediate, tb, sig, 0);
  EXPECT_TRUE(big.dispatch);
  EXPECT_TRUE(big.cf_enabled);
  EXPECT_STREQ(big.reason, "cf-economical");

  // A 1 MB scan bills $0.000005; even one CF invocation fee busts the
  // fraction cap — keep it on the VM path.
  AdmissionDecision small =
      ac.Decide(ServiceLevel::kImmediate, 1'000'000, sig, 0);
  EXPECT_TRUE(small.dispatch);  // placement never delays Immediate work
  EXPECT_FALSE(small.cf_enabled);
  EXPECT_STREQ(small.reason, "cf-uneconomical");

  // CF exhausted: no fleet regardless of economics.
  sig.cf_available = false;
  AdmissionDecision no_cf = ac.Decide(ServiceLevel::kImmediate, tb, sig, 0);
  EXPECT_TRUE(no_cf.dispatch);
  EXPECT_FALSE(no_cf.cf_enabled);
  EXPECT_STREQ(no_cf.reason, "cf-unavailable");
}

TEST(AdmissionControllerTest, EstimatedCfCostScalesWithBytesAndWorkers) {
  AdmissionController ac = MakeController();
  AdmissionSignals sig = IdleSignals();
  const double c1 = ac.EstimatedCfCost(1'000'000'000ULL, sig);
  const double c2 = ac.EstimatedCfCost(2'000'000'000ULL, sig);
  EXPECT_GT(c1, 0);
  EXPECT_GT(c2, c1);
  // PricingModel arithmetic: work × CF vCPU-second price + invocations.
  PricingModel pm;
  EXPECT_DOUBLE_EQ(pm.EstimatedCfCost(10.0, 8),
                   10.0 * pm.CfPricePerVcpuSecond() +
                       8 * pm.cf_invocation_cost);
}

// ---------------------------------------------------------------------------
// Burst detection + deferral

TEST(AdmissionControllerTest, BurstWindowDetectsImmediateSpikes) {
  AdmissionParams p;
  p.preempt_best_effort = true;
  p.burst_window = 10 * kSeconds;
  p.burst_threshold = 3;
  AdmissionController ac = MakeController(p);

  ac.NoteImmediateArrival(1000);
  ac.NoteImmediateArrival(2000);
  EXPECT_FALSE(ac.BurstActive(2000));
  ac.NoteImmediateArrival(3000);
  EXPECT_TRUE(ac.BurstActive(3000));
  // The window slides: at t=12s only the t=3s arrival remains.
  EXPECT_FALSE(ac.BurstActive(12'000));

  // While a burst is active the best-effort gate stays closed even on an
  // idle cluster.
  ac.NoteImmediateArrival(20'000);
  ac.NoteImmediateArrival(20'100);
  ac.NoteImmediateArrival(20'200);
  AdmissionSignals sig = IdleSignals();
  EXPECT_FALSE(ac.ShouldReleaseBestEffort(sig, 20'300));
  AdmissionDecision d = ac.Decide(ServiceLevel::kBestEffort, 0, sig, 20'300);
  EXPECT_FALSE(d.dispatch);
  EXPECT_STREQ(d.reason, "held-immediate-burst");
  // Burst over: gate reopens.
  EXPECT_TRUE(ac.ShouldReleaseBestEffort(sig, 31'000));
}

// ---------------------------------------------------------------------------
// Adaptive best-effort watermark

TEST(AdmissionControllerTest, AdaptiveOffIsNoOp) {
  AdmissionController ac = MakeController();  // adaptive_watermarks = false
  AdaptiveInputs in;
  in.violation_rate = 1.0;  // screaming over budget
  const WatermarkUpdate u = ac.UpdateAdaptiveWatermark(in, IdleSignals());
  EXPECT_FALSE(u.changed);
  EXPECT_DOUBLE_EQ(ac.BestEffortWatermark(IdleSignals()), 0.75);
}

TEST(AdmissionControllerTest, AdaptiveRaisesWhileOverBudgetAndDecaysBack) {
  AdmissionParams p;
  p.adaptive_watermarks = true;
  p.adaptive_step = 1.0;
  p.adaptive_max_factor = 4.0;
  p.adaptive_target_violation_rate = 0.05;
  AdmissionController ac = MakeController(p);
  const AdmissionSignals sig = IdleSignals();  // static base = 0.75
  AdaptiveInputs over;
  over.violation_rate = 0.5;

  WatermarkUpdate u = ac.UpdateAdaptiveWatermark(over, sig);
  EXPECT_TRUE(u.changed);
  EXPECT_TRUE(u.raised);
  EXPECT_DOUBLE_EQ(u.old_value, 0.75);
  EXPECT_DOUBLE_EQ(u.new_value, 1.75);
  EXPECT_DOUBLE_EQ(ac.BestEffortWatermark(sig), 1.75);

  // Keeps raising until the ceiling (max(base*factor, base+step) = 3.0).
  for (int i = 0; i < 10; ++i) u = ac.UpdateAdaptiveWatermark(over, sig);
  EXPECT_DOUBLE_EQ(ac.BestEffortWatermark(sig), 3.0);
  EXPECT_FALSE(u.changed);  // pinned at the ceiling

  // Back under budget: decays one step per update, floored at the base.
  AdaptiveInputs calm;
  calm.violation_rate = 0.0;
  u = ac.UpdateAdaptiveWatermark(calm, sig);
  EXPECT_TRUE(u.changed);
  EXPECT_FALSE(u.raised);
  EXPECT_DOUBLE_EQ(u.new_value, 2.0);
  for (int i = 0; i < 10; ++i) u = ac.UpdateAdaptiveWatermark(calm, sig);
  EXPECT_DOUBLE_EQ(ac.BestEffortWatermark(sig), 0.75);
  EXPECT_FALSE(u.changed);  // resting at the static base
}

TEST(AdmissionControllerTest, AdaptiveReactsToHoldAgeAndQueueWait) {
  AdmissionParams p;
  p.adaptive_watermarks = true;
  AdmissionController ac = MakeController(p);
  const AdmissionSignals sig = IdleSignals();
  // Violation rate fine, but the oldest held query has outlived the
  // grace: that alone triggers a raise (pre-violation signal).
  AdaptiveInputs in;
  in.violation_rate = 0.0;
  in.grace_ms = 120000;
  in.oldest_hold_ms = 180000;
  EXPECT_TRUE(ac.UpdateAdaptiveWatermark(in, sig).raised);
  // Same for the windowed queue-wait p99.
  AdmissionController ac2 = MakeController(p);
  AdaptiveInputs in2;
  in2.grace_ms = 120000;
  in2.queue_wait_p99_ms = 150000;
  EXPECT_TRUE(ac2.UpdateAdaptiveWatermark(in2, sig).raised);
  // With no grace configured, hold age never triggers (no deadline).
  AdmissionController ac3 = MakeController(p);
  AdaptiveInputs in3;
  in3.grace_ms = 0;
  in3.oldest_hold_ms = 1e9;
  const WatermarkUpdate u3 = ac3.UpdateAdaptiveWatermark(in3, sig);
  EXPECT_FALSE(u3.raised);
}

TEST(AdmissionControllerTest, DecisionCarriesAuditFields) {
  AdmissionController ac = MakeController();
  AdmissionSignals sig = IdleSignals();
  sig.engine_concurrency = 1.5;
  const AdmissionDecision d =
      ac.Decide(ServiceLevel::kRelaxed, 1'000'000'000'000ull, sig, 0);
  EXPECT_DOUBLE_EQ(d.watermark, 5.0);       // VM high watermark
  EXPECT_DOUBLE_EQ(d.concurrency, 1.5);
  EXPECT_DOUBLE_EQ(d.predicted_bill_usd, 1.0);  // 1 TB at $1/TB relaxed
  EXPECT_GT(d.predicted_cf_cost_usd, 0.0);      // cf_available
}

TEST(AdmissionControllerTest, BurstDetectionOffByDefault) {
  AdmissionController ac = MakeController();
  for (int i = 0; i < 100; ++i) ac.NoteImmediateArrival(1000 + i);
  EXPECT_FALSE(ac.BurstActive(1100));
}

// ---------------------------------------------------------------------------
// Coordinator recall + end-to-end preemption

class PreemptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cparams_.vm.initial_vms = 1;
    cparams_.vm.slots_per_vm = 1;
    cparams_.vm.min_vms = 1;
    cparams_.vm.max_vms = 4;
    cparams_.vm.high_watermark = 2.0;
    cparams_.vm.low_watermark = 2.0;  // permissive best-effort gate
    cparams_.vm.scale_in_cooldown = 0;
    coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams_);
  }

  void TearDown() override { coordinator_->Stop(); }

  QuerySpec Spec(double vcpu_seconds) {
    QuerySpec q;
    q.work_vcpu_seconds = vcpu_seconds;
    q.bytes_to_scan = 1'000'000'000;
    return q;
  }

  SimClock clock_;
  Random rng_{42};
  CoordinatorParams cparams_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(PreemptionTest, TryRecallOnlyTakesQueuedQueries) {
  // Fill the single slot, then queue one more (CF off → VM queue).
  QuerySpec running = Spec(60.0);
  const int64_t running_id = coordinator_->Submit(std::move(running));
  QuerySpec queued = Spec(5.0);
  queued.bytes_to_scan = 42;
  const int64_t queued_id = coordinator_->Submit(std::move(queued));
  EXPECT_EQ(coordinator_->QueueDepth(), 1u);

  QuerySpec out;
  // Running query: not recallable.
  EXPECT_FALSE(coordinator_->TryRecall(running_id, &out));
  // Queued query: recalled, spec returned, record gone.
  EXPECT_TRUE(coordinator_->TryRecall(queued_id, &out));
  EXPECT_EQ(out.bytes_to_scan, 42u);
  EXPECT_EQ(coordinator_->QueueDepth(), 0u);
  EXPECT_EQ(coordinator_->GetQuery(queued_id), nullptr);
  EXPECT_EQ(coordinator_->metrics().Counter("queries_recalled"), 1.0);
  // Unknown / already-recalled ids fail cleanly.
  EXPECT_FALSE(coordinator_->TryRecall(queued_id, &out));
  EXPECT_FALSE(coordinator_->TryRecall(999, &out));
  clock_.RunAll();
}

TEST_F(PreemptionTest, ImmediateBurstRecallsQueuedBestEffort) {
  QueryServerParams sparams;
  sparams.poll_interval = 1 * kSeconds;
  sparams.admission.preempt_best_effort = true;
  sparams.admission.burst_window = 10 * kSeconds;
  sparams.admission.burst_threshold = 3;
  // Disable CF so immediate queries queue at the coordinator too (keeps
  // the single-slot arithmetic simple).
  cparams_.cf.max_concurrent_workers = 0;
  coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams_);
  QueryServer server(&clock_, coordinator_.get(), sparams);

  // Occupy the slot, then dispatch a best-effort query (gate 2.0 is
  // permissive) — it waits in the coordinator's VM queue.
  Submission occupy;
  occupy.level = ServiceLevel::kImmediate;
  occupy.query = Spec(600.0);
  server.Submit(std::move(occupy));
  Submission best;
  best.level = ServiceLevel::kBestEffort;
  best.query = Spec(5.0);
  const int64_t best_id = server.Submit(std::move(best));
  {
    const SubmissionRecord* rec = server.GetRecord(best_id);
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->coordinator_id, 0);  // dispatched, queued at coordinator
  }
  EXPECT_EQ(coordinator_->QueueDepth(), 1u);

  // Three immediate arrivals inside the burst window trip the preemption:
  // the best-effort query is recalled into the server's hold queue.
  for (int i = 0; i < 3; ++i) {
    Submission imm;
    imm.level = ServiceLevel::kImmediate;
    imm.query = Spec(30.0);
    server.Submit(std::move(imm));
  }
  const SubmissionRecord* rec = server.GetRecord(best_id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->coordinator_id, 0);  // recalled
  EXPECT_EQ(server.HeldQueries(), 1u);
  EXPECT_EQ(server.metrics().Counter("best_effort_preemptions"), 1.0);
  EXPECT_EQ(coordinator_->metrics().Counter("queries_recalled"), 1.0);

  // Once the burst passes and the cluster drains, the preempted query
  // still completes and bills at the best-effort rate — preemption defers,
  // never loses work.
  clock_.RunUntil(2 * kHours);
  auto status = server.GetStatus(best_id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, QueryState::kFinished);
  EXPECT_GT(status->bill_usd, 0);
  server.Stop();
}

}  // namespace
}  // namespace pixels
