// Server lifecycle + dispatcher suite (ISSUE 9): Stop-with-held-queries,
// re-entrant Submit-from-callback, backlog-signal correctness under mixed
// holds, batched status polling, client sessions, and async-vs-sync
// bill/byte identity under a seeded arrival schedule.
#include <gtest/gtest.h>

#include <vector>

#include "server/query_server.h"
#include "workload/arrivals.h"

namespace pixels {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cparams_.vm.initial_vms = 1;
    cparams_.vm.slots_per_vm = 2;
    cparams_.vm.min_vms = 1;
    cparams_.vm.max_vms = 8;
    cparams_.vm.high_watermark = 2.0;
    cparams_.vm.low_watermark = 0.75;
    cparams_.vm.monitor_interval = 5 * kSeconds;
    cparams_.vm.scale_in_cooldown = 0;
    sparams_.relaxed_grace_period = 2 * kMinutes;
    sparams_.poll_interval = 1 * kSeconds;
    Rebuild();
  }

  void TearDown() override {
    server_->Stop();
    coordinator_->Stop();
  }

  void Rebuild() {
    coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams_);
    server_ =
        std::make_unique<QueryServer>(&clock_, coordinator_.get(), sparams_);
  }

  Submission Work(ServiceLevel level, double vcpu_seconds,
                  uint64_t bytes = 1'000'000'000) {
    Submission s;
    s.level = level;
    s.query.work_vcpu_seconds = vcpu_seconds;
    s.query.bytes_to_scan = bytes;
    return s;
  }

  SimClock clock_;
  Random rng_{42};
  CoordinatorParams cparams_;
  QueryServerParams sparams_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryServer> server_;
};

// ---------------------------------------------------------------------------
// Satellite 1: Stop() must not strand held queries.

TEST_F(DispatcherTest, StopFailsHeldQueriesWithCallbacksAndMetrics) {
  // Saturate the 2 slots, then hold one relaxed and one best-effort query.
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  int relaxed_cb = 0, best_cb = 0;
  int64_t relaxed_id = server_->Submit(
      Work(ServiceLevel::kRelaxed, 1.0),
      [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
        ++relaxed_cb;
        EXPECT_TRUE(srec.cancelled);
        EXPECT_TRUE(srec.billed);
        EXPECT_DOUBLE_EQ(srec.bill_usd, 0.0);
        EXPECT_EQ(qrec.state, QueryState::kFailed);
        EXPECT_FALSE(qrec.error.empty());
      });
  int64_t best_id = server_->Submit(
      Work(ServiceLevel::kBestEffort, 1.0),
      [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
        ++best_cb;
        EXPECT_TRUE(srec.cancelled);
        EXPECT_EQ(qrec.state, QueryState::kFailed);
      });
  EXPECT_EQ(server_->HeldQueries(), 2u);

  server_->Stop();

  EXPECT_EQ(relaxed_cb, 1);
  EXPECT_EQ(best_cb, 1);
  EXPECT_EQ(server_->HeldQueries(), 0u);
  EXPECT_EQ(server_->metrics().Counter("submissions_cancelled"), 2.0);
  EXPECT_EQ(server_->metrics().Counter("submissions_cancelled_relaxed"), 1.0);
  EXPECT_EQ(server_->metrics().Counter("submissions_cancelled_best-of-effort"),
            1.0);
  // Status reflects the cancellation: failed, zero bill, explicit error.
  auto rstatus = server_->GetStatus(relaxed_id);
  ASSERT_TRUE(rstatus.ok());
  EXPECT_EQ(rstatus->state, QueryState::kFailed);
  EXPECT_TRUE(rstatus->cancelled);
  EXPECT_FALSE(rstatus->error.empty());
  EXPECT_DOUBLE_EQ(rstatus->bill_usd, 0.0);
  auto bstatus = server_->GetStatus(best_id);
  ASSERT_TRUE(bstatus.ok());
  EXPECT_TRUE(bstatus->cancelled);
  // Cancelled holds never billed anything.
  EXPECT_DOUBLE_EQ(server_->TotalBilledUsd(), 0.0);
  // The simulation drains: the poll loop is gone.
  clock_.RunAll();
}

TEST_F(DispatcherTest, StopEndsHoldAndQuerySpans) {
  Tracer tracer(TraceLevel::kSpans);
  cparams_.tracer = &tracer;
  cparams_.trace_level = TraceLevel::kSpans;
  Rebuild();
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  server_->Submit(Work(ServiceLevel::kRelaxed, 1.0));
  server_->Submit(Work(ServiceLevel::kBestEffort, 1.0));
  EXPECT_EQ(server_->HeldQueries(), 2u);
  server_->Stop();
  // Every hold span is closed with the cancellation reason; the held
  // queries' root spans are closed too.
  int holds = 0;
  for (const TraceSpan& s : tracer.FindSpans("hold")) {
    ++holds;
    EXPECT_GE(s.end, 0) << "hold span left open by Stop()";
    bool annotated = false;
    for (const auto& [k, v] : s.attrs) {
      if (k == "released_by" && v == "server-stopped") annotated = true;
    }
    EXPECT_TRUE(annotated);
  }
  EXPECT_EQ(holds, 2);
  int cancelled_roots = 0;
  for (const TraceSpan& s : tracer.FindSpans("query")) {
    for (const auto& [k, v] : s.attrs) {
      if (k == "state" && v == "cancelled") {
        ++cancelled_roots;
        EXPECT_GE(s.end, 0) << "cancelled query span left open";
      }
    }
  }
  EXPECT_EQ(cancelled_roots, 2);
}

TEST_F(DispatcherTest, StopIsIdempotentAndRunningQueriesStillSettle) {
  double billed = -1;
  server_->Submit(Work(ServiceLevel::kImmediate, 1.0, 1'000'000'000'000ULL),
                  [&](const SubmissionRecord& srec, const QueryRecord&) {
                    billed = srec.bill_usd;
                  });
  server_->Stop();
  server_->Stop();  // second stop: no double-cancel, no double-count
  EXPECT_EQ(server_->metrics().Counter("submissions_cancelled"), 0.0);
  // The already-dispatched query keeps running and bills normally.
  clock_.RunUntil(1 * kMinutes);
  EXPECT_DOUBLE_EQ(billed, 5.0);
  EXPECT_DOUBLE_EQ(server_->TotalBilledUsd(), 5.0);
}

// ---------------------------------------------------------------------------
// Satellite 3: re-entrant Submit from a finish callback.

TEST_F(DispatcherTest, ReentrantSubmitFromCallbackIsSafe) {
  // The seed held `SubmissionRecord& srec = records_[id]` across the
  // callback; a Submit() inside the callback could rehash the map and
  // invalidate it. The record snapshot handed to the callback must stay
  // intact, and the nested submission must settle normally.
  std::vector<double> bills;
  int64_t nested_id = -1;
  server_->Submit(
      Work(ServiceLevel::kImmediate, 1.0, 1'000'000'000'000ULL),
      [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
        // Force many inserts from inside the callback.
        for (int i = 0; i < 64; ++i) {
          server_->Submit(Work(ServiceLevel::kImmediate, 0.1));
        }
        nested_id = server_->Submit(
            Work(ServiceLevel::kImmediate, 1.0, 2'000'000'000'000ULL),
            [&](const SubmissionRecord& nested, const QueryRecord&) {
              bills.push_back(nested.bill_usd);
            });
        // The outer record is still coherent after the nested submits.
        EXPECT_TRUE(srec.billed);
        EXPECT_DOUBLE_EQ(srec.bill_usd, 5.0);
        EXPECT_EQ(qrec.state, QueryState::kFinished);
        bills.push_back(srec.bill_usd);
      });
  clock_.RunUntil(30 * kMinutes);
  ASSERT_EQ(bills.size(), 2u);
  EXPECT_DOUBLE_EQ(bills[0], 5.0);
  EXPECT_DOUBLE_EQ(bills[1], 10.0);
  ASSERT_GT(nested_id, 0);
  EXPECT_EQ(server_->GetStatus(nested_id)->state, QueryState::kFinished);
  // Re-entrant messages were absorbed by the active pump, never nested.
  EXPECT_GT(server_->dispatcher_stats().reentrant_enqueues, 0u);
}

TEST_F(DispatcherTest, ReentrantSubmitFromCallbackIsSafeInSyncMode) {
  sparams_.async_dispatch = false;
  Rebuild();
  int settled = 0;
  server_->Submit(Work(ServiceLevel::kImmediate, 1.0),
                  [&](const SubmissionRecord& srec, const QueryRecord&) {
                    for (int i = 0; i < 64; ++i) {
                      server_->Submit(Work(ServiceLevel::kImmediate, 0.1));
                    }
                    EXPECT_TRUE(srec.billed);
                    ++settled;
                  });
  clock_.RunUntil(30 * kMinutes);
  EXPECT_EQ(settled, 1);
  EXPECT_EQ(server_->dispatcher_stats().messages, 0u);  // mailbox unused
}

// ---------------------------------------------------------------------------
// Satellite 2: backlog signals under mixed holds.

TEST_F(DispatcherTest, BacklogSignalsSeparateRelaxedAndBestEffortHolds) {
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  for (int i = 0; i < 3; ++i) {
    server_->Submit(Work(ServiceLevel::kRelaxed, 1.0));
  }
  for (int i = 0; i < 2; ++i) {
    server_->Submit(Work(ServiceLevel::kBestEffort, 1.0));
  }
  EXPECT_EQ(server_->HeldQueries(), 5u);
  VmCluster& vm = coordinator_->vm_cluster();
  // Relaxed holds feed the autoscaling backlog (drives scale-out)...
  EXPECT_EQ(vm.backlog(), 3);
  // ...best-effort holds feed the separate deferred signal (blocks
  // scale-in) — the seed dropped them entirely.
  EXPECT_EQ(vm.deferred_backlog(), 2);
  // Best-effort holds must NOT raise Concurrency(): they gate themselves
  // on the low watermark, so counting them would close their own gate
  // forever.
  EXPECT_DOUBLE_EQ(vm.Concurrency(), 2.0 + 3.0);
}

TEST_F(DispatcherTest, BestEffortDispatchUpdatesDeferredBacklog) {
  server_->Submit(Work(ServiceLevel::kImmediate, 20.0));
  server_->Submit(Work(ServiceLevel::kBestEffort, 1.0));
  EXPECT_EQ(coordinator_->vm_cluster().deferred_backlog(), 1);
  // Once the immediate query finishes, the poll dispatches the hold and
  // the deferred signal returns to zero (the seed never updated it on
  // dispatch).
  clock_.RunUntil(10 * kMinutes);
  EXPECT_EQ(server_->HeldQueries(), 0u);
  EXPECT_EQ(coordinator_->vm_cluster().deferred_backlog(), 0);
}

TEST_F(DispatcherTest, DeferredBacklogBlocksScaleIn) {
  // A cluster idling above min_vms normally scales in; a pending
  // best-effort hold must block that (the work is about to run there).
  cparams_.vm.initial_vms = 4;
  cparams_.vm.min_vms = 1;
  cparams_.vm.scale_in_window = 20 * kSeconds;
  Rebuild();
  coordinator_->Start();
  // One long immediate query keeps concurrency at 1 — above the 0.75 low
  // watermark, so the best-effort query stays held; average concurrency
  // 1 >= low watermark means no scale-in either way. Drop below by
  // finishing it, with the hold still pending (gate: concurrency 0 < 0.75
  // releases it though). Instead: pin deferred backlog directly.
  coordinator_->SetExternalPending(0, 3);
  clock_.RunUntil(10 * kMinutes);
  EXPECT_EQ(coordinator_->vm_cluster().scale_in_events(), 0);
  EXPECT_EQ(coordinator_->vm_cluster().num_vms(), 4);
  // Clearing the deferred signal lets the idle cluster shrink again.
  coordinator_->SetExternalPending(0, 0);
  clock_.RunUntil(20 * kMinutes);
  EXPECT_GT(coordinator_->vm_cluster().scale_in_events(), 0);
}

// ---------------------------------------------------------------------------
// Batched status polling + client sessions (tentpole surface).

TEST_F(DispatcherTest, BatchedStatusMatchesSingleStatus) {
  std::vector<int64_t> ids;
  ids.push_back(server_->Submit(Work(ServiceLevel::kImmediate, 1.0)));
  ids.push_back(server_->Submit(Work(ServiceLevel::kImmediate, 500.0)));
  ids.push_back(server_->Submit(Work(ServiceLevel::kImmediate, 500.0)));
  ids.push_back(server_->Submit(Work(ServiceLevel::kRelaxed, 1.0)));
  ids.push_back(9999);  // unknown
  clock_.RunUntil(30 * kSeconds);
  std::vector<bool> found;
  std::vector<QueryServer::StatusView> batch =
      server_->GetStatusBatch(ids, &found);
  ASSERT_EQ(batch.size(), ids.size());
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(found[i]);
    auto single = server_->GetStatus(ids[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i].state, single->state) << "id " << ids[i];
    EXPECT_EQ(batch[i].level, single->level);
    EXPECT_DOUBLE_EQ(batch[i].bill_usd, single->bill_usd);
    EXPECT_EQ(batch[i].pending_ms, single->pending_ms);
  }
  EXPECT_FALSE(found.back());
  EXPECT_EQ(batch.back().state, QueryState::kPending);  // default view
}

TEST_F(DispatcherTest, ClientSessionsAggregateBills) {
  const int64_t sid = server_->OpenSession();
  ASSERT_GT(sid, 0);
  EXPECT_EQ(server_->OpenSessions(), 1u);
  Submission a = Work(ServiceLevel::kImmediate, 1.0, 1'000'000'000'000ULL);
  a.session_id = sid;
  Submission b = Work(ServiceLevel::kRelaxed, 1.0, 1'000'000'000'000ULL);
  b.session_id = sid;
  server_->Submit(std::move(a));
  server_->Submit(std::move(b));
  clock_.RunUntil(10 * kMinutes);
  const ClientSession* cs = server_->GetSession(sid);
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->queries_submitted, 2);
  EXPECT_EQ(cs->queries_settled, 2);
  EXPECT_DOUBLE_EQ(cs->billed_usd, 6.0);  // $5 immediate + $1 relaxed
  EXPECT_TRUE(server_->CloseSession(sid));
  EXPECT_FALSE(server_->CloseSession(sid));
  EXPECT_EQ(server_->OpenSessions(), 0u);
  EXPECT_EQ(server_->SessionCount(), 1u);  // history is kept
  EXPECT_EQ(server_->GetSession(777), nullptr);
}

// ---------------------------------------------------------------------------
// The standing invariant: async dispatcher vs synchronous path produce
// byte-identical bills, bytes, and outcomes for the same seeded schedule.

struct RunSummary {
  std::vector<double> bills;
  std::vector<uint64_t> bytes;
  std::vector<SimTime> dispatch_times;
  std::vector<int> states;
  double total_billed = 0;
};

RunSummary RunSchedule(const CoordinatorParams& cparams,
                       QueryServerParams sparams, bool async) {
  sparams.async_dispatch = async;
  SimClock clock;
  Random rng(7);
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServer server(&clock, &coordinator, sparams);
  coordinator.Start();

  // Seeded bursty schedule mixing all three levels.
  Random arr_rng(1234);
  std::vector<SimTime> arrivals = SpikeArrivals(
      &arr_rng, /*base_rate=*/0.4, /*spike_rate=*/4.0,
      /*spike_start=*/2 * kMinutes, /*spike_duration=*/1 * kMinutes,
      /*duration=*/8 * kMinutes);
  Random mix_rng(99);
  RunSummary out;
  out.bills.resize(arrivals.size(), -1);
  out.bytes.resize(arrivals.size(), 0);
  out.dispatch_times.resize(arrivals.size(), -2);
  out.states.resize(arrivals.size(), -1);
  std::vector<int64_t> ids(arrivals.size(), 0);
  std::vector<ServiceLevel> levels(arrivals.size());
  std::vector<uint64_t> szs(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const double r = mix_rng.NextDouble();
    levels[i] = r < 0.3 ? ServiceLevel::kImmediate
                        : (r < 0.7 ? ServiceLevel::kRelaxed
                                   : ServiceLevel::kBestEffort);
    szs[i] = 500'000'000ULL + static_cast<uint64_t>(mix_rng.NextDouble() *
                                                    2'500'000'000.0);
  }
  for (size_t i = 0; i < arrivals.size(); ++i) {
    clock.ScheduleAt(arrivals[i], [&, i] {
      Submission s;
      s.level = levels[i];
      s.query.bytes_to_scan = szs[i];
      s.query.work_vcpu_seconds =
          static_cast<double>(szs[i]) / 100e6;
      ids[i] = server.Submit(
          s, [&out, i](const SubmissionRecord& srec, const QueryRecord& qrec) {
            out.bills[i] = srec.bill_usd;
            out.bytes[i] = qrec.bytes_scanned;
            out.dispatch_times[i] = srec.dispatch_time;
            out.states[i] = static_cast<int>(qrec.state);
          });
    });
  }
  clock.RunUntil(arrivals.back() + 2 * kHours);
  out.total_billed = server.TotalBilledUsd();
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  return out;
}

TEST_F(DispatcherTest, AsyncAndSyncPathsAreByteIdentical) {
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.max_vms = 8;
  cparams.vm.high_watermark = 3.0;
  cparams.vm.low_watermark = 0.75;
  cparams.vm.scale_in_cooldown = 0;
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 90 * kSeconds;
  sparams.poll_interval = 2 * kSeconds;

  const RunSummary sync_run = RunSchedule(cparams, sparams, /*async=*/false);
  const RunSummary async_run = RunSchedule(cparams, sparams, /*async=*/true);

  ASSERT_EQ(sync_run.bills.size(), async_run.bills.size());
  for (size_t i = 0; i < sync_run.bills.size(); ++i) {
    EXPECT_EQ(sync_run.bills[i], async_run.bills[i]) << "query " << i;
    EXPECT_EQ(sync_run.bytes[i], async_run.bytes[i]) << "query " << i;
    EXPECT_EQ(sync_run.dispatch_times[i], async_run.dispatch_times[i])
        << "query " << i;
    EXPECT_EQ(sync_run.states[i], async_run.states[i]) << "query " << i;
  }
  EXPECT_EQ(sync_run.total_billed, async_run.total_billed);
}

TEST_F(DispatcherTest, DispatcherStatsCountTraffic) {
  server_->Submit(Work(ServiceLevel::kImmediate, 1.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 500.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 500.0));
  server_->Submit(Work(ServiceLevel::kRelaxed, 1.0));  // held -> polls
  clock_.RunUntil(5 * kMinutes);
  const DispatcherStats& ds = server_->dispatcher_stats();
  EXPECT_EQ(ds.submits, 4u);
  EXPECT_GE(ds.completions, 4u);
  EXPECT_GT(ds.polls, 0u);
  EXPECT_EQ(ds.messages, ds.submits + ds.completions + ds.polls);
  EXPECT_GT(ds.pumps, 0u);
  // The metrics snapshot surfaces the same counters as gauges.
  MetricsRegistry snap = server_->MetricsSnapshot();
  EXPECT_EQ(snap.Gauge("dispatcher_messages"),
            static_cast<double>(ds.messages));
}

}  // namespace
}  // namespace pixels
