#include "server/query_server.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace pixels {
namespace {

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoordinatorParams cparams;
    cparams.vm.initial_vms = 1;
    cparams.vm.slots_per_vm = 2;
    cparams.vm.min_vms = 1;
    cparams.vm.max_vms = 8;
    cparams.vm.high_watermark = 2.0;
    cparams.vm.low_watermark = 0.75;
    cparams.vm.monitor_interval = 5 * kSeconds;
    cparams.vm.scale_in_cooldown = 0;
    coordinator_ = std::make_unique<Coordinator>(&clock_, &rng_, cparams);
    QueryServerParams sparams;
    sparams.relaxed_grace_period = 2 * kMinutes;
    sparams.poll_interval = 1 * kSeconds;
    server_ = std::make_unique<QueryServer>(&clock_, coordinator_.get(), sparams);
  }

  void TearDown() override {
    server_->Stop();
    coordinator_->Stop();
  }

  Submission Work(ServiceLevel level, double vcpu_seconds,
                  uint64_t bytes = 1'000'000'000) {
    Submission s;
    s.level = level;
    s.query.work_vcpu_seconds = vcpu_seconds;
    s.query.bytes_to_scan = bytes;
    return s;
  }

  SimClock clock_;
  Random rng_{42};
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(QueryServerTest, ImmediateStartsAtOnce) {
  // Saturate the cluster first (capacity 2, watermark 2).
  server_->Submit(Work(ServiceLevel::kImmediate, 500.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 500.0));
  int64_t id = server_->Submit(Work(ServiceLevel::kImmediate, 6.0));
  auto status = server_->GetStatus(id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, QueryState::kRunning);
  EXPECT_TRUE(status->used_cf);  // cluster saturated -> CF acceleration
  clock_.RunUntil(1 * kMinutes);
  status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kFinished);
  EXPECT_EQ(status->pending_ms, 0);
}

TEST_F(QueryServerTest, ImmediateOnIdleClusterUsesVm) {
  int64_t id = server_->Submit(Work(ServiceLevel::kImmediate, 2.0));
  clock_.RunUntil(1 * kMinutes);
  auto status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kFinished);
  EXPECT_FALSE(status->used_cf);  // idle cluster never needs CF
}

TEST_F(QueryServerTest, RelaxedDispatchesImmediatelyWhenIdle) {
  int64_t id = server_->Submit(Work(ServiceLevel::kRelaxed, 2.0));
  auto status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kRunning);
  clock_.RunAll();
  status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kFinished);
  EXPECT_FALSE(status->used_cf);
}

TEST_F(QueryServerTest, RelaxedHeldWhileBusyThenDispatched) {
  server_->Submit(Work(ServiceLevel::kImmediate, 30.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 30.0));
  // Concurrency now 2 >= high watermark 2 -> relaxed is held.
  int64_t id = server_->Submit(Work(ServiceLevel::kRelaxed, 2.0));
  EXPECT_EQ(server_->HeldQueries(), 1u);
  auto status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kPending);
  clock_.RunUntil(10 * kMinutes);
  status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kFinished);
  EXPECT_FALSE(status->used_cf);  // relaxed never uses CF
  EXPECT_GT(status->pending_ms, 0);
}

TEST_F(QueryServerTest, RelaxedGracePeriodBoundsPendingTime) {
  // Keep the cluster saturated well past the grace period.
  for (int i = 0; i < 12; ++i) {
    server_->Submit(Work(ServiceLevel::kImmediate, 10000.0));
  }
  int64_t id = server_->Submit(Work(ServiceLevel::kRelaxed, 2.0));
  clock_.RunUntil(3 * kMinutes);
  // After the 2-minute grace period the query must have left the server
  // queue (it may still be pending inside the coordinator).
  const SubmissionRecord* rec = server_->GetRecord(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->coordinator_id, 0);
  EXPECT_LE(rec->dispatch_time - rec->received_time,
            2 * kMinutes + 2 * kSeconds);
}

TEST_F(QueryServerTest, BestEffortWaitsForIdleCluster) {
  server_->Submit(Work(ServiceLevel::kImmediate, 60.0));
  // Concurrency 1 >= low watermark 0.75 -> best-effort held.
  int64_t id = server_->Submit(Work(ServiceLevel::kBestEffort, 2.0));
  EXPECT_EQ(server_->HeldQueries(), 1u);
  clock_.RunUntil(30 * kMinutes);
  auto status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kFinished);
  // It only started after the immediate query finished (~60s mark).
  EXPECT_GT(status->pending_ms, 10 * kSeconds);
}

TEST_F(QueryServerTest, BestEffortRunsAtOnceOnIdleCluster) {
  int64_t id = server_->Submit(Work(ServiceLevel::kBestEffort, 1.0));
  auto status = server_->GetStatus(id);
  EXPECT_EQ(status->state, QueryState::kRunning);
  clock_.RunAll();
}

TEST_F(QueryServerTest, BillingFollowsPriceList) {
  const uint64_t tb = 1'000'000'000'000ULL;
  int64_t i_id = server_->Submit(Work(ServiceLevel::kImmediate, 1.0, tb));
  clock_.RunUntil(1 * kMinutes);
  int64_t r_id = server_->Submit(Work(ServiceLevel::kRelaxed, 1.0, tb));
  clock_.RunUntil(2 * kMinutes);
  int64_t b_id = server_->Submit(Work(ServiceLevel::kBestEffort, 1.0, tb));
  clock_.RunUntil(30 * kMinutes);
  EXPECT_DOUBLE_EQ(server_->GetStatus(i_id)->bill_usd, 5.0);
  EXPECT_DOUBLE_EQ(server_->GetStatus(r_id)->bill_usd, 1.0);
  EXPECT_DOUBLE_EQ(server_->GetStatus(b_id)->bill_usd, 0.5);
  EXPECT_DOUBLE_EQ(server_->TotalBilledUsd(), 6.5);
}

TEST_F(QueryServerTest, FinishCallbackReceivesBothRecords) {
  bool called = false;
  server_->Submit(Work(ServiceLevel::kImmediate, 1.0),
                  [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
                    called = true;
                    EXPECT_GT(srec.bill_usd, 0);
                    EXPECT_EQ(qrec.state, QueryState::kFinished);
                  });
  clock_.RunUntil(1 * kMinutes);
  EXPECT_TRUE(called);
}

TEST_F(QueryServerTest, GetStatusUnknownIdFails) {
  EXPECT_TRUE(server_->GetStatus(999).status().IsNotFound());
}

TEST_F(QueryServerTest, StatusTransitionsThroughStates) {
  // Two 100-vCPU-s queries saturate the cluster until ~25s; the relaxed
  // query then runs for ~15s.
  server_->Submit(Work(ServiceLevel::kImmediate, 100.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 100.0));
  int64_t id = server_->Submit(Work(ServiceLevel::kRelaxed, 60.0));
  EXPECT_EQ(server_->GetStatus(id)->state, QueryState::kPending);
  clock_.RunUntil(30 * kSeconds);
  EXPECT_EQ(server_->GetStatus(id)->state, QueryState::kRunning);
  clock_.RunUntil(5 * kMinutes);
  EXPECT_EQ(server_->GetStatus(id)->state, QueryState::kFinished);
}

TEST_F(QueryServerTest, ServiceLevelsOrderPendingTimes) {
  // The paper's core behavioural claim: pending-time bounds order as
  // immediate <= relaxed <= best-of-effort under load.
  for (int i = 0; i < 4; ++i) {
    server_->Submit(Work(ServiceLevel::kImmediate, 120.0));
  }
  int64_t imm = server_->Submit(Work(ServiceLevel::kImmediate, 4.0));
  int64_t rel = server_->Submit(Work(ServiceLevel::kRelaxed, 4.0));
  int64_t best = server_->Submit(Work(ServiceLevel::kBestEffort, 4.0));
  clock_.RunUntil(60 * kMinutes);
  SimTime p_imm = server_->GetStatus(imm)->pending_ms;
  SimTime p_rel = server_->GetStatus(rel)->pending_ms;
  SimTime p_best = server_->GetStatus(best)->pending_ms;
  EXPECT_EQ(server_->GetStatus(imm)->state, QueryState::kFinished);
  EXPECT_EQ(server_->GetStatus(rel)->state, QueryState::kFinished);
  EXPECT_EQ(server_->GetStatus(best)->state, QueryState::kFinished);
  EXPECT_LE(p_imm, p_rel);
  EXPECT_LE(p_rel, p_best);
  EXPECT_EQ(p_imm, 0);
}

TEST_F(QueryServerTest, ResultLimitTruncatesRealResults) {
  auto catalog = testing::BuildTestCatalog();
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  Coordinator coord(&clock_, &rng_, cparams, catalog);
  QueryServer server(&clock_, &coord);
  Submission s;
  s.level = ServiceLevel::kImmediate;
  s.query.sql = "SELECT id FROM emp ORDER BY id";
  s.query.db = "db";
  s.query.execute_real = true;
  s.result_limit = 3;
  TablePtr result;
  server.Submit(s, [&](const SubmissionRecord&, const QueryRecord& qrec) {
    result = qrec.result;
  });
  clock_.RunAll();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->num_rows(), 3u);
  server.Stop();
}

TEST_F(QueryServerTest, MvReuseBillsDiscountedAndAudited) {
  auto catalog = testing::BuildTestCatalog();
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.mv_store_bytes = 64ULL << 20;
  Coordinator coord(&clock_, &rng_, cparams, catalog);
  QueryServerParams sparams;
  QueryServer server(&clock_, &coord, sparams);

  auto run = [&] {
    Submission s;
    s.level = ServiceLevel::kImmediate;
    s.query.sql = "SELECT dept, count(*) AS n FROM emp GROUP BY dept";
    s.query.db = "db";
    s.query.execute_real = true;
    struct Out {
      int64_t id = 0;
      double bill = -1;
      bool mv_hit = false;
      uint64_t saved = 0;
      TablePtr result;
    } out;
    out.id = server.Submit(
        s, [&out](const SubmissionRecord& srec, const QueryRecord& qrec) {
          out.bill = srec.bill_usd;
          out.mv_hit = srec.mv_hit;
          out.saved = srec.mv_saved_bytes;
          out.result = qrec.result;
        });
    clock_.RunUntil(clock_.Now() + 5 * kMinutes);
    return out;
  };

  auto first = run();
  ASSERT_NE(first.result, nullptr);
  EXPECT_FALSE(first.mv_hit);
  EXPECT_EQ(first.saved, 0u);
  ASSERT_GT(first.bill, 0);

  auto second = run();
  ASSERT_NE(second.result, nullptr);
  EXPECT_TRUE(second.mv_hit);
  EXPECT_GT(second.saved, 0u);
  // The repeat scans nothing and bills the reuse fraction of the
  // original: strictly cheaper, never free.
  EXPECT_NEAR(second.bill / first.bill, sparams.mv_reuse_bill_fraction,
              1e-9);
  EXPECT_EQ(second.result->num_rows(), first.result->num_rows());

  // The MV fields surface in the status view and the audit counters.
  auto status = server.GetStatus(second.id);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->mv_hit);
  EXPECT_EQ(status->mv_saved_bytes, second.saved);
  EXPECT_EQ(server.metrics().Counter("mv_hits"), 1.0);
  EXPECT_EQ(server.metrics().Counter("mv_saved_bytes"),
            static_cast<double>(second.saved));
  EXPECT_GT(server.metrics().Counter("mv_discount_usd"), 0.0);
  EXPECT_EQ(coord.metrics().Counter("mv_hits"), 1.0);

  // A write invalidates: the third run re-scans and re-bills in full.
  ASSERT_TRUE(catalog->AddTableFile("db", "emp", "db/emp/part0.pxl").ok());
  auto third = run();
  EXPECT_FALSE(third.mv_hit);
  EXPECT_GT(third.bill, first.bill * 0.5);  // full-rate again
  server.Stop();
}

TEST_F(QueryServerTest, HeldQueriesDoNotGateThemselves) {
  // Regression: held relaxed queries count toward the autoscaling signal
  // but must NOT count toward their own dispatch gate, or they deadlock
  // until the grace period even on an idle cluster.
  // Saturate the 2 VM slots.
  server_->Submit(Work(ServiceLevel::kImmediate, 40.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 40.0));
  // Hold a pile of relaxed queries.
  std::vector<int64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(server_->Submit(Work(ServiceLevel::kRelaxed, 1.0)));
  }
  EXPECT_EQ(server_->HeldQueries(), 10u);
  // Held demand is visible to the autoscaler...
  EXPECT_GE(coordinator_->Concurrency(), 10.0);
  // ...but not to the engine-side gate metric.
  EXPECT_DOUBLE_EQ(coordinator_->EngineConcurrency(), 2.0);
  // Once the immediate queries finish (~10s), every relaxed query should
  // dispatch long before the 2-minute grace period.
  clock_.RunUntil(60 * kSeconds);
  for (int64_t id : ids) {
    EXPECT_EQ(server_->GetStatus(id)->state, QueryState::kFinished)
        << "query " << id;
  }
}

TEST_F(QueryServerTest, StoppedServerRejectsSubmissions) {
  // Regression: a stopped server no longer polls, so accepting a held
  // query would strand it (and its callback) forever. Submit must fail
  // loudly instead.
  int64_t before = server_->Submit(Work(ServiceLevel::kImmediate, 1.0));
  EXPECT_GT(before, 0);
  server_->Stop();
  bool callback_fired = false;
  int64_t after = server_->Submit(
      Work(ServiceLevel::kRelaxed, 1.0),
      [&](const SubmissionRecord&, const QueryRecord&) {
        callback_fired = true;
      });
  EXPECT_EQ(after, -1);
  EXPECT_EQ(server_->GetRecord(-1), nullptr);
  EXPECT_TRUE(server_->GetStatus(-1).status().IsNotFound());
  EXPECT_EQ(server_->HeldQueries(), 0u);
  EXPECT_EQ(server_->metrics().Counter("submissions_rejected"), 1.0);
  clock_.RunAll();
  EXPECT_FALSE(callback_fired);
}

TEST_F(QueryServerTest, RelaxedDispatchesAtExactGraceDeadline) {
  // The poll must fire at min(poll_interval, nearest deadline - now):
  // with a 30s interval and a 45s grace period the old fixed cadence
  // would overshoot the deadline to t=60s; deadline-aware scheduling
  // dispatches at exactly t=45s.
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 45 * kSeconds;
  sparams.poll_interval = 30 * kSeconds;
  QueryServer server(&clock_, coordinator_.get(), sparams);
  // Saturate the cluster far past the grace period.
  for (int i = 0; i < 6; ++i) {
    server.Submit(Work(ServiceLevel::kImmediate, 10000.0));
  }
  int64_t id = server.Submit(Work(ServiceLevel::kRelaxed, 1.0));
  clock_.RunUntil(2 * kMinutes);
  const SubmissionRecord* rec = server.GetRecord(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_GT(rec->coordinator_id, 0);  // left the server queue
  EXPECT_EQ(rec->dispatch_time - rec->received_time, 45 * kSeconds);
  server.Stop();
}

TEST_F(QueryServerTest, BillingSettlesExactlyOnce) {
  // The idempotence guard: the first completion marks the submission
  // settled, so the callback fires once and the bill accumulates once.
  int calls = 0;
  int64_t id = server_->Submit(
      Work(ServiceLevel::kImmediate, 1.0, 1'000'000'000'000ULL),
      [&](const SubmissionRecord& srec, const QueryRecord&) {
        ++calls;
        EXPECT_TRUE(srec.billed);
      });
  clock_.RunUntil(1 * kMinutes);
  EXPECT_EQ(calls, 1);
  const SubmissionRecord* rec = server_->GetRecord(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->billed);
  EXPECT_DOUBLE_EQ(rec->bill_usd, 5.0);
  EXPECT_DOUBLE_EQ(server_->TotalBilledUsd(), 5.0);
}

TEST_F(QueryServerTest, FailedQueryReachesFailedStateAndIsNotBilled) {
  auto catalog = testing::BuildTestCatalog();
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.mv_store_bytes = 64ULL << 20;  // MV enabled: must stay empty
  Coordinator coord(&clock_, &rng_, cparams, catalog);
  QueryServer server(&clock_, &coord);

  Submission s;
  s.level = ServiceLevel::kImmediate;
  s.query.sql = "SELECT no_such_column FROM emp";
  s.query.db = "db";
  s.query.execute_real = true;
  bool callback_fired = false;
  int64_t id = server.Submit(
      s, [&](const SubmissionRecord& srec, const QueryRecord& qrec) {
        callback_fired = true;
        EXPECT_EQ(qrec.state, QueryState::kFailed);
        EXPECT_DOUBLE_EQ(srec.bill_usd, 0.0);
        EXPECT_TRUE(srec.billed);  // settled: can never bill later
      });
  clock_.RunAll();

  // The failure is visible through GetStatus: kFailed + non-empty error.
  auto status = server.GetStatus(id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, QueryState::kFailed);
  EXPECT_FALSE(status->error.empty());
  EXPECT_DOUBLE_EQ(status->bill_usd, 0.0);
  EXPECT_TRUE(callback_fired);
  EXPECT_DOUBLE_EQ(server.TotalBilledUsd(), 0.0);
  EXPECT_EQ(server.metrics().Counter("queries_failed"), 1.0);
  // A failed query never inserts a partial result into the MV store.
  ASSERT_NE(coord.mv_store(), nullptr);
  EXPECT_EQ(coord.mv_store()->stats().entries, 0u);
  server.Stop();
}

TEST_F(QueryServerTest, ExternalPendingDrivesScaleOut) {
  coordinator_->Start();
  // Saturate and hold many relaxed queries; the cluster must scale out
  // during the grace period (paper: the grace period "gives time for the
  // VM cluster to scale out").
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  server_->Submit(Work(ServiceLevel::kImmediate, 600.0));
  for (int i = 0; i < 12; ++i) {
    server_->Submit(Work(ServiceLevel::kRelaxed, 30.0));
  }
  clock_.RunUntil(30 * kSeconds);
  EXPECT_GT(coordinator_->vm_cluster().pending_vms() +
                coordinator_->vm_cluster().num_vms(),
            1);
  clock_.RunUntil(10 * kMinutes);
}

}  // namespace
}  // namespace pixels
