#include "server/service_level.h"

#include <gtest/gtest.h>

#include "cloud/pricing.h"

namespace pixels {
namespace {

TEST(ServiceLevelTest, NamesRoundTrip) {
  for (ServiceLevel level : {ServiceLevel::kImmediate, ServiceLevel::kRelaxed,
                             ServiceLevel::kBestEffort}) {
    auto parsed = ServiceLevelFromName(ServiceLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_TRUE(ServiceLevelFromName("turbo").status().IsInvalidArgument());
  EXPECT_TRUE(ServiceLevelFromName("best-effort").ok());
}

TEST(ServiceLevelTest, PaperPriceList) {
  // Paper §3.2: immediate $5/TB (Athena parity), relaxed 20%, best 10%.
  PriceList prices;
  EXPECT_DOUBLE_EQ(prices.RateFor(ServiceLevel::kImmediate), 5.0);
  EXPECT_DOUBLE_EQ(prices.RateFor(ServiceLevel::kRelaxed), 1.0);
  EXPECT_DOUBLE_EQ(prices.RateFor(ServiceLevel::kBestEffort), 0.5);
  EXPECT_DOUBLE_EQ(prices.RateFor(ServiceLevel::kRelaxed) /
                       prices.RateFor(ServiceLevel::kImmediate),
                   0.2);
  EXPECT_DOUBLE_EQ(prices.RateFor(ServiceLevel::kBestEffort) /
                       prices.RateFor(ServiceLevel::kImmediate),
                   0.1);
}

TEST(ServiceLevelTest, BillScalesWithBytes) {
  PriceList prices;
  EXPECT_DOUBLE_EQ(prices.Bill(ServiceLevel::kImmediate,
                               static_cast<uint64_t>(kBytesPerTB)),
                   5.0);
  EXPECT_DOUBLE_EQ(
      prices.Bill(ServiceLevel::kRelaxed, static_cast<uint64_t>(kBytesPerTB / 2)),
      0.5);
  EXPECT_DOUBLE_EQ(prices.Bill(ServiceLevel::kBestEffort, 0), 0.0);
}

TEST(ServiceLevelTest, GigabyteScaleBills) {
  PriceList prices;
  // 10 GB at $5/TB = $0.05.
  EXPECT_NEAR(prices.Bill(ServiceLevel::kImmediate, 10'000'000'000ULL), 0.05,
              1e-12);
}

}  // namespace
}  // namespace pixels
