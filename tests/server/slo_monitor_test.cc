// SLO monitor tests: verdict edge cases (cancelled, failed, no-grace
// levels), the met+violated+excluded==settled exactness invariant, error
// budget math, windowed rates — then end-to-end against a real QueryServer
// run: verdicts recomputed from QueryRecord ground truth, byte-identical
// audit-log exports across identical runs, and bill/bytes invariance with
// the event log and adaptive watermarks on or off.
#include "server/slo_monitor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "server/query_server.h"

namespace pixels {
namespace {

// ---------------------------------------------------------------------------
// Unit: verdict edge cases

TEST(SloMonitorTest, NoGraceLevelIsMetIfCompleted) {
  SloParams p;  // immediate_grace = 0 (no deadline)
  SloMonitor mon(p, /*default_relaxed_grace=*/5 * kMinutes);
  // Started absurdly late: still met, because the level has no deadline.
  const SloOutcome out =
      mon.OnSettled(ServiceLevel::kImmediate, QueryState::kFinished,
                    /*cancelled=*/false, /*received=*/0,
                    /*start=*/2 * kHours, /*now=*/3 * kHours);
  EXPECT_EQ(out.verdict, SloVerdict::kMet);
  EXPECT_FALSE(out.scored_margin);
  EXPECT_FALSE(out.budget_consumed);
}

TEST(SloMonitorTest, RelaxedVerdictFromTimeToStart) {
  SloParams p;  // relaxed_grace inherits the default below
  SloMonitor mon(p, /*default_relaxed_grace=*/2 * kMinutes);
  EXPECT_EQ(mon.GraceFor(ServiceLevel::kRelaxed), 2 * kMinutes);
  // Started 30s after receipt: met with 90s margin.
  SloOutcome met =
      mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false,
                    /*received=*/1000, /*start=*/1000 + 30 * kSeconds,
                    /*now=*/5 * kMinutes);
  EXPECT_EQ(met.verdict, SloVerdict::kMet);
  EXPECT_TRUE(met.scored_margin);
  EXPECT_EQ(met.margin_ms, 90 * kSeconds);
  EXPECT_FALSE(met.budget_consumed);
  // Started 3 minutes after receipt: violated by 1 minute.
  SloOutcome violated =
      mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false,
                    /*received=*/0, /*start=*/3 * kMinutes,
                    /*now=*/10 * kMinutes);
  EXPECT_EQ(violated.verdict, SloVerdict::kViolated);
  EXPECT_TRUE(violated.scored_margin);
  EXPECT_EQ(violated.margin_ms, -(1 * kMinutes));
  EXPECT_TRUE(violated.budget_consumed);
}

TEST(SloMonitorTest, CancelledIsExcludedWithoutBudgetImpact) {
  SloParams p;
  SloMonitor mon(p, 2 * kMinutes);
  const SloOutcome out =
      mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFailed,
                    /*cancelled=*/true, /*received=*/0, /*start=*/-1,
                    /*now=*/1 * kMinutes);
  EXPECT_EQ(out.verdict, SloVerdict::kExcluded);
  EXPECT_FALSE(out.budget_consumed);
  const SloReport rep = mon.Report(1 * kMinutes);
  const SloLevelReport& lvl = rep.Level(ServiceLevel::kRelaxed);
  EXPECT_EQ(lvl.settled, 1u);
  EXPECT_EQ(lvl.excluded, 1u);
  EXPECT_EQ(lvl.cancelled, 1u);
  EXPECT_EQ(lvl.failed, 0u);
  EXPECT_EQ(lvl.budget_consumed, 0.0);
  EXPECT_EQ(lvl.compliance, 1.0);  // nothing scored
}

TEST(SloMonitorTest, FailedIsExcludedButBurnsBudget) {
  SloParams p;
  p.violation_budget = 0.5;
  SloMonitor mon(p, 2 * kMinutes);
  const SloOutcome out =
      mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFailed,
                    /*cancelled=*/false, /*received=*/0, /*start=*/500,
                    /*now=*/1 * kMinutes);
  EXPECT_EQ(out.verdict, SloVerdict::kExcluded);
  EXPECT_TRUE(out.budget_consumed);
  // One met alongside, so the budget base is 2 scored-or-failed.
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false, 0,
                1000, 2 * kMinutes);
  const SloReport rep = mon.Report(2 * kMinutes);
  const SloLevelReport& lvl = rep.Level(ServiceLevel::kRelaxed);
  EXPECT_EQ(lvl.settled, 2u);
  EXPECT_EQ(lvl.met, 1u);
  EXPECT_EQ(lvl.violated, 0u);
  EXPECT_EQ(lvl.excluded, 1u);
  EXPECT_EQ(lvl.failed, 1u);
  // Compliance excludes the failure; the budget does not.
  EXPECT_EQ(lvl.compliance, 1.0);
  EXPECT_DOUBLE_EQ(lvl.budget_allowed, 0.5 * 2);
  EXPECT_DOUBLE_EQ(lvl.budget_consumed, 1.0);
  EXPECT_DOUBLE_EQ(lvl.budget_remaining, 0.0);
}

TEST(SloMonitorTest, ExactnessInvariantAcrossMixedOutcomes) {
  SloParams p;
  SloMonitor mon(p, 1 * kMinutes);
  // A deterministic pseudo-random mix across all levels and outcomes.
  for (int i = 0; i < 200; ++i) {
    const auto level = static_cast<ServiceLevel>(i % 3);
    const SimTime received = static_cast<SimTime>(i) * kSeconds;
    const int kind = (i * 7) % 5;
    if (kind == 0) {
      mon.OnSettled(level, QueryState::kFailed, /*cancelled=*/true, received,
                    -1, received + kMinutes);
    } else if (kind == 1) {
      mon.OnSettled(level, QueryState::kFailed, false, received,
                    received + 10 * kSeconds, received + kMinutes);
    } else {
      // Finished; start delay sweeps through met and violated territory.
      const SimTime start = received + (i % 7) * 20 * kSeconds;
      mon.OnSettled(level, QueryState::kFinished, false, received, start,
                    start + kMinutes);
    }
  }
  const SloReport rep = mon.Report(500 * kSeconds);
  uint64_t settled = 0;
  for (int l = 0; l < 3; ++l) {
    const SloLevelReport& lvl = rep.levels[l];
    EXPECT_EQ(lvl.met + lvl.violated + lvl.excluded, lvl.settled)
        << "level " << l;
    EXPECT_EQ(lvl.excluded, lvl.failed + lvl.cancelled) << "level " << l;
    settled += lvl.settled;
  }
  EXPECT_EQ(settled, 200u);
}

TEST(SloMonitorTest, WindowViolationRateTrimsOldOutcomes) {
  SloParams p;
  p.window = 10 * kSeconds;
  SloMonitor mon(p, 1 * kSeconds);  // relaxed grace 1s
  // Two violations early, then two met later.
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false, 0,
                5 * kSeconds, 5 * kSeconds);
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false, 0,
                6 * kSeconds, 6 * kSeconds);
  EXPECT_DOUBLE_EQ(mon.WindowViolationRate(ServiceLevel::kRelaxed,
                                           6 * kSeconds),
                   1.0);
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false,
                20 * kSeconds, 20 * kSeconds, 21 * kSeconds);
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false,
                21 * kSeconds, 21 * kSeconds, 22 * kSeconds);
  // The early violations fell out of the 10s window.
  EXPECT_DOUBLE_EQ(mon.WindowViolationRate(ServiceLevel::kRelaxed,
                                           25 * kSeconds),
                   0.0);
  // Cumulative counters are NOT windowed.
  const SloReport rep = mon.Report(25 * kSeconds);
  EXPECT_EQ(rep.Level(ServiceLevel::kRelaxed).violated, 2u);
  EXPECT_EQ(rep.Level(ServiceLevel::kRelaxed).met, 2u);
}

TEST(SloMonitorTest, MergeIntoExportsValidPrometheus) {
  SloParams p;
  SloMonitor mon(p, 2 * kMinutes);
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false, 0,
                30 * kSeconds, kMinutes);
  mon.OnSettled(ServiceLevel::kRelaxed, QueryState::kFinished, false, 0,
                3 * kMinutes, 4 * kMinutes);
  mon.ObserveQueueDepth(kMinutes, 2.0);
  MetricsRegistry out;
  mon.MergeInto(&out, 5 * kMinutes);
  EXPECT_EQ(out.Counter("slo_settled_total{level=\"relaxed\"}"), 2.0);
  EXPECT_EQ(out.Counter("slo_met_total{level=\"relaxed\"}"), 1.0);
  EXPECT_EQ(out.Counter("slo_violated_total{level=\"relaxed\"}"), 1.0);
  EXPECT_DOUBLE_EQ(out.Gauge("slo_compliance{level=\"relaxed\"}"), 0.5);
  // The signed margin histogram survived with its custom bounds.
  const Histogram h = out.GetHistogram("slo_margin_ms{level=\"relaxed\"}");
  EXPECT_EQ(h.count(), 2u);
  ASSERT_FALSE(h.bounds().empty());
  EXPECT_LT(h.bounds().front(), 0.0);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(out.ToPrometheusText(), &error))
      << error;
}

// ---------------------------------------------------------------------------
// Integration: a real QueryServer run

struct RunConfig {
  bool event_log = false;
  bool adaptive = false;
  SimTime best_effort_grace = 0;
};

struct RunResult {
  double total_billed = 0;
  std::map<int64_t, double> bills;          // server_id -> bill
  std::map<int64_t, uint64_t> bytes;        // server_id -> bytes scanned
  SloReport report;
  std::string event_log_lines;
  // Ground truth per submission for verdict recomputation.
  struct Truth {
    ServiceLevel level;
    SimTime received = 0;
    SimTime start = -1;
    QueryState state = QueryState::kPending;
  };
  std::map<int64_t, Truth> truth;
};

Submission SimWork(ServiceLevel level, double vcpu_seconds,
                   uint64_t bytes = 1'000'000'000) {
  Submission s;
  s.level = level;
  s.query.work_vcpu_seconds = vcpu_seconds;
  s.query.bytes_to_scan = bytes;
  return s;
}

// One deterministic bursty schedule: saturating Immediate work arrives in
// waves while relaxed and best-effort queries trickle in. Runs to full
// drain, so every submission settles (no cancels) and the outcome is a
// pure function of the config.
RunResult RunWorkload(const RunConfig& cfg) {
  SimClock clock;
  Random rng{7};
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 4;
  cparams.vm.high_watermark = 2.0;
  cparams.vm.low_watermark = 0.75;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.vm.scale_in_cooldown = 0;
  if (cfg.event_log) cparams.event_log_capacity = 1 << 16;
  Coordinator coordinator(&clock, &rng, cparams);

  QueryServerParams sparams;
  sparams.relaxed_grace_period = 2 * kMinutes;
  sparams.poll_interval = 1 * kSeconds;
  sparams.slo.best_effort_grace = cfg.best_effort_grace;
  sparams.admission.adaptive_watermarks = cfg.adaptive;
  QueryServer server(&clock, &coordinator, sparams);

  std::vector<int64_t> ids;
  // Three Immediate waves that saturate the cluster...
  for (int wave = 0; wave < 3; ++wave) {
    clock.Schedule(wave * 4 * kMinutes, [&server, &ids] {
      for (int i = 0; i < 4; ++i) {
        ids.push_back(server.Submit(SimWork(ServiceLevel::kImmediate, 90.0)));
      }
    });
  }
  // ...with relaxed and best-effort arrivals interleaved.
  for (int i = 0; i < 6; ++i) {
    clock.Schedule(30 * kSeconds + i * 2 * kMinutes, [&server, &ids] {
      ids.push_back(server.Submit(SimWork(ServiceLevel::kRelaxed, 10.0)));
    });
    clock.Schedule(kMinutes + i * 2 * kMinutes, [&server, &ids] {
      ids.push_back(server.Submit(SimWork(ServiceLevel::kBestEffort, 5.0)));
    });
  }
  clock.RunUntil(4 * kHours);  // full drain

  RunResult out;
  out.total_billed = server.TotalBilledUsd();
  for (const int64_t id : ids) {
    const SubmissionRecord* rec = server.GetRecord(id);
    if (rec == nullptr) continue;
    out.bills[id] = rec->bill_usd;
    RunResult::Truth t;
    t.level = rec->level;
    t.received = rec->received_time;
    if (rec->coordinator_id != 0) {
      const QueryRecord* qrec = coordinator.GetQuery(rec->coordinator_id);
      if (qrec != nullptr) {
        t.start = qrec->start_time;
        t.state = qrec->state;
        out.bytes[id] = qrec->bytes_scanned;
      }
    }
    out.truth[id] = t;
  }
  out.report = server.SloReport();
  if (coordinator.event_log() != nullptr) {
    out.event_log_lines = coordinator.event_log()->ToJsonLines();
  }
  server.Stop();
  coordinator.Stop();
  return out;
}

TEST(SloEndToEndTest, VerdictsMatchGroundTruthRecompute) {
  RunConfig cfg;
  cfg.best_effort_grace = 2 * kMinutes;  // give best-effort a deadline too
  const RunResult run = RunWorkload(cfg);

  // Recompute every verdict from the records alone and compare against
  // the monitor's cumulative counters.
  uint64_t met[3] = {0, 0, 0};
  uint64_t violated[3] = {0, 0, 0};
  uint64_t excluded[3] = {0, 0, 0};
  const SimTime graces[3] = {0, 2 * kMinutes, 2 * kMinutes};
  for (const auto& [id, t] : run.truth) {
    const size_t l = static_cast<size_t>(t.level);
    if (t.state != QueryState::kFinished) {
      excluded[l]++;
      continue;
    }
    if (graces[l] <= 0) {
      met[l]++;
      continue;
    }
    const SimTime pending = t.start >= t.received ? t.start - t.received : 0;
    if (pending <= graces[l]) {
      met[l]++;
    } else {
      violated[l]++;
    }
  }
  for (int l = 0; l < 3; ++l) {
    const SloLevelReport& lvl = run.report.levels[l];
    EXPECT_EQ(lvl.met, met[l]) << "level " << l;
    EXPECT_EQ(lvl.violated, violated[l]) << "level " << l;
    EXPECT_EQ(lvl.excluded, excluded[l]) << "level " << l;
    EXPECT_EQ(lvl.met + lvl.violated + lvl.excluded, lvl.settled)
        << "level " << l;
  }
  // The saturating schedule must actually exercise both verdicts
  // somewhere, or this test proves nothing.
  EXPECT_GT(run.report.Level(ServiceLevel::kImmediate).met, 0u);
  uint64_t total_scored = 0;
  for (int l = 0; l < 3; ++l) {
    total_scored += run.report.levels[l].met + run.report.levels[l].violated;
  }
  EXPECT_GT(total_scored, 0u);
}

TEST(SloEndToEndTest, IdenticalRunsExportByteIdenticalEventLogs) {
  RunConfig cfg;
  cfg.event_log = true;
  const RunResult a = RunWorkload(cfg);
  const RunResult b = RunWorkload(cfg);
  ASSERT_FALSE(a.event_log_lines.empty());
  EXPECT_EQ(a.event_log_lines, b.event_log_lines);
}

TEST(SloEndToEndTest, EventLogDoesNotChangeResultsOrBills) {
  RunConfig off;
  RunConfig on;
  on.event_log = true;
  const RunResult a = RunWorkload(off);
  const RunResult b = RunWorkload(on);
  EXPECT_DOUBLE_EQ(a.total_billed, b.total_billed);
  EXPECT_EQ(a.bills, b.bills);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(SloEndToEndTest, AdaptiveWatermarksPreserveBillsAndBytes) {
  // Adaptivity may change WHEN best-effort queries run, but never their
  // results, scanned bytes, or bills (bill = f(level, bytes) only).
  RunConfig static_cfg;
  static_cfg.best_effort_grace = 2 * kMinutes;
  RunConfig adaptive_cfg = static_cfg;
  adaptive_cfg.adaptive = true;
  const RunResult a = RunWorkload(static_cfg);
  const RunResult b = RunWorkload(adaptive_cfg);
  EXPECT_DOUBLE_EQ(a.total_billed, b.total_billed);
  EXPECT_EQ(a.bills, b.bills);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(SloEndToEndTest, CancelledAtStopIsExcludedNotViolated) {
  SimClock clock;
  Random rng{7};
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 1;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 1;
  cparams.vm.high_watermark = 1.0;
  cparams.vm.low_watermark = 0.5;
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 10 * kMinutes;
  QueryServer server(&clock, &coordinator, sparams);
  // Saturate, then hold a relaxed query and stop before it dispatches.
  server.Submit(SimWork(ServiceLevel::kImmediate, 500.0));
  server.Submit(SimWork(ServiceLevel::kRelaxed, 5.0));
  ASSERT_EQ(server.HeldQueries(), 1u);
  clock.RunUntil(10 * kSeconds);
  server.Stop();
  const SloReport rep = server.SloReport();
  const SloLevelReport& relaxed = rep.Level(ServiceLevel::kRelaxed);
  EXPECT_EQ(relaxed.settled, 1u);
  EXPECT_EQ(relaxed.cancelled, 1u);
  EXPECT_EQ(relaxed.excluded, 1u);
  EXPECT_EQ(relaxed.violated, 0u);
  EXPECT_EQ(relaxed.met, 0u);
  EXPECT_EQ(relaxed.budget_consumed, 0.0);
  coordinator.Stop();
}

TEST(SloEndToEndTest, SettleEventsCarryVerdicts) {
  RunConfig cfg;
  cfg.event_log = true;
  const RunResult run = RunWorkload(cfg);
  ASSERT_FALSE(run.event_log_lines.empty());
  // Every settled query leaves exactly one query.settle event, and its
  // verdict is one of the three names.
  size_t settles = 0;
  size_t pos = 0;
  while (pos < run.event_log_lines.size()) {
    size_t eol = run.event_log_lines.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string line = run.event_log_lines.substr(pos, eol - pos);
    pos = eol + 1;
    auto doc = Json::Parse(line);
    ASSERT_TRUE(doc.ok()) << line;
    if (doc->Get("type").AsString() != "query.settle") continue;
    settles++;
    const std::string verdict = doc->Get("verdict").AsString();
    EXPECT_TRUE(verdict == "met" || verdict == "violated" ||
                verdict == "excluded")
        << verdict;
  }
  uint64_t settled = 0;
  for (int l = 0; l < 3; ++l) settled += run.report.levels[l].settled;
  EXPECT_EQ(settles, settled);
}

}  // namespace
}  // namespace pixels
