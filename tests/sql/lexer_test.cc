#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

TEST(LexerTest, KeywordsAreUppercased) {
  auto r = Tokenize("select From WHERE");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*r)[0].text, "SELECT");
  EXPECT_EQ((*r)[1].text, "FROM");
  EXPECT_EQ((*r)[2].text, "WHERE");
  EXPECT_EQ((*r)[3].type, TokenType::kEof);
}

TEST(LexerTest, IdentifiersAreLowercased) {
  auto r = Tokenize("LineItem l_ExtendedPrice");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*r)[0].text, "lineitem");
  EXPECT_EQ((*r)[1].text, "l_extendedprice");
}

TEST(LexerTest, QuotedIdentifiersPreserveCase) {
  auto r = Tokenize("\"MyColumn\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*r)[0].text, "MyColumn");
}

TEST(LexerTest, IntAndDoubleLiterals) {
  auto r = Tokenize("42 3.14 1e3 2.5E-2 .5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kIntLiteral);
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_EQ((*r)[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*r)[1].double_value, 3.14);
  EXPECT_DOUBLE_EQ((*r)[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*r)[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ((*r)[4].double_value, 0.5);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto r = Tokenize("'hello' 'it''s' ''");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*r)[0].text, "hello");
  EXPECT_EQ((*r)[1].text, "it's");
  EXPECT_EQ((*r)[2].text, "");
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto r = Tokenize("= <> != <= >= < > + - * / % . , ( ) ||");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "=");
  EXPECT_EQ((*r)[1].text, "<>");
  EXPECT_EQ((*r)[2].text, "<>");  // != normalized
  EXPECT_EQ((*r)[3].text, "<=");
  EXPECT_EQ((*r)[4].text, ">=");
  EXPECT_EQ((*r)[16].text, "||");
}

TEST(LexerTest, LineCommentsSkipped) {
  auto r = Tokenize("SELECT -- a comment\n1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // SELECT, 1, EOF
  EXPECT_EQ((*r)[1].int_value, 1);
}

TEST(LexerTest, MinusVsComment) {
  auto r = Tokenize("1 - 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[1].text, "-");
  EXPECT_EQ((*r)[2].int_value, 2);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, UnterminatedQuotedIdentifierFails) {
  EXPECT_TRUE(Tokenize("\"oops").status().IsParseError());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_TRUE(Tokenize("SELECT @x").status().IsParseError());
}

TEST(LexerTest, OffsetsRecorded) {
  auto r = Tokenize("ab cd");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].offset, 0u);
  EXPECT_EQ((*r)[1].offset, 3u);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto r = Tokenize("   \n\t ");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].type, TokenType::kEof);
}

TEST(LexerTest, ReservedKeywordCheck) {
  EXPECT_TRUE(IsReservedKeyword("SELECT"));
  EXPECT_TRUE(IsReservedKeyword("BETWEEN"));
  EXPECT_FALSE(IsReservedKeyword("select"));  // expects upper case
  EXPECT_FALSE(IsReservedKeyword("lineitem"));
}

}  // namespace
}  // namespace pixels
