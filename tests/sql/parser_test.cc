#include "sql/parser.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

SelectStmtPtr MustParse(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).ValueOrDie() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = MustParse("SELECT a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->name, "a");
  EXPECT_EQ(stmt->from.table, "t");
  EXPECT_EQ(stmt->limit, -1);
}

TEST(ParserTest, SelectStar) {
  auto stmt = MustParse("SELECT * FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->kind, Expr::Kind::kStar);
}

TEST(ParserTest, SelectWithoutFrom) {
  auto stmt = MustParse("SELECT 1 + 2");
  ASSERT_NE(stmt, nullptr);
  EXPECT_FALSE(stmt->has_from);
  // Parser folds negative literals only; 1+2 stays a binary op.
  EXPECT_EQ(stmt->items[0].expr->kind, Expr::Kind::kBinary);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = MustParse("SELECT a AS x, b y FROM t AS u");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_EQ(stmt->from.alias, "u");
}

TEST(ParserTest, QualifiedColumns) {
  auto stmt = MustParse("SELECT t.a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->qualifier, "t");
  EXPECT_EQ(stmt->items[0].expr->name, "a");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = MustParse("SELECT 1 + 2 * 3 FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "(1 + (2 * 3))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = MustParse("SELECT (1 + 2) * 3 FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "((1 + 2) * 3)");
}

TEST(ParserTest, LogicalPrecedence) {
  auto stmt = MustParse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_NE(stmt, nullptr);
  // AND binds tighter than OR.
  EXPECT_EQ(stmt->where->op, "OR");
  EXPECT_EQ(stmt->where->args[1]->op, "AND");
}

TEST(ParserTest, NotPrecedence) {
  auto stmt = MustParse("SELECT a FROM t WHERE NOT x = 1 AND y = 2");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->op, "AND");
  EXPECT_EQ(stmt->where->args[0]->op, "NOT");
}

TEST(ParserTest, ComparisonOperators) {
  for (const char* op : {"=", "<>", "<", "<=", ">", ">="}) {
    auto stmt = MustParse(std::string("SELECT a FROM t WHERE a ") + op + " 1");
    ASSERT_NE(stmt, nullptr);
    EXPECT_EQ(stmt->where->op, op);
  }
}

TEST(ParserTest, BetweenAndNotBetween) {
  auto stmt = MustParse("SELECT a FROM t WHERE a BETWEEN 1 AND 10");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->kind, Expr::Kind::kBetween);
  EXPECT_FALSE(stmt->where->negated);

  stmt = MustParse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->where->negated);
}

TEST(ParserTest, BetweenBindsBeforeAnd) {
  auto stmt = MustParse("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b = 2");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->op, "AND");
  EXPECT_EQ(stmt->where->args[0]->kind, Expr::Kind::kBetween);
}

TEST(ParserTest, InList) {
  auto stmt = MustParse("SELECT a FROM t WHERE a IN (1, 2, 3)");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->kind, Expr::Kind::kInList);
  EXPECT_EQ(stmt->where->args.size(), 4u);  // expr + 3 items
  stmt = MustParse("SELECT a FROM t WHERE a NOT IN ('x')");
  EXPECT_TRUE(stmt->where->negated);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto stmt = MustParse("SELECT a FROM t WHERE a IS NULL");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE(stmt->where->negated);
  stmt = MustParse("SELECT a FROM t WHERE a IS NOT NULL");
  EXPECT_TRUE(stmt->where->negated);
}

TEST(ParserTest, LikeAndNotLike) {
  auto stmt = MustParse("SELECT a FROM t WHERE name LIKE '%x%'");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->where->op, "LIKE");
  stmt = MustParse("SELECT a FROM t WHERE name NOT LIKE 'y'");
  EXPECT_EQ(stmt->where->op, "NOT");
}

TEST(ParserTest, FunctionsAndAggregates) {
  auto stmt = MustParse(
      "SELECT count(*), sum(a), avg(b), min(c), max(d), count(DISTINCT e) "
      "FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items.size(), 6u);
  EXPECT_EQ(stmt->items[0].expr->name, "count");
  EXPECT_EQ(stmt->items[0].expr->args[0]->kind, Expr::Kind::kStar);
  EXPECT_TRUE(stmt->items[5].expr->distinct);
  EXPECT_TRUE(stmt->items[1].expr->ContainsAggregate());
}

TEST(ParserTest, DateLiteral) {
  auto stmt = MustParse("SELECT a FROM t WHERE d < DATE '1995-03-15'");
  ASSERT_NE(stmt, nullptr);
  const Expr& lit = *stmt->where->args[1];
  EXPECT_EQ(lit.kind, Expr::Kind::kLiteral);
  EXPECT_EQ(lit.literal.i, 9204);  // days since epoch for 1995-03-15
}

TEST(ParserTest, BadDateLiteralFails) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE d < DATE '99-99-99'").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE d < DATE 5").ok());
}

TEST(ParserTest, NullTrueFalseLiterals) {
  auto stmt = MustParse("SELECT NULL, TRUE, FALSE FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->items[0].expr->literal.is_null());
  EXPECT_EQ(stmt->items[1].expr->literal.kind, Value::Kind::kBool);
}

TEST(ParserTest, NegativeNumbersFold) {
  auto stmt = MustParse("SELECT -5, -2.5 FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->literal.i, -5);
  EXPECT_DOUBLE_EQ(stmt->items[1].expr->literal.d, -2.5);
}

TEST(ParserTest, CaseExpression) {
  auto stmt = MustParse(
      "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' "
      "END FROM t");
  ASSERT_NE(stmt, nullptr);
  const Expr& c = *stmt->items[0].expr;
  EXPECT_EQ(c.kind, Expr::Kind::kCase);
  EXPECT_TRUE(c.has_else);
  EXPECT_EQ(c.args.size(), 5u);
}

TEST(ParserTest, CaseWithoutElse) {
  auto stmt = MustParse("SELECT CASE WHEN a = 1 THEN 2 END FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_FALSE(stmt->items[0].expr->has_else);
}

TEST(ParserTest, Cast) {
  auto stmt = MustParse("SELECT CAST(a AS double) FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->name, "cast_double");
}

TEST(ParserTest, Joins) {
  auto stmt = MustParse(
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 AS z ON t2.k = "
      "z.k CROSS JOIN t4");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->joins.size(), 3u);
  EXPECT_EQ(stmt->joins[0].type, JoinClause::Type::kInner);
  EXPECT_EQ(stmt->joins[1].type, JoinClause::Type::kLeft);
  EXPECT_EQ(stmt->joins[1].table.alias, "z");
  EXPECT_EQ(stmt->joins[2].type, JoinClause::Type::kCross);
  EXPECT_EQ(stmt->joins[2].on, nullptr);
}

TEST(ParserTest, CommaJoinIsCross) {
  auto stmt = MustParse("SELECT a FROM t1, t2 WHERE t1.x = t2.y");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->joins.size(), 1u);
  EXPECT_EQ(stmt->joins[0].type, JoinClause::Type::kCross);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = MustParse(
      "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 5");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_EQ(stmt->having->op, ">");
}

TEST(ParserTest, OrderByDirections) {
  auto stmt = MustParse("SELECT a, b FROM t ORDER BY a DESC, b ASC, a + b");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 3u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_TRUE(stmt->order_by[2].ascending);
}

TEST(ParserTest, Limit) {
  auto stmt = MustParse("SELECT a FROM t LIMIT 10");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->limit, 10);
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
}

TEST(ParserTest, Distinct) {
  auto stmt = MustParse("SELECT DISTINCT a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->distinct);
}

TEST(ParserTest, StringConcat) {
  auto stmt = MustParse("SELECT a || b FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->op, "||");
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ; x").ok());
}

TEST(ParserTest, RejectsSubqueries) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE x = (SELECT 1)").ok());
}

TEST(ParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT f(a FROM t").ok());
}

TEST(ParserTest, ToStringRoundTrip) {
  const char* queries[] = {
      "SELECT a, sum(b) AS total FROM t WHERE c > 5 GROUP BY a HAVING "
      "sum(b) > 10 ORDER BY a ASC LIMIT 3",
      "SELECT * FROM t1 JOIN t2 ON t1.x = t2.y",
      "SELECT DISTINCT a FROM t",
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
  };
  for (const char* q : queries) {
    auto first = MustParse(q);
    ASSERT_NE(first, nullptr);
    auto second = MustParse(first->ToString());
    ASSERT_NE(second, nullptr) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString());
  }
}

TEST(ParserTest, CloneIsDeepAndEqual) {
  auto stmt = MustParse(
      "SELECT a, sum(b) FROM t WHERE c BETWEEN 1 AND 2 GROUP BY a ORDER BY a "
      "DESC LIMIT 1");
  ASSERT_NE(stmt, nullptr);
  auto clone = stmt->Clone();
  EXPECT_EQ(stmt->ToString(), clone->ToString());
  // Mutating the clone leaves the original untouched.
  clone->limit = 99;
  EXPECT_NE(stmt->ToString(), clone->ToString());
}

TEST(ParserTest, ExprEquals) {
  auto a = ParseExpression("x + 1 * y");
  auto b = ParseExpression("x + 1 * y");
  auto c = ParseExpression("x + 2 * y");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE((*a)->Equals(**b));
  EXPECT_FALSE((*a)->Equals(**c));
}

TEST(ParserTest, StandaloneExpressionRejectsTrailing) {
  EXPECT_FALSE(ParseExpression("1 + 2 extra").ok());
}

}  // namespace
}  // namespace pixels
