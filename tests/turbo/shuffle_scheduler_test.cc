// Stage-scheduler behavior: deterministic hedging against injected
// stragglers, first-writer-wins billing identity across serial /
// parallel / hedged runs, GC of intermediates, and the coordinator-level
// shuffle metrics export.
#include "turbo/shuffle/stage_scheduler.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "cloud/metrics.h"
#include "common/event_log.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "testing/test_db.h"
#include "turbo/cf_worker.h"
#include "turbo/coordinator.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class ShuffleSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions topt;
    topt.scale_factor = 0.002;
    topt.rows_per_file = 2000;  // several files -> real producer fan-out
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", topt).ok());
  }

  PlanPtr Plan(const std::string& sql) {
    auto plan = PlanQuery(sql, *catalog_, "tpch");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  static std::vector<std::string> Rows(const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r)
        out.push_back(b->RowToString(r));
    }
    return out;
  }

  /// Shuffle-enabled options; runtime filters off so bytes_scanned is
  /// comparable across topologies.
  CfWorkerOptions ShuffleFleet() {
    CfWorkerOptions options;
    options.num_workers = 4;
    options.runtime_filters = false;
    options.shuffle.enabled = true;
    options.shuffle.partitions = 4;
    options.shuffle.producer_tasks = 4;
    return options;
  }

  const std::string sql_ =
      "SELECT o_orderpriority, count(*) AS n, sum(l_extendedprice) AS rev "
      "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority";

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
};

// The pinned invariant of the subsystem: results, scanned bytes, and the
// billing inputs are byte-identical across a serial fleet, a parallel
// fleet, a hedged run with an injected straggler, and a hedging-off run
// with the same straggler.
TEST_F(ShuffleSchedulerTest, SerialParallelHedgedRunsAreByteIdentical) {
  auto run = [&](int fleet_par, bool hedging, double slow_ms) {
    auto options = ShuffleFleet();
    options.fleet_parallelism = fleet_par;
    options.shuffle.hedging = hedging;
    if (slow_ms > 0) {
      // Slow every attempt of stage-0 task-0 (primaries AND retries,
      // substring matches ".a1", ".a2", ...) but never the ".h" hedge.
      options.shuffle.path_slow_ms = [slow_ms](const std::string& path) {
        return path.find("s0/t0.a") != std::string::npos ? slow_ms : 0.0;
      };
    }
    auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_TRUE(exec->shuffle_used);
    return std::move(*exec);
  };

  const CfExecution serial = run(/*fleet_par=*/1, /*hedging=*/true, 0);
  const CfExecution parallel = run(/*fleet_par=*/0, /*hedging=*/true, 0);
  const CfExecution hedged = run(/*fleet_par=*/0, /*hedging=*/true, 60000.0);
  const CfExecution unhedged = run(/*fleet_par=*/0, /*hedging=*/false, 60000.0);

  const auto baseline = Rows(*serial.result);
  EXPECT_EQ(baseline, Rows(*parallel.result));
  EXPECT_EQ(baseline, Rows(*hedged.result));
  EXPECT_EQ(baseline, Rows(*unhedged.result));

  EXPECT_EQ(serial.bytes_scanned, parallel.bytes_scanned);
  EXPECT_EQ(serial.bytes_scanned, hedged.bytes_scanned);
  EXPECT_EQ(serial.bytes_scanned, unhedged.bytes_scanned);
  // Billing inputs beyond bytes: the committed task count is constant
  // (hedge winners REPLACE their primaries).
  EXPECT_EQ(serial.workers_used, hedged.workers_used);
  EXPECT_EQ(serial.work_vcpu_seconds, hedged.work_vcpu_seconds);

  // No straggler -> no hedge fires (all durations are near-uniform).
  EXPECT_EQ(serial.hedges_fired, 0);
  EXPECT_EQ(parallel.hedges_fired, 0);
  // The injected straggler fires exactly one hedge, and the hedge (which
  // dodges the slow rule) wins the commit race.
  EXPECT_EQ(hedged.hedges_fired, 1);
  EXPECT_EQ(hedged.hedges_won, 1);
  EXPECT_EQ(unhedged.hedges_fired, 0);
  // Hedging recovered simulated makespan: the hedged run's critical path
  // is far below the unhedged run's (which eats the full 60 s slow).
  EXPECT_LT(hedged.shuffle_critical_path_ms,
            unhedged.shuffle_critical_path_ms / 2);
}

// Re-running the identical hedged configuration yields identical hedge
// counters and critical path — the simulated-time race is a pure
// function of the claims, not of thread arrival order.
TEST_F(ShuffleSchedulerTest, HedgedRunIsDeterministicAcrossRepeats) {
  auto run = [&]() {
    auto options = ShuffleFleet();
    // Straggle one consumer (stage-J) task: hedging covers read-side
    // stages too, not just producers.
    options.shuffle.path_slow_ms = [](const std::string& path) {
      return path.find("s2/t1.a") != std::string::npos ? 45000.0 : 0.0;
    };
    auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    return std::move(*exec);
  };
  const CfExecution a = run();
  const CfExecution b = run();
  EXPECT_EQ(Rows(*a.result), Rows(*b.result));
  EXPECT_EQ(a.hedges_fired, b.hedges_fired);
  EXPECT_EQ(a.hedges_won, b.hedges_won);
  EXPECT_EQ(a.bytes_scanned, b.bytes_scanned);
  EXPECT_DOUBLE_EQ(a.shuffle_critical_path_ms, b.shuffle_critical_path_ms);
  ASSERT_EQ(a.shuffle_stage_wall_ms.size(), b.shuffle_stage_wall_ms.size());
  for (size_t i = 0; i < a.shuffle_stage_wall_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.shuffle_stage_wall_ms[i], b.shuffle_stage_wall_ms[i]);
  }
  EXPECT_GE(a.hedges_fired, 1);
}

// Exchange traffic is intermediate traffic: it moves through the object
// store but never inflates the scanned bytes the query bills.
TEST_F(ShuffleSchedulerTest, ExchangeBytesAreSeparateFromScanBytes) {
  auto options = ShuffleFleet();
  options.runtime_filters = true;  // default config this time
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->shuffle_used);

  CfWorkerOptions single;
  single.num_workers = 4;
  auto base = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), single);
  ASSERT_TRUE(base.ok());

  EXPECT_GT(exec->shuffle_bytes_written, 0u);
  // Consumers combined-read every data chunk but not the footers, so
  // reads land just under writes — never above, never zero.
  EXPECT_GT(exec->shuffle_bytes_read, 0u);
  EXPECT_LE(exec->shuffle_bytes_read, exec->shuffle_bytes_written);
  EXPECT_EQ(Rows(*base->result), Rows(*exec->result));
}

// Success path: the end-of-query sweep removes every exchange object and
// reports how many it removed.
TEST_F(ShuffleSchedulerTest, CompletedDagSweepsAllIntermediates) {
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(),
                                    ShuffleFleet());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec->shuffle_used);
  EXPECT_GT(exec->shuffle_objects_swept, 0u);
  auto leftovers = storage_->List("intermediate/view.shuffle");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

// Failure path: producers write their exchange objects, then every
// consumer read dies; the query fails, but the failure-path sweep still
// removes every intermediate (no leaked objects, ever).
TEST_F(ShuffleSchedulerTest, FailedDagLeavesNoIntermediates) {
  auto inter_mem = std::make_shared<MemoryStore>();
  FaultInjectionParams fparams;
  FaultRule rule;
  rule.path_substring = "exchange/";  // every exchange READ fails...
  rule.fail_first_reads = 1000000;    // ...well past any retry budget
  fparams.rules.push_back(rule);
  FaultInjectingStorage inter(inter_mem, fparams);

  auto options = ShuffleFleet();
  options.intermediate_store = &inter;  // exchange objects land here
  options.view_prefix = "exchange/view";
  options.vm_fallback = false;
  options.max_worker_attempts = 1;
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
  ASSERT_FALSE(exec.ok());  // consumer reads were unrecoverable

  // The producers DID write objects (writes were never failed), so the
  // sweep had real work — and left nothing behind.
  EXPECT_GT(inter.stats().injected_read_errors, 0u);
  EXPECT_GT(inter.stats().write_ops, 0u);
  auto leftovers = inter_mem->List("exchange/view.shuffle");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

// Coordinator integration: cf_shuffle routes an eligible CF query
// through the DAG, wires FaultInjectingStorage slow rules into the
// straggler model, and exports the per-stage metrics.
// Stage progress in the audit event log: one stage_start/stage_done pair
// per stage, and exactly ONE task_commit per (stage, task) slot no matter
// how many attempts raced for it (first-writer-wins emits only from the
// post-barrier resolution loop).
TEST_F(ShuffleSchedulerTest, EventLogRecordsExactlyOneCommitPerTaskSlot) {
  auto run = [&](double slow_ms, EventLog* log) {
    auto options = ShuffleFleet();
    options.fleet_parallelism = 0;  // parallel fleet: attempts really race
    options.event_log = log;
    if (slow_ms > 0) {
      options.shuffle.path_slow_ms = [slow_ms](const std::string& path) {
        return path.find("s0/t0.a") != std::string::npos ? slow_ms : 0.0;
      };
    }
    auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_TRUE(exec->shuffle_used);
    return std::move(*exec);
  };

  // Hedged run with a forced straggler: the hedge wins task s0/t0, so two
  // physical attempts finished for that slot.
  EventLog log;
  const CfExecution exec = run(/*slow_ms=*/60000.0, &log);
  ASSERT_EQ(exec.hedges_won, 1);

  const auto starts = log.OfType("shuffle.stage_start");
  EXPECT_EQ(starts.size(), static_cast<size_t>(exec.shuffle_stages));
  EXPECT_EQ(log.CountOfType("shuffle.stage_done"),
            static_cast<size_t>(exec.shuffle_stages));
  size_t total_slots = 0;
  for (const auto& e : starts) {
    total_slots += static_cast<size_t>(e.fields.Get("tasks").AsInt());
  }

  const auto commits = log.OfType("shuffle.task_commit");
  // One commit per committed task slot — the racing hedge loser never
  // produced a second event.
  EXPECT_EQ(commits.size(), total_slots);
  std::set<std::pair<int64_t, int64_t>> slots;
  size_t hedge_wins = 0;
  for (const auto& e : commits) {
    const auto slot = std::make_pair(e.fields.Get("stage").AsInt(),
                                     e.fields.Get("task").AsInt());
    EXPECT_TRUE(slots.insert(slot).second)
        << "duplicate commit for stage " << slot.first << " task "
        << slot.second;
    if (e.fields.Get("winner").AsString() == "hedge") hedge_wins++;
  }
  EXPECT_EQ(hedge_wins, 1u);

  // Identical runs export byte-identical logs (emissions only happen at
  // deterministic points despite the parallel fleet).
  EventLog log2;
  run(/*slow_ms=*/60000.0, &log2);
  EXPECT_EQ(log.ToJsonLines(), log2.ToJsonLines());
}

TEST(ShuffleCoordinatorTest, ShuffleMetricsReachPrometheusExport) {
  auto mem = std::make_shared<MemoryStore>();
  FaultInjectionParams fparams;
  FaultRule rule;
  rule.path_substring = ".shuffle/s0/t0.a";  // straggle one producer task
  rule.slow_ms = 60000.0;
  fparams.rules.push_back(rule);
  auto injector = std::make_shared<FaultInjectingStorage>(mem, fparams);
  auto store = std::make_shared<ObjectStore>(injector);
  auto catalog = std::make_shared<Catalog>(store);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  CoordinatorParams params;
  params.vm.initial_vms = 1;
  params.vm.slots_per_vm = 1;
  params.vm.min_vms = 1;
  params.vm.max_vms = 2;
  params.vm.monitor_interval = 5 * kSeconds;
  params.default_cf_workers = 4;
  params.cf_shuffle = true;
  params.cf_shuffle_partitions = 4;
  params.cf_shuffle_producer_tasks = 4;

  SimClock clock;
  Random rng(42);
  Coordinator coord(&clock, &rng, params, catalog);

  // Saturate the single VM slot so the join query takes the CF path.
  QuerySpec filler;
  filler.work_vcpu_seconds = 1000.0;
  coord.Submit(filler);

  QuerySpec spec;
  spec.sql =
      "SELECT o_orderpriority, count(*) AS n FROM lineitem l JOIN orders o "
      "ON l.l_orderkey = o.o_orderkey GROUP BY o_orderpriority "
      "ORDER BY o_orderpriority";
  spec.db = "tpch";
  spec.execute_real = true;
  spec.cf_enabled = true;
  int64_t id = coord.Submit(spec);
  clock.RunAll();

  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
  EXPECT_TRUE(rec->used_shuffle);
  EXPECT_EQ(rec->shuffle_stages, 3);
  EXPECT_GT(rec->shuffle_bytes_written, 0u);
  EXPECT_GT(rec->shuffle_bytes_read, 0u);
  // The injected straggler was hedged away (the slow rule reached the
  // scheduler through the decorator-stack walk).
  EXPECT_GE(rec->cf_hedges_fired, 1);
  EXPECT_GE(rec->cf_hedges_won, 1);
  EXPECT_GT(injector->stats().injected_slow_ops, 0u);

  EXPECT_DOUBLE_EQ(coord.metrics().Counter("cf_shuffle_queries"), 1.0);
  const MetricsRegistry snap = coord.MetricsSnapshot();
  const std::string text = snap.ToPrometheusText();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
  EXPECT_NE(text.find("pixels_cf_shuffle_queries"), std::string::npos);
  EXPECT_NE(text.find("pixels_cf_hedge_fired_total"), std::string::npos);
  EXPECT_NE(text.find("pixels_cf_hedge_won_total"), std::string::npos);
  EXPECT_NE(text.find("pixels_cf_stage_wall_ms"), std::string::npos);
  EXPECT_NE(text.find("pixels_cf_shuffle_bytes_written"), std::string::npos);

  // No intermediate leaked into the object store.
  auto leftovers = mem->List("intermediate/view");
  ASSERT_TRUE(leftovers.ok());
  for (const auto& f : *leftovers) {
    EXPECT_EQ(f.find(".shuffle/"), std::string::npos) << f;
  }
}

}  // namespace
}  // namespace pixels
