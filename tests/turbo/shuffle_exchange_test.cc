// Exchange-format property tests: partition-write → combined-read
// round-trips every type × null pattern × forced encoding, including the
// empty-partition and single-row-partition edges; plus the combined-read
// GET guarantee and the first-writer-wins commit race (a TSan subject).
#include "turbo/shuffle/exchange.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/random.h"
#include "common/thread_pool.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "turbo/shuffle/stage_scheduler.h"

namespace pixels {
namespace {

enum class NullPattern { kNone, kAll, kAlternating, kFirstOnly, kLastOnly };

struct ExchangeCase {
  TypeId type;
  NullPattern nulls;
  int forced_encoding;  // -1 = heuristic
};

void AppendTyped(ColumnVector* col, TypeId type, Random* rng) {
  switch (type) {
    case TypeId::kBool:
      col->AppendBool(rng->Bernoulli(0.5));
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      col->AppendInt(rng->Uniform(-1000, 1000));
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      col->AppendInt(rng->Uniform(-5000000000LL, 5000000000LL));
      break;
    case TypeId::kDouble:
      col->AppendDouble(rng->UniformDouble(-1e6, 1e6));
      break;
    case TypeId::kString:
      col->AppendString(rng->NextString(rng->Uniform(0, 12)));
      break;
  }
}

bool IsNullAt(NullPattern p, int i, int n) {
  switch (p) {
    case NullPattern::kNone: return false;
    case NullPattern::kAll: return true;
    case NullPattern::kAlternating: return i % 2 == 0;
    case NullPattern::kFirstOnly: return i == 0;
    case NullPattern::kLastOnly: return i == n - 1;
  }
  return false;
}

/// A row rendered as a comparable string (null-aware).
std::string RowKey(const RowBatch& b, size_t r) {
  std::string key;
  for (size_t c = 0; c < b.num_columns(); ++c) {
    key += b.column(c)->IsNull(r) ? "<null>" : b.column(c)->GetValue(r).ToString();
    key += "|";
  }
  return key;
}

class ExchangeRoundTripTest : public ::testing::TestWithParam<ExchangeCase> {};

TEST_P(ExchangeRoundTripTest, PartitionWriteCombinedReadRoundTrips) {
  const ExchangeCase& c = GetParam();
  Random rng(static_cast<uint64_t>(c.type) * 1000 +
             static_cast<uint64_t>(c.nulls) * 10 +
             static_cast<uint64_t>(c.forced_encoding + 1));
  const int kRows = 301;
  auto key_col = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto payload = std::make_shared<ColumnVector>(c.type);
  for (int i = 0; i < kRows; ++i) {
    // Skewed keys so some partitions are heavy and (with small key space)
    // some are empty.
    key_col->AppendInt(rng.Uniform(0, 6));
    if (IsNullAt(c.nulls, i, kRows)) {
      payload->AppendNull();
    } else {
      AppendTyped(payload.get(), c.type, &rng);
    }
  }
  auto batch = std::make_shared<RowBatch>();
  batch->AddColumn("t.k", key_col);
  batch->AddColumn("t.v", payload);
  Table table;
  table.AddBatch(batch);

  const int P = 4;
  ExprPtr key = MakeColumnRef("t", "k");
  auto parts = HashPartitionTable(table, {key.get()}, P);
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  ASSERT_EQ(parts->size(), static_cast<size_t>(P));

  // Same key always routes to the same partition.
  std::map<int64_t, size_t> key_home;
  size_t total = 0;
  for (size_t p = 0; p < parts->size(); ++p) {
    for (const auto& b : (*parts)[p]->batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) {
        const int64_t k = b->column(0)->GetValue(r).AsInt();
        auto it = key_home.find(k);
        if (it == key_home.end()) {
          key_home[k] = p;
        } else {
          EXPECT_EQ(it->second, p) << "key " << k << " split across partitions";
        }
        ++total;
      }
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kRows));

  auto storage = std::make_shared<MemoryStore>();
  auto info = WriteExchangeObject(storage.get(), "x/t0.a1", *parts,
                                  c.forced_encoding);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->bytes_written, 0u);
  EXPECT_EQ(info->num_partitions, static_cast<size_t>(P));

  auto footer = ReadExchangeFooter(storage.get(), "x/t0.a1");
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  ASSERT_EQ(footer->num_partitions(), static_cast<size_t>(P));
  ASSERT_EQ(footer->schema.size(), 2u);
  EXPECT_EQ(footer->schema[0].name, "t.k");
  EXPECT_EQ(footer->schema[1].type, c.type);

  // Every row comes back, partition by partition, values and nulls intact.
  std::multiset<std::string> want, got;
  for (const auto& b : table.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) want.insert(RowKey(*b, r));
  }
  uint64_t bytes_read = 0;
  for (int p = 0; p < P; ++p) {
    auto read = ReadExchangePartition(storage.get(), "x/t0.a1", *footer, p,
                                      &bytes_read);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ((*read)->num_rows(), footer->partition_rows[p]);
    // The read batch matches the partition we wrote, row for row.
    const Table& part = *(*parts)[p];
    size_t off = 0;
    for (const auto& pb : part.batches()) {
      for (size_t r = 0; r < pb->num_rows(); ++r, ++off) {
        EXPECT_EQ(RowKey(**read, off), RowKey(*pb, r));
      }
    }
    for (size_t r = 0; r < (*read)->num_rows(); ++r) {
      got.insert(RowKey(**read, r));
    }
  }
  EXPECT_EQ(want, got);
  EXPECT_GT(bytes_read, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesNullsEncodings, ExchangeRoundTripTest,
    ::testing::Values(
        // Heuristic encoding, every type × null pattern.
        ExchangeCase{TypeId::kBool, NullPattern::kNone, -1},
        ExchangeCase{TypeId::kBool, NullPattern::kAlternating, -1},
        ExchangeCase{TypeId::kInt32, NullPattern::kNone, -1},
        ExchangeCase{TypeId::kInt32, NullPattern::kAll, -1},
        ExchangeCase{TypeId::kInt64, NullPattern::kAlternating, -1},
        ExchangeCase{TypeId::kInt64, NullPattern::kFirstOnly, -1},
        ExchangeCase{TypeId::kDouble, NullPattern::kNone, -1},
        ExchangeCase{TypeId::kDouble, NullPattern::kLastOnly, -1},
        ExchangeCase{TypeId::kString, NullPattern::kNone, -1},
        ExchangeCase{TypeId::kString, NullPattern::kAll, -1},
        ExchangeCase{TypeId::kDate, NullPattern::kAlternating, -1},
        ExchangeCase{TypeId::kTimestamp, NullPattern::kNone, -1},
        // Forced encodings (fall back to plain when unsupported).
        ExchangeCase{TypeId::kInt64, NullPattern::kNone,
                     static_cast<int>(Encoding::kPlain)},
        ExchangeCase{TypeId::kInt64, NullPattern::kAlternating,
                     static_cast<int>(Encoding::kRunLength)},
        ExchangeCase{TypeId::kInt64, NullPattern::kNone,
                     static_cast<int>(Encoding::kDelta)},
        ExchangeCase{TypeId::kInt32, NullPattern::kFirstOnly,
                     static_cast<int>(Encoding::kDelta)},
        ExchangeCase{TypeId::kString, NullPattern::kAlternating,
                     static_cast<int>(Encoding::kDictionary)},
        ExchangeCase{TypeId::kBool, NullPattern::kNone,
                     static_cast<int>(Encoding::kBitPacked)},
        ExchangeCase{TypeId::kDouble, NullPattern::kAlternating,
                     static_cast<int>(Encoding::kDictionary)}));

TEST(ExchangeFormatTest, EmptyTableWritesEmptySchemaObject) {
  Table empty;
  ExprPtr key = MakeColumnRef("t", "k");
  auto parts = HashPartitionTable(empty, {key.get()}, 3);
  ASSERT_TRUE(parts.ok());
  auto storage = std::make_shared<MemoryStore>();
  auto info = WriteExchangeObject(storage.get(), "x/empty", *parts);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto footer = ReadExchangeFooter(storage.get(), "x/empty");
  ASSERT_TRUE(footer.ok()) << footer.status().ToString();
  EXPECT_TRUE(footer->schema.empty());
  EXPECT_EQ(footer->num_partitions(), 3u);
  for (int p = 0; p < 3; ++p) {
    auto read = ReadExchangePartition(storage.get(), "x/empty", *footer, p);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ((*read)->num_rows(), 0u);
  }
}

TEST(ExchangeFormatTest, SingleRowLeavesOtherPartitionsEmpty) {
  auto key_col = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto val_col = std::make_shared<ColumnVector>(TypeId::kString);
  key_col->AppendInt(42);
  val_col->AppendString("lonely");
  auto batch = std::make_shared<RowBatch>();
  batch->AddColumn("t.k", key_col);
  batch->AddColumn("t.v", val_col);
  Table table;
  table.AddBatch(batch);
  ExprPtr key = MakeColumnRef("t", "k");
  const int P = 8;
  auto parts = HashPartitionTable(table, {key.get()}, P);
  ASSERT_TRUE(parts.ok());
  auto storage = std::make_shared<MemoryStore>();
  auto info = WriteExchangeObject(storage.get(), "x/one", *parts);
  ASSERT_TRUE(info.ok());
  auto footer = ReadExchangeFooter(storage.get(), "x/one");
  ASSERT_TRUE(footer.ok());
  size_t nonempty = 0, total = 0;
  for (int p = 0; p < P; ++p) {
    auto read = ReadExchangePartition(storage.get(), "x/one", *footer, p);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    total += (*read)->num_rows();
    if ((*read)->num_rows() > 0) {
      ++nonempty;
      EXPECT_EQ((*read)->column(0)->GetValue(0).AsInt(), 42);
      EXPECT_EQ((*read)->column(1)->GetValue(0).s, "lonely");
    }
  }
  EXPECT_EQ(nonempty, 1u);
  EXPECT_EQ(total, 1u);
}

TEST(ExchangeFormatTest, CombinedReadIssuesOneGetPerPartition) {
  Random rng(7);
  auto key_col = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto a_col = std::make_shared<ColumnVector>(TypeId::kDouble);
  auto b_col = std::make_shared<ColumnVector>(TypeId::kString);
  for (int i = 0; i < 500; ++i) {
    key_col->AppendInt(rng.Uniform(0, 100));
    a_col->AppendDouble(rng.UniformDouble(0, 1));
    b_col->AppendString(rng.NextString(8));
  }
  auto batch = std::make_shared<RowBatch>();
  batch->AddColumn("t.k", key_col);
  batch->AddColumn("t.a", a_col);
  batch->AddColumn("t.b", b_col);
  Table table;
  table.AddBatch(batch);
  ExprPtr key = MakeColumnRef("t", "k");
  auto parts = HashPartitionTable(table, {key.get()}, 4);
  ASSERT_TRUE(parts.ok());

  auto store = std::make_shared<ObjectStore>(std::make_shared<MemoryStore>());
  ASSERT_TRUE(WriteExchangeObject(store.get(), "x/g", *parts).ok());
  auto footer = ReadExchangeFooter(store.get(), "x/g");
  ASSERT_TRUE(footer.ok());
  for (int p = 0; p < 4; ++p) {
    const uint64_t before = store->stats().get_requests;
    auto read = ReadExchangePartition(store.get(), "x/g", *footer, p);
    ASSERT_TRUE(read.ok());
    // The per-column ranges are contiguous, so they coalesce into exactly
    // one underlying GET — the combined-read guarantee.
    EXPECT_EQ(store->stats().get_requests - before, 1u) << "partition " << p;
  }
}

TEST(ExchangeFormatTest, SweepRemovesEverythingUnderPrefix) {
  auto storage = std::make_shared<MemoryStore>();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(storage
                    ->Write("q1.shuffle/s0/t" + std::to_string(i) + ".a1",
                            {1, 2, 3})
                    .ok());
  }
  ASSERT_TRUE(storage->Write("q2.shuffle/s0/t0.a1", {9}).ok());
  EXPECT_EQ(SweepExchangePrefix(storage.get(), "q1.shuffle/"), 5u);
  auto left = storage->List("q1.shuffle/");
  ASSERT_TRUE(left.ok());
  EXPECT_TRUE(left->empty());
  // Other queries' intermediates are untouched.
  EXPECT_TRUE(storage->Exists("q2.shuffle/s0/t0.a1"));
}

// First-writer-wins commit: the winner is the claim with the earliest
// SIMULATED completion (ties to the primary), regardless of which thread
// offers first. Racy by construction — the TSan CI step runs this.
TEST(ExchangeCommitTableTest, FirstWriterWinsIsDeterministicUnderRaces) {
  for (int round = 0; round < 50; ++round) {
    ExchangeCommitTable table;
    // 8 tasks × 4 claims each, offered from racing threads.
    const int kTasks = 8, kClaims = 4;
    Status st = ThreadPool::Shared()->ParallelFor(
        0, kTasks * kClaims, 1,
        [&](size_t i) {
          const int task = static_cast<int>(i) / kClaims;
          const int rank = static_cast<int>(i) % kClaims;
          // Completion times shaped so rank 1 has the minimum for even
          // tasks and there is a tie (rank 0 wins it) for odd tasks.
          double completion;
          if (task % 2 == 0) {
            completion = rank == 1 ? 10.0 : 20.0 + rank;
          } else {
            completion = rank <= 1 ? 10.0 : 20.0 + rank;
          }
          table.Offer(0, task, {rank, completion, "p" + std::to_string(rank)});
          return Status::OK();
        },
        /*max_parallelism=*/8);
    ASSERT_TRUE(st.ok());
    for (int task = 0; task < kTasks; ++task) {
      const auto held = table.Get(0, task);
      if (task % 2 == 0) {
        EXPECT_EQ(held.attempt_rank, 1) << "task " << task;
        EXPECT_EQ(held.completion_ms, 10.0);
      } else {
        // Tie at 10.0 between ranks 0 and 1 → the lower rank holds.
        EXPECT_EQ(held.attempt_rank, 0) << "task " << task;
        EXPECT_EQ(held.completion_ms, 10.0);
      }
    }
  }
}

TEST(ExchangeCommitTableTest, LoserIsReportedToTheCaller) {
  ExchangeCommitTable table;
  EXPECT_TRUE(table.Offer(0, 0, {0, 50.0, "slow"}));
  ExchangeCommitTable::Claim loser;
  EXPECT_TRUE(table.Offer(0, 0, {1, 10.0, "fast"}, &loser));
  EXPECT_EQ(loser.path, "slow");
  // A worse claim loses and comes back as its own loser.
  EXPECT_FALSE(table.Offer(0, 0, {1, 99.0, "late"}, &loser));
  EXPECT_EQ(loser.path, "late");
  EXPECT_EQ(table.Get(0, 0).path, "fast");
}

}  // namespace
}  // namespace pixels
