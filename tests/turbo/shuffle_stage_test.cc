// Stage-DAG planner tests: eligibility analysis, consumer instantiation,
// and end-to-end equivalence of the shuffle path against both direct
// execution and the single-stage CF fleet (results, bytes, and counters).
#include "turbo/shuffle/stage_graph.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "plan/subplan.h"
#include "testing/test_db.h"
#include "turbo/cf_worker.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class ShuffleStageTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = testing::BuildTestCatalog(); }

  PlanPtr Plan(const std::string& sql, Catalog* catalog,
               const std::string& db) {
    auto plan = PlanQuery(sql, *catalog, db);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  /// The CF pushdown sub-plan of `sql` (what BuildStageGraph analyzes).
  PlanPtr Subplan(const std::string& sql) {
    auto split = SplitForCf(Plan(sql, catalog_.get(), "db"));
    EXPECT_TRUE(split.ok()) << split.status().ToString();
    return split.ok() ? split->subplan : nullptr;
  }

  TablePtr Direct(const std::string& sql, Catalog* catalog,
                  const std::string& db) {
    ExecContext ctx;
    ctx.catalog = catalog;
    auto r = ExecuteQuery(sql, db, &ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  static std::vector<std::string> Rows(const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) out.push_back(b->RowToString(r));
    }
    return out;
  }

  std::shared_ptr<Catalog> catalog_;
};

const char* kJoinSql =
    "SELECT d.location, count(*) AS c FROM emp e JOIN dept d ON e.dept = "
    "d.name GROUP BY d.location ORDER BY d.location";

TEST_F(ShuffleStageTest, EquiJoinIsViable) {
  auto graph = BuildStageGraph(Subplan(kJoinSql));
  ASSERT_TRUE(graph.viable) << graph.reason;
  ASSERT_NE(graph.left, nullptr);
  ASSERT_NE(graph.right, nullptr);
  ASSERT_NE(graph.consumer, nullptr);
  ASSERT_EQ(graph.left_keys.size(), 1u);
  ASSERT_EQ(graph.right_keys.size(), 1u);
}

TEST_F(ShuffleStageTest, JoinFreePlanIsNotViable) {
  auto graph = BuildStageGraph(
      Subplan("SELECT dept, sum(salary) FROM emp GROUP BY dept"));
  EXPECT_FALSE(graph.viable);
  EXPECT_FALSE(graph.reason.empty());
}

TEST_F(ShuffleStageTest, NonEquiJoinIsNotViable) {
  auto graph = BuildStageGraph(
      Subplan("SELECT count(*) AS c FROM emp e JOIN dept d ON e.dept < "
              "d.name"));
  EXPECT_FALSE(graph.viable);
  EXPECT_FALSE(graph.reason.empty());
}

TEST_F(ShuffleStageTest, NullSubplanIsNotViable) {
  auto graph = BuildStageGraph(nullptr);
  EXPECT_FALSE(graph.viable);
}

// Instantiating the consumer with the WHOLE left/right producer outputs
// (a single partition) must reproduce the sub-plan's own result.
TEST_F(ShuffleStageTest, ConsumerOverOnePartitionMatchesSubplan) {
  auto subplan = Subplan(kJoinSql);
  auto graph = BuildStageGraph(subplan);
  ASSERT_TRUE(graph.viable) << graph.reason;

  auto run = [&](const PlanPtr& p) {
    ExecContext ctx;
    ctx.catalog = catalog_.get();
    auto r = ExecutePlan(p, &ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  };
  auto left = run(graph.left);
  auto right = run(graph.right);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);

  auto consumer = InstantiateConsumer(graph, left, right);
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();
  auto via_consumer = run(*consumer);
  auto via_subplan = run(subplan);
  ASSERT_NE(via_consumer, nullptr);
  ASSERT_NE(via_subplan, nullptr);
  // Row order within the sub-plan may differ (hash join vs re-assembled
  // inputs), so compare as multisets.
  auto a = Rows(*via_consumer);
  auto b = Rows(*via_subplan);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(ShuffleStageTest, ConsumerAcceptsEmptyPartitions) {
  auto graph = BuildStageGraph(Subplan(kJoinSql));
  ASSERT_TRUE(graph.viable) << graph.reason;
  auto consumer = InstantiateConsumer(graph, nullptr, nullptr);
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  auto r = ExecutePlan(*consumer, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 0u);
}

// End to end: the shuffle DAG must return exactly the rows and bill
// exactly the bytes of both direct execution and the single-stage fleet.
TEST_F(ShuffleStageTest, ShuffleMatchesDirectAndSingleStage) {
  auto direct = Direct(kJoinSql, catalog_.get(), "db");

  CfWorkerOptions base;
  base.num_workers = 3;
  // Runtime filters prune differently per topology (per-partition joins
  // see per-partition build sides), so pin them off for the bytes
  // comparison; result equality holds either way.
  base.runtime_filters = false;

  auto single = ExecuteWithCfPushdown(Plan(kJoinSql, catalog_.get(), "db"),
                                      catalog_.get(), base);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  ASSERT_TRUE(single->pushdown_used);
  EXPECT_FALSE(single->shuffle_used);

  CfWorkerOptions opts = base;
  opts.shuffle.enabled = true;
  auto shuffled = ExecuteWithCfPushdown(Plan(kJoinSql, catalog_.get(), "db"),
                                        catalog_.get(), opts);
  ASSERT_TRUE(shuffled.ok()) << shuffled.status().ToString();
  EXPECT_TRUE(shuffled->shuffle_used);
  EXPECT_EQ(shuffled->shuffle_stages, 3);

  EXPECT_EQ(Rows(*direct), Rows(*single->result));
  EXPECT_EQ(Rows(*direct), Rows(*shuffled->result));
  EXPECT_EQ(single->bytes_scanned, shuffled->bytes_scanned);

  EXPECT_GT(shuffled->shuffle_bytes_written, 0u);
  EXPECT_GT(shuffled->shuffle_bytes_read, 0u);
  ASSERT_EQ(shuffled->shuffle_stage_wall_ms.size(), 3u);
  EXPECT_GT(shuffled->shuffle_critical_path_ms, 0.0);

  // GC: nothing under the exchange prefix survives the query.
  auto leftovers = catalog_->storage()->List("intermediate/view.shuffle");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
  EXPECT_GT(shuffled->shuffle_objects_swept, 0u);
}

TEST_F(ShuffleStageTest, ShuffleOffKeepsSingleStageCountersZero) {
  CfWorkerOptions opts;
  opts.num_workers = 2;
  auto exec = ExecuteWithCfPushdown(Plan(kJoinSql, catalog_.get(), "db"),
                                    catalog_.get(), opts);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->shuffle_used);
  EXPECT_EQ(exec->shuffle_stages, 0);
  EXPECT_EQ(exec->hedges_fired, 0);
  EXPECT_EQ(exec->shuffle_bytes_written, 0u);
}

TEST_F(ShuffleStageTest, IneligibleShapeFallsBackToSingleStage) {
  const std::string sql =
      "SELECT dept, sum(salary) AS s FROM emp GROUP BY dept ORDER BY dept";
  auto direct = Direct(sql, catalog_.get(), "db");
  CfWorkerOptions opts;
  opts.num_workers = 2;
  opts.shuffle.enabled = true;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), opts);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->shuffle_used);  // no join: silently single-stage
  EXPECT_TRUE(exec->pushdown_used);
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
}

// A bigger workload: TPC-H lineitem x orders with several files per
// table, multiple partitions, and producer fan-out.
TEST_F(ShuffleStageTest, TpchJoinShuffleMatchesDirect) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  const std::string sql =
      "SELECT o_orderpriority, count(*) AS n, sum(l_extendedprice) AS rev "
      "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority";
  auto direct = Direct(sql, catalog.get(), "tpch");

  CfWorkerOptions opts;
  opts.num_workers = 4;
  opts.runtime_filters = false;
  opts.shuffle.enabled = true;
  opts.shuffle.partitions = 5;
  opts.shuffle.producer_tasks = 3;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog.get(), "tpch"),
                                    catalog.get(), opts);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->shuffle_used);
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
  EXPECT_GT(exec->workers_used, 1);
  EXPECT_GT(exec->bytes_scanned, 0u);

  auto leftovers = storage->List("intermediate/view.shuffle");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

}  // namespace
}  // namespace pixels
