#include "turbo/coordinator.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace pixels {
namespace {

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorParams DefaultParams() {
    CoordinatorParams p;
    p.vm.initial_vms = 1;
    p.vm.slots_per_vm = 2;
    p.vm.vcpus_per_vm = 8;
    p.vm.min_vms = 1;
    p.vm.max_vms = 8;
    p.vm.high_watermark = 3.0;
    p.vm.low_watermark = 0.75;
    p.vm.monitor_interval = 5 * kSeconds;
    p.vm.scale_in_cooldown = 0;
    p.default_cf_workers = 4;
    return p;
  }

  QuerySpec Work(double vcpu_seconds, bool cf_enabled = false) {
    QuerySpec spec;
    spec.work_vcpu_seconds = vcpu_seconds;
    spec.cf_enabled = cf_enabled;
    spec.bytes_to_scan = 1'000'000'000;  // 1 GB
    return spec;
  }

  SimClock clock_;
  Random rng_{42};
};

TEST_F(CoordinatorTest, QueryRunsInVmWhenSlotFree) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  int64_t id = coord.Submit(Work(4.0));
  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, QueryState::kRunning);
  EXPECT_FALSE(rec->used_cf);
  clock_.RunAll();
  rec = coord.GetQuery(id);
  EXPECT_EQ(rec->state, QueryState::kFinished);
  EXPECT_EQ(rec->PendingTime(), 0);
  EXPECT_GT(rec->ExecutionTime(), 0);
}

TEST_F(CoordinatorTest, VmDurationFollowsWorkAndParallelism) {
  auto params = DefaultParams();
  params.query_overhead = 0;
  Coordinator coord(&clock_, &rng_, params);
  // 8 vCPU-seconds on 8/2 = 4 vCPUs per slot -> 2 seconds.
  int64_t id = coord.Submit(Work(8.0));
  clock_.RunAll();
  EXPECT_EQ(coord.GetQuery(id)->ExecutionTime(), 2 * kSeconds);
}

TEST_F(CoordinatorTest, SaturatedClusterQueuesWithoutCf) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  // Capacity = 2 slots.
  coord.Submit(Work(100.0));
  coord.Submit(Work(100.0));
  int64_t queued = coord.Submit(Work(1.0));
  EXPECT_EQ(coord.GetQuery(queued)->state, QueryState::kPending);
  EXPECT_EQ(coord.QueueDepth(), 1u);
  clock_.RunAll();
  const QueryRecord* rec = coord.GetQuery(queued);
  EXPECT_EQ(rec->state, QueryState::kFinished);
  EXPECT_GT(rec->PendingTime(), 0);
  EXPECT_FALSE(rec->used_cf);
}

TEST_F(CoordinatorTest, SaturatedClusterUsesCfWhenEnabled) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(100.0));
  coord.Submit(Work(100.0));
  int64_t accelerated = coord.Submit(Work(6.0, /*cf_enabled=*/true));
  const QueryRecord* rec = coord.GetQuery(accelerated);
  EXPECT_EQ(rec->state, QueryState::kRunning);
  EXPECT_TRUE(rec->used_cf);
  EXPECT_EQ(rec->cf_workers_used, 4);
  clock_.RunAll();
  rec = coord.GetQuery(accelerated);
  EXPECT_EQ(rec->state, QueryState::kFinished);
  EXPECT_EQ(rec->PendingTime(), 0);  // immediate start is the point
}

TEST_F(CoordinatorTest, CfCostExceedsVmCostForSameWork) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(1000.0));
  coord.Submit(Work(1000.0));
  int64_t vm_id = 0, cf_id = 0;
  cf_id = coord.Submit(Work(60.0, true));
  clock_.RunAll();
  vm_id = coord.Submit(Work(60.0));
  clock_.RunAll();
  const QueryRecord* vm_rec = coord.GetQuery(vm_id);
  const QueryRecord* cf_rec = coord.GetQuery(cf_id);
  ASSERT_EQ(vm_rec->state, QueryState::kFinished);
  ASSERT_EQ(cf_rec->state, QueryState::kFinished);
  EXPECT_GT(cf_rec->compute_cost_usd, vm_rec->compute_cost_usd * 5);
}

TEST_F(CoordinatorTest, QueueDrainsFifo) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(10.0));
  coord.Submit(Work(10.0));
  int64_t q1 = coord.Submit(Work(1.0));
  int64_t q2 = coord.Submit(Work(1.0));
  clock_.RunAll();
  EXPECT_LE(coord.GetQuery(q1)->start_time, coord.GetQuery(q2)->start_time);
}

TEST_F(CoordinatorTest, ConcurrencyApiReflectsLoad) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  EXPECT_TRUE(coord.BelowLowWatermark());
  coord.Submit(Work(50.0));
  EXPECT_FALSE(coord.BelowLowWatermark());
  EXPECT_DOUBLE_EQ(coord.Concurrency(), 1.0);
  coord.Submit(Work(50.0));
  coord.Submit(Work(50.0));
  // Two running (capacity) plus one queued: the watermark metric counts
  // running + waiting demand.
  EXPECT_DOUBLE_EQ(coord.Concurrency(), 3.0);
  clock_.RunAll();
}

TEST_F(CoordinatorTest, FinishCallbackInvoked) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  bool called = false;
  coord.Submit(Work(1.0), [&](const QueryRecord& rec) {
    called = true;
    EXPECT_EQ(rec.state, QueryState::kFinished);
  });
  clock_.RunAll();
  EXPECT_TRUE(called);
}

TEST_F(CoordinatorTest, AutoscalerAddsVmsUnderSustainedLoad) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Start();
  // Keep submitting long queries to hold concurrency above the watermark.
  for (int i = 0; i < 12; ++i) coord.Submit(Work(600.0));
  clock_.RunUntil(5 * kMinutes);
  EXPECT_GT(coord.vm_cluster().num_vms(), 1);
  coord.Stop();
  clock_.RunAll();
}

TEST_F(CoordinatorTest, QueuedQueriesDispatchWhenVmsArrive) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Start();
  for (int i = 0; i < 8; ++i) coord.Submit(Work(1000.0));
  EXPECT_GT(coord.QueueDepth(), 0u);
  clock_.RunUntil(4 * kMinutes);
  // After scale-out, more queries should be running.
  EXPECT_GT(coord.Concurrency(), 2.0);
  coord.Stop();
}

TEST_F(CoordinatorTest, RealExecutionProducesResults) {
  auto catalog = testing::BuildTestCatalog();
  Coordinator coord(&clock_, &rng_, DefaultParams(), catalog);
  QuerySpec spec;
  spec.sql = "SELECT dept, count(*) FROM emp GROUP BY dept ORDER BY dept";
  spec.db = "db";
  spec.execute_real = true;
  int64_t id = coord.Submit(spec);
  clock_.RunAll();
  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
  ASSERT_NE(rec->result, nullptr);
  EXPECT_EQ(rec->result->num_rows(), 3u);
  EXPECT_GT(rec->bytes_scanned, 0u);
}

TEST_F(CoordinatorTest, RealExecutionErrorMarksFailed) {
  auto catalog = testing::BuildTestCatalog();
  Coordinator coord(&clock_, &rng_, DefaultParams(), catalog);
  QuerySpec spec;
  spec.sql = "SELECT nope FROM emp";
  spec.db = "db";
  spec.execute_real = true;
  int64_t id = coord.Submit(spec);
  clock_.RunAll();
  const QueryRecord* rec = coord.GetQuery(id);
  EXPECT_EQ(rec->state, QueryState::kFailed);
  EXPECT_FALSE(rec->error.empty());
}

TEST_F(CoordinatorTest, RealExecutionViaCfUsesPushdown) {
  auto catalog = testing::BuildTestCatalog();
  auto params = DefaultParams();
  params.vm.initial_vms = 1;
  params.vm.slots_per_vm = 1;
  Coordinator coord(&clock_, &rng_, params, catalog);
  // Saturate the single slot.
  coord.Submit(Work(1000.0));
  QuerySpec spec;
  spec.sql = "SELECT dept, sum(salary) FROM emp GROUP BY dept";
  spec.db = "db";
  spec.execute_real = true;
  spec.cf_enabled = true;
  int64_t id = coord.Submit(spec);
  clock_.RunAll();
  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
  EXPECT_TRUE(rec->used_cf);
  ASSERT_NE(rec->result, nullptr);
  EXPECT_EQ(rec->result->num_rows(), 3u);
}

TEST_F(CoordinatorTest, EstimatesWorkFromBytes) {
  auto params = DefaultParams();
  params.query_overhead = 0;
  params.bytes_per_vcpu_second = 1e9;
  Coordinator coord(&clock_, &rng_, params);
  QuerySpec spec;
  spec.bytes_to_scan = 8'000'000'000;  // 8 GB -> 8 vCPU-s -> 2s on 4 vCPUs
  int64_t id = coord.Submit(spec);
  clock_.RunAll();
  EXPECT_EQ(coord.GetQuery(id)->ExecutionTime(), 2 * kSeconds);
}

TEST_F(CoordinatorTest, TotalCostsTrackBothPools) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(10.0));
  coord.Submit(Work(10.0));
  coord.Submit(Work(10.0, true));  // forced to CF
  clock_.RunAll();
  EXPECT_GT(coord.TotalVmCostUsd(), 0);
  EXPECT_GT(coord.TotalCfCostUsd(), 0);
}

TEST_F(CoordinatorTest, AllQueriesListsRecords) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(1.0));
  coord.Submit(Work(1.0));
  EXPECT_EQ(coord.AllQueries().size(), 2u);
  clock_.RunAll();
}

TEST_F(CoordinatorTest, CfLimitFallsBackToQueue) {
  auto params = DefaultParams();
  params.cf.max_concurrent_workers = 4;  // one fleet of 4 fits, no more
  params.default_cf_workers = 4;
  Coordinator coord(&clock_, &rng_, params);
  // Saturate VM slots.
  coord.Submit(Work(1000.0));
  coord.Submit(Work(1000.0));
  // First accelerated query takes the whole CF budget.
  int64_t cf_id = coord.Submit(Work(600.0, true));
  EXPECT_TRUE(coord.GetQuery(cf_id)->used_cf);
  // Second one cannot invoke CF and must queue for VMs instead.
  int64_t queued = coord.Submit(Work(1.0, true));
  EXPECT_EQ(coord.GetQuery(queued)->state, QueryState::kPending);
  EXPECT_FALSE(coord.GetQuery(queued)->used_cf);
  EXPECT_EQ(coord.QueueDepth(), 1u);
  clock_.RunAll();
  EXPECT_EQ(coord.GetQuery(queued)->state, QueryState::kFinished);
}

TEST_F(CoordinatorTest, EngineConcurrencyExcludesExternalPending) {
  Coordinator coord(&clock_, &rng_, DefaultParams());
  coord.Submit(Work(50.0));
  coord.SetExternalPending(7);
  EXPECT_DOUBLE_EQ(coord.EngineConcurrency(), 1.0);
  EXPECT_DOUBLE_EQ(coord.Concurrency(), 8.0);
  coord.SetExternalPending(0);
  EXPECT_DOUBLE_EQ(coord.Concurrency(), 1.0);
  clock_.RunAll();
}

}  // namespace
}  // namespace pixels
