#include "turbo/cf_worker.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "testing/test_db.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class CfWorkerTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = testing::BuildTestCatalog(); }

  PlanPtr Plan(const std::string& sql, Catalog* catalog,
               const std::string& db) {
    auto plan = PlanQuery(sql, *catalog, db);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  TablePtr Direct(const std::string& sql, Catalog* catalog,
                  const std::string& db) {
    ExecContext ctx;
    ctx.catalog = catalog;
    auto r = ExecuteQuery(sql, db, &ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  static std::vector<std::string> Rows(const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) out.push_back(b->RowToString(r));
    }
    return out;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(CfWorkerTest, RoundTripViewThroughStorage) {
  MemoryStore store;
  auto table = std::make_shared<Table>();
  auto batch = std::make_shared<RowBatch>();
  auto col = MakeVector(TypeId::kInt64);
  col->AppendInt(10);
  col->AppendInt(20);
  batch->AddColumn("v", col);
  table->AddBatch(batch);
  auto restored = RoundTripView(*table, &store, "views/v0.pxl");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_rows(), 2u);
  EXPECT_EQ((*restored)->CollectColumn("v")[1].i, 20);
  EXPECT_TRUE(store.Exists("views/v0.pxl"));
}

TEST_F(CfWorkerTest, RoundTripEmptyView) {
  MemoryStore store;
  Table empty;
  auto restored = RoundTripView(empty, &store, "views/empty.pxl");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->num_rows(), 0u);
}

TEST_F(CfWorkerTest, PushdownMatchesDirectExecutionSimpleAgg) {
  const std::string sql =
      "SELECT dept, sum(salary) AS s, count(*) AS c FROM emp GROUP BY dept "
      "ORDER BY dept";
  auto direct = Direct(sql, catalog_.get(), "db");
  CfWorkerOptions options;
  options.num_workers = 4;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->pushdown_used);
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
}

TEST_F(CfWorkerTest, PushdownWithIntermediateStore) {
  const std::string sql = "SELECT dept, avg(salary) FROM emp GROUP BY dept "
                          "ORDER BY dept";
  auto direct = Direct(sql, catalog_.get(), "db");
  CfWorkerOptions options;
  options.num_workers = 2;
  options.intermediate_store = catalog_->storage();
  options.view_prefix = "intermediate/test";
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
  // The worker's view landed in object storage.
  auto files = catalog_->storage()->List("intermediate/test");
  ASSERT_TRUE(files.ok());
  EXPECT_GE(files->size(), 1u);
}

TEST_F(CfWorkerTest, NoPushableSubtreeFallsBack) {
  auto plan = Plan("SELECT 1 + 1 AS x", catalog_.get(), "db");
  CfWorkerOptions options;
  auto exec = ExecuteWithCfPushdown(plan, catalog_.get(), options);
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec->pushdown_used);
  EXPECT_EQ(exec->result->num_rows(), 1u);
}

TEST_F(CfWorkerTest, MultiWorkerTpchAggregation) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;  // multiple lineitem files for partitioning
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  const std::string sql =
      "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n FROM "
      "lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
  auto direct = Direct(sql, catalog.get(), "tpch");
  CfWorkerOptions options;
  options.num_workers = 5;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog.get(), "tpch"),
                                    catalog.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_GT(exec->workers_used, 1);
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
  EXPECT_GT(exec->bytes_scanned, 0u);
}

TEST_F(CfWorkerTest, JoinPushdownMatchesDirect) {
  const std::string sql =
      "SELECT d.location, count(*) AS c FROM emp e JOIN dept d ON e.dept = "
      "d.name GROUP BY d.location ORDER BY d.location";
  auto direct = Direct(sql, catalog_.get(), "db");
  CfWorkerOptions options;
  options.num_workers = 2;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
}

TEST_F(CfWorkerTest, DistinctAggregatePushdownMatchesDirect) {
  const std::string sql = "SELECT count(DISTINCT dept) AS d FROM emp";
  auto direct = Direct(sql, catalog_.get(), "db");
  CfWorkerOptions options;
  options.num_workers = 3;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(Rows(*direct), Rows(*exec->result));
}

TEST_F(CfWorkerTest, ConcurrentFleetMatchesSerialFleet) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  ASSERT_TRUE(GenerateTpch(catalog.get(), "tpch", topt).ok());

  const std::string sql =
      "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n FROM "
      "lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
  CfWorkerOptions serial_opts;
  serial_opts.num_workers = 6;
  serial_opts.fleet_parallelism = 1;
  serial_opts.intermediate_store = storage.get();
  serial_opts.view_prefix = "intermediate/serial";
  auto serial = ExecuteWithCfPushdown(Plan(sql, catalog.get(), "tpch"),
                                      catalog.get(), serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  CfWorkerOptions par_opts = serial_opts;
  par_opts.fleet_parallelism = 6;
  par_opts.view_prefix = "intermediate/parallel";
  auto parallel = ExecuteWithCfPushdown(Plan(sql, catalog.get(), "tpch"),
                                        catalog.get(), par_opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_GT(parallel->workers_used, 1);
  EXPECT_EQ(parallel->workers_used, serial->workers_used);
  EXPECT_EQ(Rows(*serial->result), Rows(*parallel->result));
  EXPECT_EQ(serial->bytes_scanned, parallel->bytes_scanned);
  // Both fleets report per-worker wall times and views made it to storage.
  ASSERT_EQ(parallel->worker_elapsed_seconds.size(),
            static_cast<size_t>(parallel->workers_used));
  for (double t : parallel->worker_elapsed_seconds) EXPECT_GE(t, 0.0);
  auto views = storage->List("intermediate/parallel");
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), static_cast<size_t>(parallel->workers_used));
}

TEST_F(CfWorkerTest, WorkEstimateDerivedFromBytes) {
  const std::string sql = "SELECT count(*) FROM emp";
  CfWorkerOptions options;
  options.bytes_per_vcpu_second = 1000.0;
  auto exec = ExecuteWithCfPushdown(Plan(sql, catalog_.get(), "db"),
                                    catalog_.get(), options);
  ASSERT_TRUE(exec.ok());
  EXPECT_GT(exec->work_vcpu_seconds, 0);
  EXPECT_NEAR(exec->work_vcpu_seconds * 1000.0,
              static_cast<double>(exec->bytes_scanned), 1e-6);
}

}  // namespace
}  // namespace pixels
