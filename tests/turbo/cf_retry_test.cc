// CF-fleet robustness: failed workers are re-invoked with backoff; a
// partition that exhausts its budget degrades to the VM path (or fails
// the query when fallback is off); permanent errors fail immediately.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "testing/switchable_storage.h"
#include "testing/test_db.h"
#include "turbo/cf_worker.h"
#include "turbo/coordinator.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

using pixels::testing::SwitchableStorage;

class CfRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Data lives in `mem_`; the catalog reads through `switchable_`, which
    // starts healthy (registration never trips fault budgets).
    mem_ = std::make_shared<MemoryStore>();
    switchable_ = std::make_shared<SwitchableStorage>(mem_);
    catalog_ = std::make_shared<Catalog>(switchable_);
    TpchOptions topt;
    topt.scale_factor = 0.002;
    topt.rows_per_file = 2000;  // several lineitem files -> real fleet
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", topt).ok());
  }

  /// Switches all subsequent catalog reads to fault-injected storage.
  void InjectFaults(FaultInjectionParams params) {
    injector_ =
        std::make_shared<FaultInjectingStorage>(mem_, std::move(params));
    switchable_->SetTarget(injector_);
  }

  PlanPtr Plan(const std::string& sql) {
    auto plan = PlanQuery(sql, *catalog_, "tpch");
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    EXPECT_TRUE(optimized.ok());
    return optimized.ok() ? *optimized : nullptr;
  }

  static std::vector<std::string> Rows(const Table& t) {
    std::vector<std::string> out;
    for (const auto& b : t.batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r)
        out.push_back(b->RowToString(r));
    }
    return out;
  }

  /// Serial fleet (deterministic worker order) over the lineitem scan.
  CfWorkerOptions FleetOptions() {
    CfWorkerOptions options;
    options.num_workers = 4;
    options.fleet_parallelism = 1;
    return options;
  }

  static FaultInjectionParams FailFirstReads(int n) {
    FaultInjectionParams params;
    FaultRule rule;
    rule.fail_first_reads = n;  // empty substring: every path
    params.rules.push_back(rule);
    return params;
  }

  const std::string sql_ =
      "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
      "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";

  std::shared_ptr<MemoryStore> mem_;
  std::shared_ptr<SwitchableStorage> switchable_;
  std::shared_ptr<FaultInjectingStorage> injector_;
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(CfRetryTest, TransientWorkerFailureIsReinvokedAndRecovers) {
  auto clean = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(),
                                     FleetOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // One injected failure: the first worker's first attempt dies, the
  // re-invocation succeeds, and the query never notices.
  InjectFaults(FailFirstReads(1));
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(),
                                    FleetOptions());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->worker_retries, 1);
  EXPECT_EQ(exec->workers_recovered, 1);
  EXPECT_EQ(exec->workers_fallback, 0);
  EXPECT_GT(exec->retry_backoff_simulated_ms, 0.0);
  // Recovery is invisible in the results and in the billing inputs.
  EXPECT_EQ(Rows(*clean->result), Rows(*exec->result));
  EXPECT_EQ(clean->bytes_scanned, exec->bytes_scanned);
  EXPECT_EQ(clean->workers_used, exec->workers_used);
}

TEST_F(CfRetryTest, ExhaustedWorkerDegradesToVmPath) {
  auto clean = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(),
                                     FleetOptions());
  ASSERT_TRUE(clean.ok());

  // Budget of 2 attempts; each failed attempt consumes one injected
  // fault, so 2 faults exhaust exactly the first worker's budget.
  InjectFaults(FailFirstReads(2));
  auto options = FleetOptions();
  options.max_worker_attempts = 2;
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->workers_fallback, 1);
  EXPECT_EQ(exec->worker_retries, 1);
  EXPECT_EQ(exec->workers_recovered, 0);
  EXPECT_GT(exec->fallback_bytes_scanned, 0u);
  EXPECT_LT(exec->fallback_bytes_scanned, exec->bytes_scanned);
  // Fallback partitions leave the fleet but not the result or the bill.
  EXPECT_EQ(exec->workers_used, clean->workers_used - 1);
  EXPECT_EQ(Rows(*clean->result), Rows(*exec->result));
  EXPECT_EQ(clean->bytes_scanned, exec->bytes_scanned);
}

TEST_F(CfRetryTest, ExhaustionFailsQueryWhenFallbackDisabled) {
  InjectFaults(FailFirstReads(100));  // beyond any retry budget
  auto options = FleetOptions();
  options.max_worker_attempts = 2;
  options.vm_fallback = false;
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsIOError());
  EXPECT_NE(exec.status().message().find("injected fault"),
            std::string::npos);
}

TEST_F(CfRetryTest, PermanentErrorFailsWithoutRetry) {
  // Remove a data object: NotFound is permanent, so the fleet must not
  // burn its re-invocation budget before failing the query.
  auto files = mem_->List("");
  ASSERT_TRUE(files.ok());
  std::string victim;
  for (const auto& f : *files) {
    if (f.find("lineitem") != std::string::npos) {
      victim = f;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(mem_->Delete(victim).ok());
  InjectFaults({});  // counts ops; injects nothing
  auto options = FleetOptions();
  options.max_worker_attempts = 5;
  auto exec = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(), options);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsNotFound());
}

TEST_F(CfRetryTest, CoordinatorDegradesToVmPricingOnFullFallback) {
  // Probe the fleet's partition count fault-free so the injected fault
  // budget kills every partition's single attempt, no more, no less.
  auto probe = ExecuteWithCfPushdown(Plan(sql_), catalog_.get(),
                                     FleetOptions());
  ASSERT_TRUE(probe.ok());
  const int partitions = probe->workers_used;
  ASSERT_GT(partitions, 0);

  // Every CF attempt fails; with a 1-attempt budget all partitions fall
  // back, so the query must report used_cf = false and VM pricing.
  CoordinatorParams params;
  params.vm.initial_vms = 1;
  params.vm.slots_per_vm = 1;
  params.vm.min_vms = 1;
  params.vm.max_vms = 2;
  params.vm.monitor_interval = 5 * kSeconds;
  params.default_cf_workers = 4;  // matches FleetOptions() probe
  params.cf_max_worker_attempts = 1;

  SimClock clock;
  Random rng(42);
  Coordinator coord(&clock, &rng, params, catalog_);

  // Saturate the single VM slot so the next query takes the CF path.
  QuerySpec filler;
  filler.work_vcpu_seconds = 1000.0;
  coord.Submit(filler);

  // Each injected fault unconditionally fails one read, and each failed
  // read kills one distinct single-attempt worker — so `partitions`
  // faults fail every partition exactly once and the inline VM-path
  // fallback then runs fault-free.
  InjectFaults(FailFirstReads(partitions));
  QuerySpec spec;
  spec.sql = sql_;
  spec.db = "tpch";
  spec.execute_real = true;
  spec.cf_enabled = true;
  int64_t id = coord.Submit(spec);
  clock.RunAll();

  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
  EXPECT_FALSE(rec->used_cf);  // degradation is visible, not papered over
  EXPECT_EQ(rec->cf_workers_used, 0);
  EXPECT_GT(rec->cf_fallback_workers, 0);
  EXPECT_GT(rec->cf_fallback_bytes, 0u);
  ASSERT_NE(rec->result, nullptr);
  EXPECT_GT(rec->result->num_rows(), 0u);
  EXPECT_GT(rec->compute_cost_usd, 0.0);
  EXPECT_EQ(coord.metrics().Counter("cf_fleet_degraded_queries"), 1.0);
}

TEST_F(CfRetryTest, CoordinatorRecordsWorkerRetries) {
  CoordinatorParams params;
  params.vm.initial_vms = 1;
  params.vm.slots_per_vm = 1;
  params.vm.min_vms = 1;
  params.vm.max_vms = 2;
  params.vm.monitor_interval = 5 * kSeconds;

  SimClock clock;
  Random rng(42);
  Coordinator coord(&clock, &rng, params, catalog_);

  QuerySpec filler;
  filler.work_vcpu_seconds = 1000.0;
  coord.Submit(filler);

  InjectFaults(FailFirstReads(1));
  QuerySpec spec;
  spec.sql = sql_;
  spec.db = "tpch";
  spec.execute_real = true;
  spec.cf_enabled = true;
  int64_t id = coord.Submit(spec);
  clock.RunAll();

  const QueryRecord* rec = coord.GetQuery(id);
  ASSERT_EQ(rec->state, QueryState::kFinished) << rec->error;
  EXPECT_TRUE(rec->used_cf);  // recovered in place, CF still did the work
  EXPECT_EQ(rec->cf_worker_retries, 1);
  EXPECT_EQ(rec->cf_fallback_workers, 0);
  EXPECT_GT(rec->bytes_scanned, 0u);
}

}  // namespace
}  // namespace pixels
