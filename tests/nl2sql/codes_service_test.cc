#include "nl2sql/codes_service.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace pixels {
namespace {

class CodesServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = testing::BuildTestCatalog();
    service_ = std::make_unique<CodesService>(catalog_.get());
  }

  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<CodesService> service_;
};

TEST_F(CodesServiceTest, SingleTurnJsonRoundTrip) {
  // The Pixels-Rover backend compiles a JSON message (question + schema)
  // and receives the SQL in one round trip (paper §2(3)).
  Json request = Json::Object();
  request.Set("question", "how many emp are there?");
  request.Set("database", "db");
  auto db = catalog_->GetDatabase("db");
  ASSERT_TRUE(db.ok());
  request.Set("schema", (*db)->ToJson());

  Json response = service_->HandleRequest(request);
  ASSERT_TRUE(response.Has("sql")) << response.Dump();
  EXPECT_EQ(response.Get("sql").AsString(), "SELECT count(*) FROM emp");
  EXPECT_EQ(response.Get("table").AsString(), "emp");
}

TEST_F(CodesServiceTest, RequestSurvivesSerialization) {
  Json request = Json::Object();
  request.Set("question", "average salary of emp per dept");
  request.Set("database", "db");
  auto parsed = Json::Parse(request.Dump());
  ASSERT_TRUE(parsed.ok());
  Json response = service_->HandleRequest(*parsed);
  ASSERT_TRUE(response.Has("sql")) << response.Dump();
  EXPECT_NE(response.Get("sql").AsString().find("avg(salary)"),
            std::string::npos);
  EXPECT_NE(response.Get("sql").AsString().find("GROUP BY dept"),
            std::string::npos);
}

TEST_F(CodesServiceTest, MissingQuestionIsError) {
  Json request = Json::Object();
  request.Set("database", "db");
  Json response = service_->HandleRequest(request);
  EXPECT_TRUE(response.Has("error"));
}

TEST_F(CodesServiceTest, NonObjectRequestIsError) {
  Json response = service_->HandleRequest(Json("just a string"));
  EXPECT_TRUE(response.Has("error"));
}

TEST_F(CodesServiceTest, UnknownDatabaseIsError) {
  Json request = Json::Object();
  request.Set("question", "how many emp");
  request.Set("database", "nope");
  Json response = service_->HandleRequest(request);
  EXPECT_TRUE(response.Has("error"));
}

TEST_F(CodesServiceTest, UntranslatableQuestionIsError) {
  Json request = Json::Object();
  request.Set("question", "tell me a joke");
  request.Set("database", "db");
  Json response = service_->HandleRequest(request);
  EXPECT_TRUE(response.Has("error"));
}

TEST_F(CodesServiceTest, DirectTranslateApi) {
  auto t = service_->Translate("db", "first 3 emp");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->sql, "SELECT * FROM emp LIMIT 3");
}

TEST_F(CodesServiceTest, SynonymsApplyAcrossRequests) {
  service_->AddSynonym("pay", "salary");
  auto t = service_->Translate("db", "total pay of emp per dept");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->sql.find("sum(salary)"), std::string::npos);
}

TEST_F(CodesServiceTest, ConfidenceReported) {
  Json request = Json::Object();
  request.Set("question", "how many emp");
  request.Set("database", "db");
  Json response = service_->HandleRequest(request);
  ASSERT_TRUE(response.Has("confidence"));
  EXPECT_GT(response.Get("confidence").AsNumber(), 0);
}

}  // namespace
}  // namespace pixels
