#include "nl2sql/nl_benchmark.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

class NlBenchmarkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions options;
    options.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());
    auto db = catalog_->GetDatabase("tpch");
    ASSERT_TRUE(db.ok());
    schema_ = *db;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  const DatabaseSchema* schema_;
};

TEST_F(NlBenchmarkTest, GeneratesRequestedCount) {
  NlBenchmark bench(*schema_, 1);
  auto cases = bench.Generate(50);
  EXPECT_EQ(cases.size(), 50u);
  for (const auto& c : cases) {
    EXPECT_FALSE(c.question.empty());
    EXPECT_FALSE(c.gold_sql.empty());
  }
}

TEST_F(NlBenchmarkTest, GenerationIsDeterministic) {
  NlBenchmark a(*schema_, 7), b(*schema_, 7);
  auto ca = a.Generate(20);
  auto cb = b.Generate(20);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].question, cb[i].question);
    EXPECT_EQ(ca[i].gold_sql, cb[i].gold_sql);
  }
}

TEST_F(NlBenchmarkTest, GoldSqlAlwaysParses) {
  NlBenchmark bench(*schema_, 3);
  for (const auto& c : bench.Generate(100)) {
    auto parsed = ParseSelect(c.gold_sql);
    EXPECT_TRUE(parsed.ok()) << c.gold_sql;
  }
}

TEST_F(NlBenchmarkTest, ContainsHardSlice) {
  NlBenchmark bench(*schema_, 5);
  auto cases = bench.Generate(200);
  size_t hard = 0;
  for (const auto& c : cases) hard += c.hard;
  EXPECT_GT(hard, 10u);
  EXPECT_LT(hard, 80u);
}

TEST_F(NlBenchmarkTest, SqlEquivalentIgnoresFormatting) {
  EXPECT_TRUE(NlBenchmark::SqlEquivalent("SELECT a FROM t",
                                         "select  A from T"));
  EXPECT_FALSE(NlBenchmark::SqlEquivalent("SELECT a FROM t",
                                          "SELECT b FROM t"));
  EXPECT_FALSE(NlBenchmark::SqlEquivalent("not sql", "SELECT a FROM t"));
}

TEST_F(NlBenchmarkTest, AccuracyAbovePaperThreshold) {
  // Paper §1: CodeS translates single-turn with accuracy over 80%. The
  // substitute must clear the same bar on the generated benchmark.
  NlBenchmark bench(*schema_, 11);
  auto cases = bench.Generate(200);
  SemanticParser parser(*schema_);
  for (const auto& [w, t] : TpchSynonyms()) parser.AddSynonym(w, t);
  auto result = bench.Evaluate(cases, parser);
  EXPECT_GT(result.ExactAccuracy(), 0.80)
      << "exact " << result.exact_match << "/" << result.total;
  // But not a rigged 100%: the hard slice must hurt.
  EXPECT_LT(result.ExactAccuracy(), 1.0);
}

TEST_F(NlBenchmarkTest, ExecutionMatchOnRealData) {
  NlBenchmark bench(*schema_, 13);
  auto cases = bench.Generate(60);
  SemanticParser parser(*schema_);
  for (const auto& [w, t] : TpchSynonyms()) parser.AddSynonym(w, t);
  auto result = bench.Evaluate(cases, parser, catalog_.get(), "tpch");
  EXPECT_GT(result.executed, 0u);
  // Execution match should be at least as high as exact match among
  // executed cases (different SQL can yield the same result).
  EXPECT_GE(result.execution_match, result.exact_match * 8 / 10);
}

TEST_F(NlBenchmarkTest, EmptySchemaGeneratesNothing) {
  DatabaseSchema empty;
  empty.name = "empty";
  NlBenchmark bench(empty, 1);
  EXPECT_TRUE(bench.Generate(10).empty());
}

}  // namespace
}  // namespace pixels
