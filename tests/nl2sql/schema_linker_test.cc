#include "nl2sql/schema_linker.h"

#include <gtest/gtest.h>

namespace pixels {
namespace {

DatabaseSchema TpchLikeSchema() {
  DatabaseSchema db;
  db.name = "tpch";
  TableSchema lineitem;
  lineitem.name = "lineitem";
  lineitem.columns = {{"l_orderkey", TypeId::kInt64},
                      {"l_quantity", TypeId::kDouble},
                      {"l_extendedprice", TypeId::kDouble},
                      {"l_shipdate", TypeId::kDate},
                      {"l_returnflag", TypeId::kString}};
  TableSchema orders;
  orders.name = "orders";
  orders.columns = {{"o_orderkey", TypeId::kInt64},
                    {"o_totalprice", TypeId::kDouble},
                    {"o_orderdate", TypeId::kDate}};
  db.tables = {lineitem, orders};
  return db;
}

TEST(SchemaLinkerTest, TokenizeText) {
  auto tokens = SchemaLinker::TokenizeText("How many Orders in 2024?");
  EXPECT_EQ(tokens, (std::vector<std::string>{"how", "many", "orders", "in",
                                              "2024"}));
}

TEST(SchemaLinkerTest, SplitIdentifierSnakeCase) {
  EXPECT_EQ(SchemaLinker::SplitIdentifier("l_extendedprice"),
            (std::vector<std::string>{"l", "extendedprice"}));
  EXPECT_EQ(SchemaLinker::SplitIdentifier("event_date"),
            (std::vector<std::string>{"event", "date"}));
}

TEST(SchemaLinkerTest, SplitIdentifierCamelCase) {
  EXPECT_EQ(SchemaLinker::SplitIdentifier("orderDate"),
            (std::vector<std::string>{"order", "date"}));
  EXPECT_EQ(SchemaLinker::SplitIdentifier("XMLHttp"),
            (std::vector<std::string>{"xmlhttp"}));
}

TEST(SchemaLinkerTest, Stemming) {
  EXPECT_EQ(SchemaLinker::Stem("orders"), "order");
  EXPECT_EQ(SchemaLinker::Stem("status"), "status");  // keeps 'ss'
  EXPECT_EQ(SchemaLinker::Stem("as"), "as");          // too short
}

TEST(SchemaLinkerTest, DirectTableMention) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("how many orders are there");
  ASSERT_FALSE(linked.tables.empty());
  EXPECT_EQ(linked.tables[0].table, "orders");
}

TEST(SchemaLinkerTest, ColumnMentionPullsTable) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("total quantity shipped");
  ASSERT_FALSE(linked.tables.empty());
  EXPECT_EQ(linked.tables[0].table, "lineitem");
  bool found_quantity = false;
  for (const auto& c : linked.columns) {
    found_quantity |= c.column == "l_quantity";
  }
  EXPECT_TRUE(found_quantity);
}

TEST(SchemaLinkerTest, SubstringMatchesCompoundColumns) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("extended price of lineitem");
  bool found = false;
  for (const auto& c : linked.columns) {
    found |= c.column == "l_extendedprice";
  }
  EXPECT_TRUE(found);
}

TEST(SchemaLinkerTest, SynonymsExpandMatches) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto no_syn = linker.Link("revenue of lineitem");
  bool found_before = false;
  for (const auto& c : no_syn.columns) {
    found_before |= c.column == "l_extendedprice";
  }
  EXPECT_FALSE(found_before);

  linker.AddSynonym("revenue", "extendedprice");
  auto with_syn = linker.Link("revenue of lineitem");
  bool found_after = false;
  for (const auto& c : with_syn.columns) {
    found_after |= c.column == "l_extendedprice";
  }
  EXPECT_TRUE(found_after);
}

TEST(SchemaLinkerTest, NoMatchYieldsEmpty) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("weather forecast tomorrow");
  EXPECT_TRUE(linked.tables.empty());
}

TEST(SchemaLinkerTest, LimitsRespected) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("orderkey price date of orders and lineitem", 1, 2);
  EXPECT_LE(linked.tables.size(), 1u);
  EXPECT_LE(linked.columns.size(), 2u);
}

TEST(SchemaLinkerTest, WideTablePruning) {
  // The paper highlights pruning on very wide tables: build a 1000-column
  // table and verify linking stays focused.
  DatabaseSchema db;
  db.name = "wide";
  TableSchema t;
  t.name = "metrics";
  for (int i = 0; i < 1000; ++i) {
    t.columns.push_back(
        {"col_" + std::to_string(i) + "_noise", TypeId::kDouble});
  }
  t.columns.push_back({"cpu_usage", TypeId::kDouble});
  t.columns.push_back({"mem_usage", TypeId::kDouble});
  db.tables = {t};
  SchemaLinker linker(db);
  auto linked = linker.Link("average cpu usage in metrics", 4, 8);
  ASSERT_FALSE(linked.columns.empty());
  EXPECT_EQ(linked.columns[0].column, "cpu_usage");
  EXPECT_LE(linked.columns.size(), 8u);
}

TEST(SchemaLinkerTest, TopTableColumnsFiltersByTable) {
  auto schema = TpchLikeSchema();
  SchemaLinker linker(schema);
  auto linked = linker.Link("orderdate and totalprice of orders");
  auto top = linked.TopTableColumns();
  for (const auto& c : top) {
    EXPECT_EQ(c.table, linked.tables[0].table);
  }
}

}  // namespace
}  // namespace pixels
