#include "nl2sql/semantic_parser.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace pixels {
namespace {

DatabaseSchema SalesSchema() {
  DatabaseSchema db;
  db.name = "shop";
  TableSchema sales;
  sales.name = "sales";
  sales.columns = {{"product", TypeId::kString},
                   {"region", TypeId::kString},
                   {"amount", TypeId::kDouble},
                   {"units", TypeId::kInt64},
                   {"sold_date", TypeId::kDate}};
  TableSchema customers;
  customers.name = "customers";
  customers.columns = {{"customer_name", TypeId::kString},
                       {"city", TypeId::kString},
                       {"balance", TypeId::kDouble}};
  db.tables = {sales, customers};
  return db;
}

class SemanticParserTest : public ::testing::Test {
 protected:
  SemanticParserTest() : schema_(SalesSchema()), parser_(schema_) {}

  std::string Sql(const std::string& question) {
    auto r = parser_.Translate(question);
    EXPECT_TRUE(r.ok()) << question << " -> " << r.status().ToString();
    return r.ok() ? r->sql : "";
  }

  DatabaseSchema schema_;
  SemanticParser parser_;
};

TEST_F(SemanticParserTest, CountAll) {
  EXPECT_EQ(Sql("how many sales are there?"),
            "SELECT count(*) FROM sales");
}

TEST_F(SemanticParserTest, SumPerGroup) {
  EXPECT_EQ(Sql("what is the total amount of sales per region?"),
            "SELECT region, sum(amount) FROM sales GROUP BY region");
}

TEST_F(SemanticParserTest, AvgForEachGroup) {
  EXPECT_EQ(Sql("average amount in sales for each product"),
            "SELECT product, avg(amount) FROM sales GROUP BY product");
}

TEST_F(SemanticParserTest, MinMaxAggregates) {
  EXPECT_EQ(Sql("maximum units of sales"), "SELECT max(units) FROM sales");
  EXPECT_EQ(Sql("smallest balance of customers"),
            "SELECT min(balance) FROM customers");
}

TEST_F(SemanticParserTest, CountWithNumericFilter) {
  EXPECT_EQ(Sql("how many sales have units greater than 10?"),
            "SELECT count(*) FROM sales WHERE (units > 10)");
}

TEST_F(SemanticParserTest, FilterSpellings) {
  EXPECT_EQ(Sql("how many sales with amount above 100"),
            "SELECT count(*) FROM sales WHERE (amount > 100)");
  EXPECT_EQ(Sql("how many sales with amount below 50"),
            "SELECT count(*) FROM sales WHERE (amount < 50)");
  EXPECT_EQ(Sql("how many sales with units at least 3"),
            "SELECT count(*) FROM sales WHERE (units >= 3)");
  EXPECT_EQ(Sql("how many sales with units at most 7"),
            "SELECT count(*) FROM sales WHERE (units <= 7)");
}

TEST_F(SemanticParserTest, EqualityWithString) {
  EXPECT_EQ(Sql("how many sales where region equals 'west'"),
            "SELECT count(*) FROM sales WHERE (region = 'west')");
}

TEST_F(SemanticParserTest, BetweenFilter) {
  EXPECT_EQ(Sql("how many sales with amount between 10 and 20"),
            "SELECT count(*) FROM sales WHERE (amount BETWEEN 10 AND 20)");
}

TEST_F(SemanticParserTest, ContainsBecomesLike) {
  // Filter-only columns are not selected (CodeS-style SELECT *).
  EXPECT_EQ(Sql("list sales where product contains 'widget'"),
            "SELECT * FROM sales WHERE (product LIKE '%widget%')");
}

TEST_F(SemanticParserTest, DateFilterFallsBackToDateColumn) {
  auto sql = Sql("total amount of sales after 2024-01-01");
  EXPECT_NE(sql.find("sold_date >"), std::string::npos);
  EXPECT_NE(sql.find("sum(amount)"), std::string::npos);
}

TEST_F(SemanticParserTest, TopNGroups) {
  auto sql = Sql("total amount of sales per region, top 3");
  EXPECT_NE(sql.find("GROUP BY region"), std::string::npos);
  EXPECT_NE(sql.find("ORDER BY sum(amount) DESC"), std::string::npos);
  EXPECT_NE(sql.find("LIMIT 3"), std::string::npos);
}

TEST_F(SemanticParserTest, FirstNListing) {
  EXPECT_EQ(Sql("first 5 sales"), "SELECT * FROM sales LIMIT 5");
}

TEST_F(SemanticParserTest, SortedListing) {
  auto sql = Sql("show the product and amount of sales ordered by amount "
                 "descending");
  EXPECT_NE(sql.find("ORDER BY amount DESC"), std::string::npos);
  EXPECT_NE(sql.find("product"), std::string::npos);
}

TEST_F(SemanticParserTest, ListingWithoutColumnsIsStar) {
  EXPECT_EQ(Sql("first 10 customers"), "SELECT * FROM customers LIMIT 10");
}

TEST_F(SemanticParserTest, TableChosenByColumnMention) {
  auto r = parser_.Translate("average balance");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table, "customers");
}

TEST_F(SemanticParserTest, SynonymImprovesTranslation) {
  auto before = parser_.Translate("total revenue of sales per region");
  // Without a synonym "revenue" maps to nothing specific; the aggregate
  // may be missing.
  parser_.AddSynonym("revenue", "amount");
  auto after = parser_.Translate("total revenue of sales per region");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->sql.find("sum(amount)"), std::string::npos);
  (void)before;
}

TEST_F(SemanticParserTest, UnknownDomainFails) {
  EXPECT_FALSE(parser_.Translate("what's the weather like today").ok());
  EXPECT_FALSE(parser_.Translate("").ok());
}

TEST_F(SemanticParserTest, ProducedSqlAlwaysParses) {
  const char* questions[] = {
      "how many sales are there?",
      "total amount of sales per region",
      "average units of sales for each product",
      "first 7 customers",
      "show the city of customers",
      "maximum balance of customers per city",
      "how many sales with units greater than 2",
      "total amount of sales per region, top 5",
  };
  for (const char* q : questions) {
    auto t = parser_.Translate(q);
    ASSERT_TRUE(t.ok()) << q;
    auto parsed = ParseSelect(t->sql);
    EXPECT_TRUE(parsed.ok()) << q << " -> " << t->sql;
  }
}

TEST_F(SemanticParserTest, MultipleAggregates) {
  auto sql = Sql("minimum and maximum amount of sales per region");
  EXPECT_NE(sql.find("min(amount)"), std::string::npos);
  EXPECT_NE(sql.find("max(amount)"), std::string::npos);
}

}  // namespace
}  // namespace pixels
