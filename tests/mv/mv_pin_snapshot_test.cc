// Regression test for the MV pin-snapshot ordering: version pins must be
// collected BEFORE a plan executes. A catalog mutation landing mid-query
// then leaves the inserted entry with pre-mutation pins, so the next
// lookup conservatively invalidates it. Collected after execution
// instead, the same race would stamp the stale result with the new epoch
// and every subsequent lookup would silently serve stale data.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "format/writer.h"
#include "mv/mv_store.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

/// Delegating storage that reports each ReadRange's 1-based ordinal to a
/// hook before forwarding, so a test can inject work "mid-scan".
class HookedStore : public Storage {
 public:
  explicit HookedStore(std::shared_ptr<Storage> base)
      : base_(std::move(base)) {}

  std::function<void(uint64_t)> on_read;

  Result<std::vector<uint8_t>> Read(const std::string& path) override {
    return base_->Read(path);
  }
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override {
    ++reads_;
    if (on_read) on_read(reads_);
    return base_->ReadRange(path, offset, length);
  }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override {
    return base_->Write(path, data);
  }
  Result<uint64_t> Size(const std::string& path) override {
    return base_->Size(path);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return base_->List(prefix);
  }
  Status Delete(const std::string& path) override {
    return base_->Delete(path);
  }
  bool Exists(const std::string& path) override {
    return base_->Exists(path);
  }

  uint64_t reads() const { return reads_; }

 private:
  std::shared_ptr<Storage> base_;
  uint64_t reads_ = 0;
};

std::shared_ptr<Catalog> BuildCatalog(const std::shared_ptr<Storage>& storage) {
  auto catalog = std::make_shared<Catalog>(storage);
  EXPECT_TRUE(catalog->CreateDatabase("db").ok());
  FileSchema schema = {{"id", TypeId::kInt64}};
  EXPECT_TRUE(catalog->CreateTable("db", "t", schema).ok());
  PixelsWriter writer(schema);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(writer.AppendRow({Value::Int(i)}).ok());
  }
  EXPECT_TRUE(writer.Finish(storage.get(), "db/t/part0.pxl").ok());
  EXPECT_TRUE(catalog->AddTableFile("db", "t", "db/t/part0.pxl").ok());
  return catalog;
}

TEST(MvPinSnapshotTest, MidQueryWriteNeverPoisonsTheStore) {
  const char* kSql = "SELECT id FROM t WHERE id < 32";

  // Pass 1: count the storage reads one cold execution performs. Serial
  // execution makes the count (and the ordinal of the last read, a chunk
  // fetch issued well after the scan resolved its file list) stable.
  auto counting =
      std::make_shared<HookedStore>(std::make_shared<MemoryStore>());
  auto warm_catalog = BuildCatalog(counting);
  ExecContext warm_ctx;
  warm_ctx.catalog = warm_catalog.get();
  warm_ctx.parallelism = 1;
  ASSERT_TRUE(ExecuteQuery(kSql, "db", &warm_ctx).ok());
  const uint64_t total_reads = counting->reads();
  ASSERT_GT(total_reads, 0u);

  // Pass 2: identical setup, but a compaction-style file-list swap (same
  // paths, new version epoch) lands during the query's last storage read
  // — after the executor snapshotted pins, before the result exists.
  auto hooked = std::make_shared<HookedStore>(std::make_shared<MemoryStore>());
  auto catalog = BuildCatalog(hooked);
  MvStore store;
  ExecContext ctx;
  ctx.catalog = catalog.get();
  ctx.parallelism = 1;
  ctx.mv_store = &store;
  bool mutated = false;
  hooked->on_read = [&](uint64_t n) {
    if (n != total_reads || mutated) return;
    mutated = true;
    auto t = catalog->GetTable("db", "t");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(catalog->ReplaceTableFiles("db", "t", (*t)->files).ok());
  };
  ASSERT_TRUE(ExecuteQuery(kSql, "db", &ctx).ok());
  ASSERT_TRUE(mutated);
  hooked->on_read = nullptr;

  // The entry raced the write, so its pins must predate the new epoch:
  // the repeat MISSES, invalidates, and re-executes. A hit here would be
  // the silent-staleness bug this test guards against.
  ASSERT_TRUE(ExecuteQuery(kSql, "db", &ctx).ok());
  EXPECT_EQ(ctx.mv_hits.load(), 0u);
  EXPECT_GE(store.stats().invalidations, 1u);

  // The re-execution re-inserted the entry pinned at the current epoch;
  // from here on repeats hit normally.
  ASSERT_TRUE(ExecuteQuery(kSql, "db", &ctx).ok());
  EXPECT_EQ(ctx.mv_hits.load(), 1u);
}

}  // namespace
}  // namespace pixels
