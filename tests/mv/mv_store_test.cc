#include "mv/mv_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "storage/memory_store.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

TablePtr MakeIntTable(int64_t rows, int64_t base = 0) {
  auto batch = std::make_shared<RowBatch>();
  auto col = MakeVector(TypeId::kInt64);
  for (int64_t i = 0; i < rows; ++i) col->AppendInt(base + i);
  batch->AddColumn("v", std::move(col));
  auto table = std::make_shared<Table>();
  table->AddBatch(std::move(batch));
  return table;
}

PlanFingerprint Fp(uint64_t n) { return PlanFingerprint{n, ~n}; }

std::vector<TableVersionPin> EmpPins(const Catalog& catalog) {
  auto v = catalog.GetTableVersion("db", "emp");
  EXPECT_TRUE(v.ok());
  return {TableVersionPin{"db", "emp", v.ok() ? *v : 0}};
}

TEST(MvStoreTest, MissThenHitReportsSavedBytes) {
  auto catalog = testing::BuildTestCatalog();
  MvStore store;

  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());
  store.Insert(Fp(1), MakeIntTable(16), /*rebuild_scan_bytes=*/4096,
               EmpPins(*catalog));

  auto hit = store.Lookup(Fp(1), *catalog);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->saved_scan_bytes, 4096u);
  EXPECT_FALSE(hit->from_spill);
  EXPECT_EQ(hit->table->num_rows(), 16u);

  // A different fingerprint misses.
  EXPECT_FALSE(store.Lookup(Fp(2), *catalog).has_value());

  auto stats = store.stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.saved_scan_bytes, 4096u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(MvStoreTest, WriteInvalidatesOnVersionMismatch) {
  auto catalog = testing::BuildTestCatalog();
  MvStore store;
  store.Insert(Fp(1), MakeIntTable(8), 1000, EmpPins(*catalog));
  ASSERT_TRUE(store.Lookup(Fp(1), *catalog).has_value());

  // A write (new file) bumps emp's version epoch; the pin goes stale.
  ASSERT_TRUE(catalog->AddTableFile("db", "emp", "db/emp/part0.pxl").ok());
  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());

  auto stats = store.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_cached, 0u);
}

TEST(MvStoreTest, ReplaceTableFilesInvalidatesEvenWithSameFileList) {
  auto catalog = testing::BuildTestCatalog();
  MvStore store;
  store.Insert(Fp(1), MakeIntTable(8), 1000, EmpPins(*catalog));

  // Compaction swaps the file list; even an identical list is a new
  // epoch (the bytes under the paths may differ).
  auto files = catalog->GetTable("db", "emp");
  ASSERT_TRUE(files.ok());
  ASSERT_TRUE(
      catalog->ReplaceTableFiles("db", "emp", (*files)->files).ok());
  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());
  EXPECT_EQ(store.stats().invalidations, 1u);
}

TEST(MvStoreTest, InvalidateTableSweepsPinnedEntries) {
  auto catalog = testing::BuildTestCatalog();
  MvStore store;
  store.Insert(Fp(1), MakeIntTable(8), 100, EmpPins(*catalog));
  auto dv = catalog->GetTableVersion("db", "dept");
  ASSERT_TRUE(dv.ok());
  store.Insert(Fp(2), MakeIntTable(8), 100,
               {TableVersionPin{"db", "dept", *dv}});

  store.InvalidateTable("db", "emp");
  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());
  EXPECT_TRUE(store.Lookup(Fp(2), *catalog).has_value());
}

TEST(MvStoreTest, EvictionPrefersCheapToRebuildEntries) {
  auto catalog = testing::BuildTestCatalog();
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = 3 * one + one / 2;  // room for three entries
  MvStore store(options);

  // Three entries, same size and recency order 1,2,3; entry 2 is by far
  // the most expensive to rebuild.
  store.Insert(Fp(1), MakeIntTable(64), /*rebuild=*/100, EmpPins(*catalog));
  store.Insert(Fp(2), MakeIntTable(64), /*rebuild=*/1000000,
               EmpPins(*catalog));
  store.Insert(Fp(3), MakeIntTable(64), /*rebuild=*/200, EmpPins(*catalog));

  // A fourth entry forces one eviction: plain LRU would drop 1, but the
  // cost-aware policy keeps the expensive 2 and drops the cheapest in the
  // LRU window — which is 1 (cost 100).
  store.Insert(Fp(4), MakeIntTable(64), /*rebuild=*/300, EmpPins(*catalog));
  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());
  EXPECT_TRUE(store.Lookup(Fp(2), *catalog).has_value());
  EXPECT_TRUE(store.Lookup(Fp(3), *catalog).has_value());
  EXPECT_TRUE(store.Lookup(Fp(4), *catalog).has_value());
  EXPECT_EQ(store.stats().evictions, 1u);

  // Now make 2 the LRU tail... it still survives the next eviction
  // because rebuilding it costs 1000000.
  ASSERT_TRUE(store.Lookup(Fp(3), *catalog).has_value());
  ASSERT_TRUE(store.Lookup(Fp(4), *catalog).has_value());
  store.Insert(Fp(5), MakeIntTable(64), /*rebuild=*/400, EmpPins(*catalog));
  EXPECT_TRUE(store.Lookup(Fp(2), *catalog).has_value());
}

TEST(MvStoreTest, CapacityBoundHolds) {
  auto catalog = testing::BuildTestCatalog();
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = 2 * one;
  MvStore store(options);
  for (uint64_t i = 0; i < 10; ++i) {
    store.Insert(Fp(i), MakeIntTable(64), 100 + i, EmpPins(*catalog));
    EXPECT_LE(store.stats().bytes_cached, options.capacity_bytes);
  }
  EXPECT_LE(store.stats().entries, 2u);
}

TEST(MvStoreSpillTest, EvictionSpillsAndHitsReadBack) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = one + one / 2;  // one entry fits
  options.spill_storage = &spill;
  options.spill_prefix = "mv/spill";
  MvStore store(options);

  store.Insert(Fp(1), MakeIntTable(64, /*base=*/100), 1000,
               EmpPins(*catalog));
  store.Insert(Fp(2), MakeIntTable(64, /*base=*/200), 2000,
               EmpPins(*catalog));  // evicts 1 → spill

  auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.spill_writes, 1u);
  EXPECT_EQ(stats.spill_entries, 1u);
  EXPECT_TRUE(spill.Exists("mv/spill/" + Fp(1).ToHex() + ".pxl"));

  // The spilled entry still hits — served from storage, then re-admitted
  // (which evicts 2 in turn).
  auto hit = store.Lookup(Fp(1), *catalog);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_spill);
  EXPECT_EQ(hit->saved_scan_bytes, 1000u);
  EXPECT_EQ(hit->table->num_rows(), 64u);
  EXPECT_EQ(store.stats().spill_hits, 1u);

  auto again = store.Lookup(Fp(1), *catalog);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->from_spill);  // re-admitted to memory
}

TEST(MvStoreSpillTest, InvalidationDeletesSpillObject) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = one + one / 2;
  options.spill_storage = &spill;
  MvStore store(options);

  store.Insert(Fp(1), MakeIntTable(64), 1000, EmpPins(*catalog));
  store.Insert(Fp(2), MakeIntTable(64), 2000, EmpPins(*catalog));
  const std::string path = "mv/spill/" + Fp(1).ToHex() + ".pxl";
  ASSERT_TRUE(spill.Exists(path));

  // A version bump makes the spilled pins stale; the lookup deletes the
  // object instead of serving stale data.
  ASSERT_TRUE(catalog->AddTableFile("db", "emp", "db/emp/part0.pxl").ok());
  EXPECT_FALSE(store.Lookup(Fp(1), *catalog).has_value());
  EXPECT_FALSE(spill.Exists(path));

  // Explicit table invalidation also sweeps the spill tier.
  EXPECT_FALSE(store.Lookup(Fp(2), *catalog).has_value());
}

TEST(MvStoreSpillTest, SupersedingInsertDeletesSpillObject) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = one + one / 2;
  options.spill_storage = &spill;
  MvStore store(options);

  store.Insert(Fp(1), MakeIntTable(64), 1000, EmpPins(*catalog));
  store.Insert(Fp(2), MakeIntTable(64), 2000, EmpPins(*catalog));
  const std::string path = "mv/spill/" + Fp(1).ToHex() + ".pxl";
  ASSERT_TRUE(spill.Exists(path));

  // A fresh insert of key 1 supersedes the spilled copy; the object must
  // go with the index entry, or it would orphan in storage if the new
  // memory entry is later invalidated without spilling.
  store.Insert(Fp(1), MakeIntTable(64, /*base=*/500), 1500,
               EmpPins(*catalog));
  EXPECT_FALSE(spill.Exists(path));
  EXPECT_EQ(store.stats().spill_entries, 1u);  // key 2, evicted just now
}

TEST(MvStoreSpillTest, ReadmittedSpillHitDeletesObject) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  const uint64_t one = TablePayloadBytes(*MakeIntTable(64));
  MvStoreOptions options;
  options.capacity_bytes = one + one / 2;
  options.spill_storage = &spill;
  MvStore store(options);

  store.Insert(Fp(1), MakeIntTable(64), 1000, EmpPins(*catalog));
  store.Insert(Fp(2), MakeIntTable(64), 2000, EmpPins(*catalog));
  const std::string path1 = "mv/spill/" + Fp(1).ToHex() + ".pxl";
  ASSERT_TRUE(spill.Exists(path1));

  // The spill hit re-admits key 1 to memory and deletes its object; the
  // re-admission evicts key 2, which spills in turn.
  auto hit = store.Lookup(Fp(1), *catalog);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_spill);
  EXPECT_FALSE(spill.Exists(path1));
  EXPECT_TRUE(spill.Exists("mv/spill/" + Fp(2).ToHex() + ".pxl"));
}

TEST(MvStoreSpillTest, StartupSweepRemovesOrphanedObjects) {
  MemoryStore spill;
  std::vector<uint8_t> junk = {1, 2, 3};
  ASSERT_TRUE(spill.Write("mv/spill/orphan0.pxl", junk).ok());
  ASSERT_TRUE(spill.Write("mv/spill/orphan1.pxl", junk).ok());
  ASSERT_TRUE(spill.Write("other/keep.pxl", junk).ok());

  // The spill index is memory-only, so a new store cannot reach objects a
  // prior process left behind; construction sweeps the prefix.
  MvStoreOptions options;
  options.spill_storage = &spill;
  options.spill_prefix = "mv/spill";
  MvStore store(options);
  EXPECT_FALSE(spill.Exists("mv/spill/orphan0.pxl"));
  EXPECT_FALSE(spill.Exists("mv/spill/orphan1.pxl"));
  EXPECT_TRUE(spill.Exists("other/keep.pxl"));
}

TEST(MvStoreTest, SingleInsertEvictingManyEntries) {
  auto catalog = testing::BuildTestCatalog();
  const uint64_t one = TablePayloadBytes(*MakeIntTable(16));
  MvStoreOptions options;
  options.capacity_bytes = 8 * one + one / 2;
  options.eviction_window = 2;
  MvStore store(options);

  // Entry 0 is by far the most expensive to rebuild; the rest are cheap.
  store.Insert(Fp(0), MakeIntTable(16), /*rebuild=*/1000000,
               EmpPins(*catalog));
  for (uint64_t i = 1; i < 8; ++i) {
    store.Insert(Fp(i), MakeIntTable(16), 100 + i, EmpPins(*catalog));
  }
  ASSERT_EQ(store.stats().entries, 8u);

  // One insert six entries wide forces a burst of evictions in a single
  // EvictUntilFits pass; the capacity bound must hold and the expensive
  // entry must outlive the sweep (it is never the cheapest in a window).
  store.Insert(Fp(100), MakeIntTable(16 * 6), 500, EmpPins(*catalog));
  auto stats = store.stats();
  EXPECT_LE(stats.bytes_cached, options.capacity_bytes);
  EXPECT_GE(stats.evictions, 5u);
  EXPECT_TRUE(store.Lookup(Fp(0), *catalog).has_value());
  EXPECT_TRUE(store.Lookup(Fp(100), *catalog).has_value());
}

TEST(MvStoreSpillTest, OversizedEntryGoesStraightToSpill) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  MvStoreOptions options;
  options.capacity_bytes = 8;  // smaller than any real table
  options.spill_storage = &spill;
  MvStore store(options);

  store.Insert(Fp(1), MakeIntTable(256), 1000, EmpPins(*catalog));
  auto stats = store.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.spill_entries, 1u);

  auto hit = store.Lookup(Fp(1), *catalog);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_spill);
  EXPECT_EQ(hit->table->num_rows(), 256u);
}

// --- Concurrency suites (run under TSan in CI) ---

TEST(MvStoreConcurrencyTest, ParallelInsertsAndLookups) {
  auto catalog = testing::BuildTestCatalog();
  const uint64_t one = TablePayloadBytes(*MakeIntTable(32));
  MvStoreOptions options;
  options.capacity_bytes = 8 * one;  // forces concurrent evictions
  MvStore store(options);
  const auto pins = EmpPins(*catalog);

  ASSERT_TRUE(ThreadPool::Shared()
                  ->ParallelFor(0, 64, /*grain=*/1,
                                [&](size_t i) -> Status {
                                  const uint64_t key = i % 16;
                                  store.Insert(Fp(key), MakeIntTable(32),
                                               100 * (key + 1), pins);
                                  auto hit = store.Lookup(Fp(key), *catalog);
                                  if (hit.has_value() &&
                                      hit->table->num_rows() != 32) {
                                    return Status::Internal("corrupt hit");
                                  }
                                  (void)store.stats();
                                  return Status::OK();
                                })
                  .ok());

  auto stats = store.stats();
  EXPECT_EQ(stats.lookups, 64u);
  EXPECT_LE(stats.bytes_cached, options.capacity_bytes);
}

TEST(MvStoreConcurrencyTest, ParallelLookupsWithInvalidation) {
  auto catalog = testing::BuildTestCatalog();
  MvStore store;
  const auto pins = EmpPins(*catalog);
  for (uint64_t i = 0; i < 8; ++i) {
    store.Insert(Fp(i), MakeIntTable(32), 100, pins);
  }

  ASSERT_TRUE(ThreadPool::Shared()
                  ->ParallelFor(0, 64, /*grain=*/1,
                                [&](size_t i) -> Status {
                                  if (i % 16 == 0) {
                                    store.InvalidateTable("db", "emp");
                                  } else {
                                    (void)store.Lookup(Fp(i % 8), *catalog);
                                  }
                                  return Status::OK();
                                })
                  .ok());
  // Everything pinned to emp is gone after the last invalidation wave.
  store.InvalidateTable("db", "emp");
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(MvStoreConcurrencyTest, ParallelSpillTraffic) {
  auto catalog = testing::BuildTestCatalog();
  MemoryStore spill;
  const uint64_t one = TablePayloadBytes(*MakeIntTable(32));
  MvStoreOptions options;
  options.capacity_bytes = 2 * one;  // nearly everything spills
  options.spill_storage = &spill;
  MvStore store(options);
  const auto pins = EmpPins(*catalog);

  ASSERT_TRUE(ThreadPool::Shared()
                  ->ParallelFor(0, 48, /*grain=*/1,
                                [&](size_t i) -> Status {
                                  const uint64_t key = i % 6;
                                  store.Insert(Fp(key), MakeIntTable(32),
                                               100, pins);
                                  (void)store.Lookup(Fp(key), *catalog);
                                  return Status::OK();
                                })
                  .ok());
  auto stats = store.stats();
  EXPECT_LE(stats.bytes_cached, options.capacity_bytes);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace pixels
