#include "plan/fingerprint.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "testing/test_db.h"

namespace pixels {
namespace {

Result<PlanFingerprint> FingerprintSql(const std::string& sql,
                                       const Catalog& catalog) {
  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(sql, catalog, "db"));
  PIXELS_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), catalog));
  return FingerprintPlan(*plan);
}

std::string MustHex(const std::string& sql, const Catalog& catalog) {
  auto fp = FingerprintSql(sql, catalog);
  EXPECT_TRUE(fp.ok()) << sql << ": " << fp.status().ToString();
  return fp.ok() ? fp->ToHex() : "";
}

void Shuffle(std::vector<std::string>* v, Random* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(i) - 1));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

std::string Join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

TEST(FingerprintTest, IdenticalSqlSameFingerprint) {
  auto catalog = testing::BuildTestCatalog();
  const char* sql = "SELECT name, salary FROM emp WHERE dept = 'eng'";
  EXPECT_EQ(MustHex(sql, *catalog), MustHex(sql, *catalog));
}

TEST(FingerprintTest, HexIs32Chars) {
  auto catalog = testing::BuildTestCatalog();
  EXPECT_EQ(MustHex("SELECT id FROM emp", *catalog).size(), 32u);
}

// The canonicalization soundness property: reordering AND-conjuncts and
// SELECT-list items never changes the fingerprint (results are addressed
// by column name, conjunction is commutative).
TEST(FingerprintPropertyTest, ConjunctAndProjectionOrderIrrelevant) {
  auto catalog = testing::BuildTestCatalog();
  std::vector<std::string> conjuncts = {"salary > 75", "dept <> 'legal'",
                                        "id < 8", "name <> 'zed'"};
  std::vector<std::string> cols = {"id", "name", "dept", "salary"};
  Random rng(20260805);
  std::set<std::string> hexes;
  for (int trial = 0; trial < 32; ++trial) {
    Shuffle(&conjuncts, &rng);
    Shuffle(&cols, &rng);
    const std::string sql = "SELECT " + Join(cols, ", ") +
                            " FROM emp WHERE " + Join(conjuncts, " AND ");
    hexes.insert(MustHex(sql, *catalog));
  }
  EXPECT_EQ(hexes.size(), 1u);
}

// Any semantic change — a literal, a column, a table, an operator, the
// aggregate shape — must produce a distinct fingerprint.
TEST(FingerprintPropertyTest, SemanticChangesNeverCollide) {
  auto catalog = testing::BuildTestCatalog();
  const std::vector<std::string> queries = {
      "SELECT name FROM emp WHERE salary > 80",
      "SELECT name FROM emp WHERE salary > 81",
      "SELECT name FROM emp WHERE salary >= 80",
      "SELECT name FROM emp WHERE salary < 80",
      "SELECT id FROM emp WHERE salary > 80",
      "SELECT name FROM dept",
      "SELECT name FROM emp",
      "SELECT name FROM emp WHERE dept = 'eng'",
      "SELECT name FROM emp WHERE dept = 'hr'",
      "SELECT name FROM emp WHERE dept IN ('eng', 'hr')",
      "SELECT name FROM emp WHERE dept NOT IN ('eng', 'hr')",
      "SELECT count(*) AS c FROM emp",
      "SELECT count(*) AS c FROM emp GROUP BY dept",
      "SELECT dept, count(*) AS c FROM emp GROUP BY dept",
      "SELECT name FROM emp ORDER BY salary",
      "SELECT name FROM emp ORDER BY salary DESC",
      "SELECT name FROM emp ORDER BY salary LIMIT 3",
      "SELECT name FROM emp ORDER BY salary LIMIT 4",
      "SELECT DISTINCT dept FROM emp",
  };
  std::set<std::string> hexes;
  for (const auto& q : queries) hexes.insert(MustHex(q, *catalog));
  EXPECT_EQ(hexes.size(), queries.size());
}

TEST(FingerprintPropertyTest, InListOrderIrrelevant) {
  auto catalog = testing::BuildTestCatalog();
  EXPECT_EQ(
      MustHex("SELECT name FROM emp WHERE dept IN ('eng','hr','sales')",
              *catalog),
      MustHex("SELECT name FROM emp WHERE dept IN ('sales','eng','hr')",
              *catalog));
}

TEST(FingerprintPropertyTest, FlippedComparisonsEqual) {
  auto catalog = testing::BuildTestCatalog();
  // a > b and b < a are the same predicate after normalization.
  EXPECT_EQ(MustHex("SELECT name FROM emp WHERE salary > 80", *catalog),
            MustHex("SELECT name FROM emp WHERE 80 < salary", *catalog));
}

TEST(FingerprintPropertyTest, CommutativeOperandOrderIrrelevant) {
  auto catalog = testing::BuildTestCatalog();
  EXPECT_EQ(
      MustHex("SELECT name FROM emp WHERE salary + id > 100", *catalog),
      MustHex("SELECT name FROM emp WHERE id + salary > 100", *catalog));
  // Subtraction is NOT commutative.
  EXPECT_NE(
      MustHex("SELECT name FROM emp WHERE salary - id > 100", *catalog),
      MustHex("SELECT name FROM emp WHERE id - salary > 100", *catalog));
}

TEST(FingerprintTest, MaterializedViewPlansNotFingerprintable) {
  auto table = std::make_shared<Table>();
  PlanPtr mv = MakeMaterializedView(table);
  EXPECT_FALSE(FingerprintPlan(*mv).ok());
  // Nested anywhere in the tree, the failure propagates.
  PlanPtr lim = MakeLimit(mv, 10);
  EXPECT_FALSE(FingerprintPlan(*lim).ok());
}

std::string BinaryText(const char* op, const char* lhs, const char* rhs) {
  return CanonicalExprText(
      *MakeBinary(op, MakeColumnRef("", lhs), MakeColumnRef("", rhs)));
}

TEST(CanonicalExprTest, CommutativeOperandsSorted) {
  EXPECT_EQ(BinaryText("+", "a", "b"), BinaryText("+", "b", "a"));
  EXPECT_EQ(BinaryText("=", "a", "b"), BinaryText("=", "b", "a"));
  EXPECT_NE(BinaryText("-", "a", "b"), BinaryText("-", "b", "a"));
}

TEST(CanonicalExprTest, GreaterThanNormalizedToLessThan) {
  EXPECT_EQ(BinaryText("<", "a", "b"), BinaryText(">", "b", "a"));
  EXPECT_EQ(BinaryText("<=", "a", "b"), BinaryText(">=", "b", "a"));
}

TEST(CanonicalExprTest, ShortLiteralsEmbedVerbatim) {
  // Short constants enter the text exactly (length-prefixed), so two
  // distinct constants can never collide via a hash — the bytes differ.
  const std::string eng = CanonicalExprText(*MakeLiteral(Value::String("eng")));
  EXPECT_NE(eng.find("eng"), std::string::npos);
  EXPECT_NE(eng, CanonicalExprText(*MakeLiteral(Value::String("hr"))));
  // The kind tag keeps 1 and '1' distinct.
  EXPECT_NE(CanonicalExprText(*MakeLiteral(Value::Int(1))),
            CanonicalExprText(*MakeLiteral(Value::String("1"))));
  // The length prefix keeps crafted strings from impersonating grammar:
  // a literal containing the rendering of another literal stays distinct.
  EXPECT_NE(CanonicalExprText(*MakeLiteral(Value::String("4:s1}"))),
            CanonicalExprText(*MakeLiteral(Value::String("1"))));
}

TEST(CanonicalExprTest, LongLiteralsDualHashedAndBounded) {
  auto huge = MakeLiteral(Value::String(std::string(100000, 'x')));
  const std::string text = CanonicalExprText(*huge);
  EXPECT_LT(text.size(), 64u);  // hashed, not inlined
  EXPECT_NE(text, CanonicalExprText(*MakeLiteral(Value::String("x"))));
  // Both FNV streams enter the text: 4-char tag + 2 x 16 hex chars. A
  // single 64-bit collision therefore cannot merge two keys.
  EXPECT_EQ(text.size(), 4u + 32u);
  auto huge2 = MakeLiteral(Value::String(std::string(100000, 'y')));
  EXPECT_NE(text, CanonicalExprText(*huge2));
}

TEST(PinCollectionTest, PinsSortedDedupedAndVersioned) {
  auto catalog = testing::BuildTestCatalog();
  auto plan = PlanQuery(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name", *catalog,
      "db");
  ASSERT_TRUE(plan.ok());
  auto optimized = Optimize(std::move(*plan), *catalog);
  ASSERT_TRUE(optimized.ok());
  auto pins = CollectTableVersionPins(**optimized, *catalog);
  ASSERT_TRUE(pins.ok());
  ASSERT_EQ(pins->size(), 2u);
  EXPECT_EQ((*pins)[0].table, "dept");
  EXPECT_EQ((*pins)[1].table, "emp");
  for (const auto& pin : *pins) {
    auto v = catalog->GetTableVersion(pin.db, pin.table);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(pin.version, *v);
  }
}

TEST(PinCollectionTest, VersionBumpChangesPinNotFingerprint) {
  auto catalog = testing::BuildTestCatalog();
  const char* sql = "SELECT name FROM emp";
  const std::string before = MustHex(sql, *catalog);
  auto plan = Optimize(*PlanQuery(sql, *catalog, "db"), *catalog);
  ASSERT_TRUE(plan.ok());
  auto pins_before = CollectTableVersionPins(**plan, *catalog);
  ASSERT_TRUE(pins_before.ok());

  // A write bumps the version epoch...
  ASSERT_TRUE(catalog->AddTableFile("db", "emp", "db/emp/part0.pxl").ok());

  auto pins_after = CollectTableVersionPins(**plan, *catalog);
  ASSERT_TRUE(pins_after.ok());
  EXPECT_GT((*pins_after)[0].version, (*pins_before)[0].version);
  // ...but never the fingerprint: versions live in pins, not keys.
  EXPECT_EQ(MustHex(sql, *catalog), before);
}

}  // namespace
}  // namespace pixels
