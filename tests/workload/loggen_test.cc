#include "workload/loggen.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

class LogGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    LogGenOptions options;
    options.num_rows = 5000;
    options.rows_per_file = 2000;
    ASSERT_TRUE(GenerateWebLogs(catalog_.get(), "logs", options).ok());
    ctx_.catalog = catalog_.get();
  }

  TablePtr Run(const std::string& sql) {
    auto r = ExecuteQuery(sql, "logs", &ctx_);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(LogGenTest, RowCountAndFiles) {
  auto t = catalog_->GetTable("logs", "weblogs");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count, 5000u);
  EXPECT_EQ((*t)->files.size(), 3u);  // 2000+2000+1000
}

TEST_F(LogGenTest, ErrorRateApproximatesTarget) {
  auto t = Run("SELECT count(*) AS n FROM weblogs WHERE status >= 400");
  ASSERT_NE(t, nullptr);
  double errors = static_cast<double>(t->CollectColumn("n")[0].i);
  EXPECT_NEAR(errors / 5000.0, 0.04, 0.02);
}

TEST_F(LogGenTest, StatusesAreValidHttp) {
  auto t = Run("SELECT DISTINCT status FROM weblogs");
  for (const auto& v : t->CollectColumn("status")) {
    EXPECT_GE(v.i, 200);
    EXPECT_LE(v.i, 599);
  }
}

TEST_F(LogGenTest, UrlsFollowZipf) {
  auto t = Run(
      "SELECT url, count(*) AS n FROM weblogs GROUP BY url ORDER BY n DESC");
  auto counts = t->CollectColumn("n");
  ASSERT_GE(counts.size(), 3u);
  // The most popular URL dominates the tail (Zipf 1.1).
  EXPECT_GT(counts[0].i, counts[counts.size() - 1].i * 3);
}

TEST_F(LogGenTest, TimestampsMonotonicallyBounded) {
  auto t = Run("SELECT min(event_time) AS lo, max(event_time) AS hi FROM weblogs");
  int64_t lo = t->CollectColumn("lo")[0].i;
  int64_t hi = t->CollectColumn("hi")[0].i;
  EXPECT_LT(lo, hi);
  // 5000 rows at ~250ms spacing ≈ 21 minutes of traffic.
  EXPECT_LT(hi - lo, 30LL * 60 * 1000);
}

TEST_F(LogGenTest, ErrorsAreSlowerOnAverage) {
  auto t = Run(
      "SELECT avg(latency_ms) AS l FROM weblogs WHERE status >= 400");
  auto t2 = Run(
      "SELECT avg(latency_ms) AS l FROM weblogs WHERE status < 400");
  double err_latency = t->CollectColumn("l")[0].AsDouble();
  double ok_latency = t2->CollectColumn("l")[0].AsDouble();
  EXPECT_GT(err_latency, ok_latency * 2);
}

TEST_F(LogGenTest, AllCannedQueriesExecute) {
  for (const auto& q : LogQuerySet()) {
    auto t = Run(q.sql);
    ASSERT_NE(t, nullptr) << q.name;
  }
}

TEST_F(LogGenTest, CountryCodesValid) {
  auto t = Run("SELECT DISTINCT country FROM weblogs");
  EXPECT_LE(t->num_rows(), 8u);
  EXPECT_GE(t->num_rows(), 4u);
}

TEST_F(LogGenTest, SynonymsNonEmpty) {
  EXPECT_GE(LogSynonyms().size(), 5u);
}

}  // namespace
}  // namespace pixels
