#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pixels {
namespace {

TEST(ArrivalsTest, PoissonRateApproximatelyCorrect) {
  Random rng(42);
  auto arrivals = PoissonArrivals(&rng, 2.0, 10 * kMinutes);
  // Expected 2/s * 600s = 1200 arrivals.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 1200.0, 120.0);
}

TEST(ArrivalsTest, PoissonSortedAndBounded) {
  Random rng(7);
  auto arrivals = PoissonArrivals(&rng, 5.0, 1 * kMinutes);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 1 * kMinutes);
  }
}

TEST(ArrivalsTest, ZeroRateYieldsNothing) {
  Random rng(1);
  EXPECT_TRUE(PoissonArrivals(&rng, 0, kMinutes).empty());
  EXPECT_TRUE(PoissonArrivals(&rng, -1, kMinutes).empty());
}

TEST(ArrivalsTest, Deterministic) {
  Random a(9), b(9);
  EXPECT_EQ(PoissonArrivals(&a, 1.0, kMinutes), PoissonArrivals(&b, 1.0, kMinutes));
}

TEST(ArrivalsTest, SpikeConcentratesArrivals) {
  Random rng(11);
  const SimTime spike_start = 5 * kMinutes;
  const SimTime spike_len = 1 * kMinutes;
  auto arrivals =
      SpikeArrivals(&rng, 0.2, 10.0, spike_start, spike_len, 10 * kMinutes);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  size_t in_spike = 0;
  for (SimTime t : arrivals) {
    if (t >= spike_start && t < spike_start + spike_len) ++in_spike;
  }
  // Spike window: 10/s * 60s = 600 plus base; rest: 0.2/s * 540s = 108.
  EXPECT_GT(in_spike, arrivals.size() / 2);
}

TEST(ArrivalsTest, PeriodicSpikesRecur) {
  Random rng(13);
  const SimTime period = 5 * kMinutes;
  auto arrivals = PeriodicSpikeArrivals(&rng, 0.05, 5.0, period, 30 * kSeconds,
                                        20 * kMinutes);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // Four spikes at 2.5, 7.5, 12.5, 17.5 minutes; each window should hold
  // many arrivals.
  for (int k = 0; k < 4; ++k) {
    SimTime start = period / 2 + k * period;
    size_t in_window = 0;
    for (SimTime t : arrivals) {
      if (t >= start && t < start + 30 * kSeconds) ++in_window;
    }
    EXPECT_GT(in_window, 50u) << "spike " << k;
  }
}

TEST(ArrivalsTest, SpikesStayWithinDuration) {
  Random rng(17);
  auto arrivals = PeriodicSpikeArrivals(&rng, 0.1, 3.0, 2 * kMinutes,
                                        1 * kMinutes, 5 * kMinutes);
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 5 * kMinutes);
  }
}

}  // namespace
}  // namespace pixels
