#include "workload/tpch.h"

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/memory_store.h"

namespace pixels {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_shared<MemoryStore>();
    catalog_ = std::make_shared<Catalog>(storage_);
    TpchOptions options;
    options.scale_factor = 0.001;  // 6000 lineitems
    options.rows_per_file = 2500;
    ASSERT_TRUE(GenerateTpch(catalog_.get(), "tpch", options).ok());
    ctx_.catalog = catalog_.get();
  }

  TablePtr Run(const std::string& sql) {
    auto r = ExecuteQuery(sql, "tpch", &ctx_);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  std::shared_ptr<MemoryStore> storage_;
  std::shared_ptr<Catalog> catalog_;
  ExecContext ctx_;
};

TEST_F(TpchTest, TablesExistWithExpectedCardinalities) {
  auto region = catalog_->GetTable("tpch", "region");
  ASSERT_TRUE(region.ok());
  EXPECT_EQ((*region)->row_count, 5u);
  auto nation = catalog_->GetTable("tpch", "nation");
  ASSERT_TRUE(nation.ok());
  EXPECT_EQ((*nation)->row_count, 25u);
  auto customer = catalog_->GetTable("tpch", "customer");
  ASSERT_TRUE(customer.ok());
  EXPECT_EQ((*customer)->row_count, 150u);
  auto orders = catalog_->GetTable("tpch", "orders");
  ASSERT_TRUE(orders.ok());
  EXPECT_EQ((*orders)->row_count, 1500u);
  auto lineitem = catalog_->GetTable("tpch", "lineitem");
  ASSERT_TRUE(lineitem.ok());
  EXPECT_EQ((*lineitem)->row_count, 6000u);
  // lineitem spans multiple files at this rows_per_file.
  EXPECT_GE((*lineitem)->files.size(), 2u);
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  auto storage2 = std::make_shared<MemoryStore>();
  auto catalog2 = std::make_shared<Catalog>(storage2);
  TpchOptions options;
  options.scale_factor = 0.001;
  options.rows_per_file = 2500;
  ASSERT_TRUE(GenerateTpch(catalog2.get(), "tpch", options).ok());
  // Same bytes for same seed.
  auto files1 = storage_->List("");
  auto files2 = storage2->List("");
  ASSERT_TRUE(files1.ok() && files2.ok());
  ASSERT_EQ(files1->size(), files2->size());
  EXPECT_EQ(storage_->TotalBytes(), storage2->TotalBytes());
}

TEST_F(TpchTest, ForeignKeysJoinable) {
  // Every lineitem joins an order; every order joins a customer.
  auto t = Run(
      "SELECT count(*) AS n FROM lineitem l JOIN orders o ON l.l_orderkey = "
      "o.o_orderkey");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->CollectColumn("n")[0].i, 6000);
  auto t2 = Run(
      "SELECT count(*) AS n FROM orders o JOIN customer c ON o.o_custkey = "
      "c.c_custkey");
  EXPECT_EQ(t2->CollectColumn("n")[0].i, 1500);
}

TEST_F(TpchTest, NationRegionMappingValid) {
  auto t = Run(
      "SELECT r.r_name, count(*) AS n FROM nation n JOIN region r ON "
      "n.n_regionkey = r.r_regionkey GROUP BY r.r_name ORDER BY r.r_name");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 5u);  // all five regions have nations
}

TEST_F(TpchTest, DatesWithinGenerationRange) {
  auto t = Run("SELECT min(o_orderdate) AS lo, max(o_orderdate) AS hi FROM orders");
  ASSERT_NE(t, nullptr);
  int64_t lo = t->CollectColumn("lo")[0].i;
  int64_t hi = t->CollectColumn("hi")[0].i;
  EXPECT_GE(lo, *ParseDate("1992-01-01"));
  EXPECT_LE(hi, *ParseDate("1999-01-01"));
}

TEST_F(TpchTest, AllCannedQueriesExecute) {
  for (const auto& q : TpchQuerySet()) {
    auto t = Run(q.sql);
    ASSERT_NE(t, nullptr) << q.name;
    EXPECT_GT(q.weight, 0) << q.name;
  }
}

TEST_F(TpchTest, Q1ShapeIsCorrect) {
  auto t = Run(TpchQuerySet()[0].sql);  // q1_pricing_summary
  ASSERT_NE(t, nullptr);
  // Up to 6 (returnflag, linestatus) groups; at least 2 at tiny scale.
  EXPECT_GE(t->num_rows(), 2u);
  EXPECT_LE(t->num_rows(), 6u);
  // Aggregates positive.
  auto sums = t->CollectColumn("sum_base_price");
  for (const auto& v : sums) EXPECT_GT(v.AsDouble(), 0);
}

TEST_F(TpchTest, Q6RevenueIsPositive) {
  auto t = Run(TpchQuerySet()[3].sql);  // q6_forecast_revenue
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_GT(t->CollectColumn("revenue")[0].AsDouble(), 0);
}

TEST_F(TpchTest, ZoneMapsPruneDateRangeScans) {
  ctx_.bytes_scanned = 0;
  Run("SELECT count(*) FROM lineitem WHERE l_shipdate < DATE '1800-01-01'");
  uint64_t pruned_bytes = ctx_.bytes_scanned;
  ctx_.bytes_scanned = 0;
  Run("SELECT count(*) FROM lineitem");
  uint64_t full_bytes = ctx_.bytes_scanned;
  EXPECT_LT(pruned_bytes, full_bytes / 2);
}

TEST_F(TpchTest, SynonymsNonEmpty) {
  EXPECT_GE(TpchSynonyms().size(), 5u);
}

TEST_F(TpchTest, Q12CountsPartitionCorrectly) {
  // high_line_count + low_line_count must equal the filtered join size.
  auto t = Run(
      "SELECT l.l_shipmode, sum(CASE WHEN o.o_orderpriority = '1-URGENT' OR "
      "o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_count, "
      "sum(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority "
      "<> '2-HIGH' THEN 1 ELSE 0 END) AS low_count, count(*) AS total FROM "
      "orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE "
      "l.l_shipmode IN ('MAIL', 'SHIP') GROUP BY l.l_shipmode ORDER BY "
      "l.l_shipmode");
  ASSERT_NE(t, nullptr);
  auto highs = t->CollectColumn("high_count");
  auto lows = t->CollectColumn("low_count");
  auto totals = t->CollectColumn("total");
  ASSERT_EQ(totals.size(), 2u);  // MAIL and SHIP
  for (size_t i = 0; i < totals.size(); ++i) {
    EXPECT_EQ(highs[i].AsInt() + lows[i].AsInt(), totals[i].AsInt());
    EXPECT_GT(totals[i].AsInt(), 0);
  }
}

TEST_F(TpchTest, Q14PromoShareBetween0And100) {
  auto t = Run(TpchQuerySet()[5].sql);  // q14_promo_effect
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 1u);
  double share = t->CollectColumn("promo_revenue")[0].AsDouble();
  EXPECT_GE(share, 0.0);
  EXPECT_LE(share, 100.0);
  EXPECT_GT(share, 1.0);  // ~1/6 of part types are PROMO
}

TEST_F(TpchTest, PartAndSupplierJoinable) {
  auto t = Run(
      "SELECT count(*) AS n FROM lineitem l JOIN part p ON l.l_partkey = "
      "p.p_partkey");
  EXPECT_EQ(t->CollectColumn("n")[0].i, 6000);
  auto t2 = Run(
      "SELECT count(*) AS n FROM lineitem l JOIN supplier s ON l.l_suppkey "
      "= s.s_suppkey");
  EXPECT_EQ(t2->CollectColumn("n")[0].i, 6000);
}

TEST_F(TpchTest, ShipDatesAreClustered) {
  // Zone maps rely on the generator's date clustering: within one file,
  // the shipdate spread must be far below the full 7-year range.
  auto table = catalog_->GetTable("tpch", "lineitem");
  ASSERT_TRUE(table.ok());
  auto reader = PixelsReader::Open(storage_.get(), (*table)->files[0]);
  ASSERT_TRUE(reader.ok());
  auto stats = (*reader)->FileStats("l_shipdate");
  ASSERT_TRUE(stats.ok());
  int64_t spread = stats->max.i - stats->min.i;
  EXPECT_LT(spread, 2556 / 2);  // less than half the full range
}

}  // namespace
}  // namespace pixels
