# Empty compiler generated dependencies file for bench_scalein.
# This may be replaced when dependencies are built.
