
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scalein.cc" "bench/CMakeFiles/bench_scalein.dir/bench_scalein.cc.o" "gcc" "bench/CMakeFiles/bench_scalein.dir/bench_scalein.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_rover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_turbo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_nl2sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
