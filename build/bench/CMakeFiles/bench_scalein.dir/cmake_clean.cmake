file(REMOVE_RECURSE
  "CMakeFiles/bench_scalein.dir/bench_scalein.cc.o"
  "CMakeFiles/bench_scalein.dir/bench_scalein.cc.o.d"
  "bench_scalein"
  "bench_scalein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
