file(REMOVE_RECURSE
  "CMakeFiles/bench_text2sql.dir/bench_text2sql.cc.o"
  "CMakeFiles/bench_text2sql.dir/bench_text2sql.cc.o.d"
  "bench_text2sql"
  "bench_text2sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text2sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
