# Empty compiler generated dependencies file for bench_text2sql.
# This may be replaced when dependencies are built.
