file(REMOVE_RECURSE
  "CMakeFiles/bench_pricing.dir/bench_pricing.cc.o"
  "CMakeFiles/bench_pricing.dir/bench_pricing.cc.o.d"
  "bench_pricing"
  "bench_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
