# Empty compiler generated dependencies file for bench_cf_vs_vm.
# This may be replaced when dependencies are built.
