file(REMOVE_RECURSE
  "CMakeFiles/bench_cf_vs_vm.dir/bench_cf_vs_vm.cc.o"
  "CMakeFiles/bench_cf_vs_vm.dir/bench_cf_vs_vm.cc.o.d"
  "bench_cf_vs_vm"
  "bench_cf_vs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cf_vs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
