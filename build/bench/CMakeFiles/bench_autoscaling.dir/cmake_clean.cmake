file(REMOVE_RECURSE
  "CMakeFiles/bench_autoscaling.dir/bench_autoscaling.cc.o"
  "CMakeFiles/bench_autoscaling.dir/bench_autoscaling.cc.o.d"
  "bench_autoscaling"
  "bench_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
