# Empty compiler generated dependencies file for bench_autoscaling.
# This may be replaced when dependencies are built.
