file(REMOVE_RECURSE
  "CMakeFiles/bench_service_levels.dir/bench_service_levels.cc.o"
  "CMakeFiles/bench_service_levels.dir/bench_service_levels.cc.o.d"
  "bench_service_levels"
  "bench_service_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
