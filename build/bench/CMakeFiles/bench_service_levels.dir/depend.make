# Empty dependencies file for bench_service_levels.
# This may be replaced when dependencies are built.
