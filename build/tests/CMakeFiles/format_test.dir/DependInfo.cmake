
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/format/batch_test.cc" "tests/CMakeFiles/format_test.dir/format/batch_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/batch_test.cc.o.d"
  "/root/repo/tests/format/encoding_test.cc" "tests/CMakeFiles/format_test.dir/format/encoding_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/encoding_test.cc.o.d"
  "/root/repo/tests/format/stats_test.cc" "tests/CMakeFiles/format_test.dir/format/stats_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/stats_test.cc.o.d"
  "/root/repo/tests/format/type_test.cc" "tests/CMakeFiles/format_test.dir/format/type_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/type_test.cc.o.d"
  "/root/repo/tests/format/vector_test.cc" "tests/CMakeFiles/format_test.dir/format/vector_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/vector_test.cc.o.d"
  "/root/repo/tests/format/writer_reader_test.cc" "tests/CMakeFiles/format_test.dir/format/writer_reader_test.cc.o" "gcc" "tests/CMakeFiles/format_test.dir/format/writer_reader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
