
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog/catalog_test.cc" "tests/CMakeFiles/catalog_test.dir/catalog/catalog_test.cc.o" "gcc" "tests/CMakeFiles/catalog_test.dir/catalog/catalog_test.cc.o.d"
  "/root/repo/tests/catalog/compaction_test.cc" "tests/CMakeFiles/catalog_test.dir/catalog/compaction_test.cc.o" "gcc" "tests/CMakeFiles/catalog_test.dir/catalog/compaction_test.cc.o.d"
  "/root/repo/tests/catalog/csv_test.cc" "tests/CMakeFiles/catalog_test.dir/catalog/csv_test.cc.o" "gcc" "tests/CMakeFiles/catalog_test.dir/catalog/csv_test.cc.o.d"
  "/root/repo/tests/catalog/persistence_test.cc" "tests/CMakeFiles/catalog_test.dir/catalog/persistence_test.cc.o" "gcc" "tests/CMakeFiles/catalog_test.dir/catalog/persistence_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
