
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud/cf_service_test.cc" "tests/CMakeFiles/cloud_test.dir/cloud/cf_service_test.cc.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud/cf_service_test.cc.o.d"
  "/root/repo/tests/cloud/metrics_test.cc" "tests/CMakeFiles/cloud_test.dir/cloud/metrics_test.cc.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud/metrics_test.cc.o.d"
  "/root/repo/tests/cloud/pricing_test.cc" "tests/CMakeFiles/cloud_test.dir/cloud/pricing_test.cc.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud/pricing_test.cc.o.d"
  "/root/repo/tests/cloud/vm_cluster_test.cc" "tests/CMakeFiles/cloud_test.dir/cloud/vm_cluster_test.cc.o" "gcc" "tests/CMakeFiles/cloud_test.dir/cloud/vm_cluster_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
