file(REMOVE_RECURSE
  "CMakeFiles/rover_test.dir/rover/auth_test.cc.o"
  "CMakeFiles/rover_test.dir/rover/auth_test.cc.o.d"
  "CMakeFiles/rover_test.dir/rover/backend_test.cc.o"
  "CMakeFiles/rover_test.dir/rover/backend_test.cc.o.d"
  "rover_test"
  "rover_test.pdb"
  "rover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
