# Empty compiler generated dependencies file for rover_test.
# This may be replaced when dependencies are built.
