# Empty dependencies file for nl2sql_test.
# This may be replaced when dependencies are built.
