file(REMOVE_RECURSE
  "CMakeFiles/nl2sql_test.dir/nl2sql/codes_service_test.cc.o"
  "CMakeFiles/nl2sql_test.dir/nl2sql/codes_service_test.cc.o.d"
  "CMakeFiles/nl2sql_test.dir/nl2sql/nl_benchmark_test.cc.o"
  "CMakeFiles/nl2sql_test.dir/nl2sql/nl_benchmark_test.cc.o.d"
  "CMakeFiles/nl2sql_test.dir/nl2sql/schema_linker_test.cc.o"
  "CMakeFiles/nl2sql_test.dir/nl2sql/schema_linker_test.cc.o.d"
  "CMakeFiles/nl2sql_test.dir/nl2sql/semantic_parser_test.cc.o"
  "CMakeFiles/nl2sql_test.dir/nl2sql/semantic_parser_test.cc.o.d"
  "nl2sql_test"
  "nl2sql_test.pdb"
  "nl2sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl2sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
