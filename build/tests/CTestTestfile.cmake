# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/turbo_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/nl2sql_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/rover_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
