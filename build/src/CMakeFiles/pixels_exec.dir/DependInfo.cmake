
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/pixels_exec.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/pixels_exec.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/hash_agg.cc" "src/CMakeFiles/pixels_exec.dir/exec/hash_agg.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/hash_agg.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/pixels_exec.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/pixels_exec.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/pixels_exec.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/pixels_exec.dir/exec/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
