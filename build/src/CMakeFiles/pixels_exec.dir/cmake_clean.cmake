file(REMOVE_RECURSE
  "CMakeFiles/pixels_exec.dir/exec/executor.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/pixels_exec.dir/exec/expression.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/expression.cc.o.d"
  "CMakeFiles/pixels_exec.dir/exec/hash_agg.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/hash_agg.cc.o.d"
  "CMakeFiles/pixels_exec.dir/exec/hash_join.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/hash_join.cc.o.d"
  "CMakeFiles/pixels_exec.dir/exec/operators.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/pixels_exec.dir/exec/sort.cc.o"
  "CMakeFiles/pixels_exec.dir/exec/sort.cc.o.d"
  "libpixels_exec.a"
  "libpixels_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
