# Empty dependencies file for pixels_exec.
# This may be replaced when dependencies are built.
