file(REMOVE_RECURSE
  "libpixels_exec.a"
)
