# Empty dependencies file for pixels_format.
# This may be replaced when dependencies are built.
