file(REMOVE_RECURSE
  "CMakeFiles/pixels_format.dir/format/batch.cc.o"
  "CMakeFiles/pixels_format.dir/format/batch.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/encoding.cc.o"
  "CMakeFiles/pixels_format.dir/format/encoding.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/reader.cc.o"
  "CMakeFiles/pixels_format.dir/format/reader.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/stats.cc.o"
  "CMakeFiles/pixels_format.dir/format/stats.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/type.cc.o"
  "CMakeFiles/pixels_format.dir/format/type.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/vector.cc.o"
  "CMakeFiles/pixels_format.dir/format/vector.cc.o.d"
  "CMakeFiles/pixels_format.dir/format/writer.cc.o"
  "CMakeFiles/pixels_format.dir/format/writer.cc.o.d"
  "libpixels_format.a"
  "libpixels_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
