file(REMOVE_RECURSE
  "libpixels_format.a"
)
