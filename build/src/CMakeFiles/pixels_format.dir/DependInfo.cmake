
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/batch.cc" "src/CMakeFiles/pixels_format.dir/format/batch.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/batch.cc.o.d"
  "/root/repo/src/format/encoding.cc" "src/CMakeFiles/pixels_format.dir/format/encoding.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/encoding.cc.o.d"
  "/root/repo/src/format/reader.cc" "src/CMakeFiles/pixels_format.dir/format/reader.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/reader.cc.o.d"
  "/root/repo/src/format/stats.cc" "src/CMakeFiles/pixels_format.dir/format/stats.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/stats.cc.o.d"
  "/root/repo/src/format/type.cc" "src/CMakeFiles/pixels_format.dir/format/type.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/type.cc.o.d"
  "/root/repo/src/format/vector.cc" "src/CMakeFiles/pixels_format.dir/format/vector.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/vector.cc.o.d"
  "/root/repo/src/format/writer.cc" "src/CMakeFiles/pixels_format.dir/format/writer.cc.o" "gcc" "src/CMakeFiles/pixels_format.dir/format/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
