file(REMOVE_RECURSE
  "CMakeFiles/pixels_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/pixels_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/pixels_catalog.dir/catalog/compaction.cc.o"
  "CMakeFiles/pixels_catalog.dir/catalog/compaction.cc.o.d"
  "CMakeFiles/pixels_catalog.dir/catalog/csv.cc.o"
  "CMakeFiles/pixels_catalog.dir/catalog/csv.cc.o.d"
  "CMakeFiles/pixels_catalog.dir/catalog/schema.cc.o"
  "CMakeFiles/pixels_catalog.dir/catalog/schema.cc.o.d"
  "libpixels_catalog.a"
  "libpixels_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
