# Empty dependencies file for pixels_catalog.
# This may be replaced when dependencies are built.
