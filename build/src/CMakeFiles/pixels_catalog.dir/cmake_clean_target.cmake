file(REMOVE_RECURSE
  "libpixels_catalog.a"
)
