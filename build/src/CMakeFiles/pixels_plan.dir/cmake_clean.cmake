file(REMOVE_RECURSE
  "CMakeFiles/pixels_plan.dir/plan/binder.cc.o"
  "CMakeFiles/pixels_plan.dir/plan/binder.cc.o.d"
  "CMakeFiles/pixels_plan.dir/plan/logical_plan.cc.o"
  "CMakeFiles/pixels_plan.dir/plan/logical_plan.cc.o.d"
  "CMakeFiles/pixels_plan.dir/plan/optimizer.cc.o"
  "CMakeFiles/pixels_plan.dir/plan/optimizer.cc.o.d"
  "CMakeFiles/pixels_plan.dir/plan/subplan.cc.o"
  "CMakeFiles/pixels_plan.dir/plan/subplan.cc.o.d"
  "libpixels_plan.a"
  "libpixels_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
