file(REMOVE_RECURSE
  "libpixels_plan.a"
)
