# Empty dependencies file for pixels_plan.
# This may be replaced when dependencies are built.
