file(REMOVE_RECURSE
  "CMakeFiles/pixels_turbo.dir/turbo/cf_worker.cc.o"
  "CMakeFiles/pixels_turbo.dir/turbo/cf_worker.cc.o.d"
  "CMakeFiles/pixels_turbo.dir/turbo/coordinator.cc.o"
  "CMakeFiles/pixels_turbo.dir/turbo/coordinator.cc.o.d"
  "CMakeFiles/pixels_turbo.dir/turbo/query_task.cc.o"
  "CMakeFiles/pixels_turbo.dir/turbo/query_task.cc.o.d"
  "libpixels_turbo.a"
  "libpixels_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
