# Empty compiler generated dependencies file for pixels_turbo.
# This may be replaced when dependencies are built.
