file(REMOVE_RECURSE
  "libpixels_turbo.a"
)
