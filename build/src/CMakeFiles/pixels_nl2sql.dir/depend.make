# Empty dependencies file for pixels_nl2sql.
# This may be replaced when dependencies are built.
