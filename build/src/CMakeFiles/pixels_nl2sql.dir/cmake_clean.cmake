file(REMOVE_RECURSE
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/codes_service.cc.o"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/codes_service.cc.o.d"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/nl_benchmark.cc.o"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/nl_benchmark.cc.o.d"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/schema_linker.cc.o"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/schema_linker.cc.o.d"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/semantic_parser.cc.o"
  "CMakeFiles/pixels_nl2sql.dir/nl2sql/semantic_parser.cc.o.d"
  "libpixels_nl2sql.a"
  "libpixels_nl2sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_nl2sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
