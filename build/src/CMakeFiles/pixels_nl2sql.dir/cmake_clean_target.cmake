file(REMOVE_RECURSE
  "libpixels_nl2sql.a"
)
