file(REMOVE_RECURSE
  "CMakeFiles/pixels_storage.dir/storage/local_fs.cc.o"
  "CMakeFiles/pixels_storage.dir/storage/local_fs.cc.o.d"
  "CMakeFiles/pixels_storage.dir/storage/memory_store.cc.o"
  "CMakeFiles/pixels_storage.dir/storage/memory_store.cc.o.d"
  "CMakeFiles/pixels_storage.dir/storage/object_store.cc.o"
  "CMakeFiles/pixels_storage.dir/storage/object_store.cc.o.d"
  "CMakeFiles/pixels_storage.dir/storage/storage.cc.o"
  "CMakeFiles/pixels_storage.dir/storage/storage.cc.o.d"
  "libpixels_storage.a"
  "libpixels_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
