# Empty dependencies file for pixels_storage.
# This may be replaced when dependencies are built.
