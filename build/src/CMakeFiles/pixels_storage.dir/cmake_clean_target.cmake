file(REMOVE_RECURSE
  "libpixels_storage.a"
)
