# Empty dependencies file for pixels_sql.
# This may be replaced when dependencies are built.
