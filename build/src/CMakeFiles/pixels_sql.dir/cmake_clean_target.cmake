file(REMOVE_RECURSE
  "libpixels_sql.a"
)
