file(REMOVE_RECURSE
  "CMakeFiles/pixels_sql.dir/sql/ast.cc.o"
  "CMakeFiles/pixels_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/pixels_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/pixels_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/pixels_sql.dir/sql/parser.cc.o"
  "CMakeFiles/pixels_sql.dir/sql/parser.cc.o.d"
  "libpixels_sql.a"
  "libpixels_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
