# Empty dependencies file for pixels_common.
# This may be replaced when dependencies are built.
