file(REMOVE_RECURSE
  "libpixels_common.a"
)
