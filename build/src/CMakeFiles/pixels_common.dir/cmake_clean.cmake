file(REMOVE_RECURSE
  "CMakeFiles/pixels_common.dir/common/bytes.cc.o"
  "CMakeFiles/pixels_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/config.cc.o"
  "CMakeFiles/pixels_common.dir/common/config.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/json.cc.o"
  "CMakeFiles/pixels_common.dir/common/json.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/logging.cc.o"
  "CMakeFiles/pixels_common.dir/common/logging.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/random.cc.o"
  "CMakeFiles/pixels_common.dir/common/random.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/sim_clock.cc.o"
  "CMakeFiles/pixels_common.dir/common/sim_clock.cc.o.d"
  "CMakeFiles/pixels_common.dir/common/status.cc.o"
  "CMakeFiles/pixels_common.dir/common/status.cc.o.d"
  "libpixels_common.a"
  "libpixels_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
