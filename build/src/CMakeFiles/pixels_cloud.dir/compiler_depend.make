# Empty compiler generated dependencies file for pixels_cloud.
# This may be replaced when dependencies are built.
