
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cf_service.cc" "src/CMakeFiles/pixels_cloud.dir/cloud/cf_service.cc.o" "gcc" "src/CMakeFiles/pixels_cloud.dir/cloud/cf_service.cc.o.d"
  "/root/repo/src/cloud/metrics.cc" "src/CMakeFiles/pixels_cloud.dir/cloud/metrics.cc.o" "gcc" "src/CMakeFiles/pixels_cloud.dir/cloud/metrics.cc.o.d"
  "/root/repo/src/cloud/pricing.cc" "src/CMakeFiles/pixels_cloud.dir/cloud/pricing.cc.o" "gcc" "src/CMakeFiles/pixels_cloud.dir/cloud/pricing.cc.o.d"
  "/root/repo/src/cloud/vm_cluster.cc" "src/CMakeFiles/pixels_cloud.dir/cloud/vm_cluster.cc.o" "gcc" "src/CMakeFiles/pixels_cloud.dir/cloud/vm_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
