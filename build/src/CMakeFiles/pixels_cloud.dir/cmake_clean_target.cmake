file(REMOVE_RECURSE
  "libpixels_cloud.a"
)
