file(REMOVE_RECURSE
  "CMakeFiles/pixels_cloud.dir/cloud/cf_service.cc.o"
  "CMakeFiles/pixels_cloud.dir/cloud/cf_service.cc.o.d"
  "CMakeFiles/pixels_cloud.dir/cloud/metrics.cc.o"
  "CMakeFiles/pixels_cloud.dir/cloud/metrics.cc.o.d"
  "CMakeFiles/pixels_cloud.dir/cloud/pricing.cc.o"
  "CMakeFiles/pixels_cloud.dir/cloud/pricing.cc.o.d"
  "CMakeFiles/pixels_cloud.dir/cloud/vm_cluster.cc.o"
  "CMakeFiles/pixels_cloud.dir/cloud/vm_cluster.cc.o.d"
  "libpixels_cloud.a"
  "libpixels_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
