file(REMOVE_RECURSE
  "libpixels_server.a"
)
