file(REMOVE_RECURSE
  "CMakeFiles/pixels_server.dir/server/query_server.cc.o"
  "CMakeFiles/pixels_server.dir/server/query_server.cc.o.d"
  "CMakeFiles/pixels_server.dir/server/service_level.cc.o"
  "CMakeFiles/pixels_server.dir/server/service_level.cc.o.d"
  "libpixels_server.a"
  "libpixels_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
