# Empty dependencies file for pixels_server.
# This may be replaced when dependencies are built.
