file(REMOVE_RECURSE
  "libpixels_rover.a"
)
