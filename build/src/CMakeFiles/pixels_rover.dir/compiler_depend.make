# Empty compiler generated dependencies file for pixels_rover.
# This may be replaced when dependencies are built.
