file(REMOVE_RECURSE
  "CMakeFiles/pixels_rover.dir/rover/auth.cc.o"
  "CMakeFiles/pixels_rover.dir/rover/auth.cc.o.d"
  "CMakeFiles/pixels_rover.dir/rover/backend.cc.o"
  "CMakeFiles/pixels_rover.dir/rover/backend.cc.o.d"
  "libpixels_rover.a"
  "libpixels_rover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_rover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
