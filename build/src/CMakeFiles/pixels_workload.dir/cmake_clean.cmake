file(REMOVE_RECURSE
  "CMakeFiles/pixels_workload.dir/workload/arrivals.cc.o"
  "CMakeFiles/pixels_workload.dir/workload/arrivals.cc.o.d"
  "CMakeFiles/pixels_workload.dir/workload/loggen.cc.o"
  "CMakeFiles/pixels_workload.dir/workload/loggen.cc.o.d"
  "CMakeFiles/pixels_workload.dir/workload/tpch.cc.o"
  "CMakeFiles/pixels_workload.dir/workload/tpch.cc.o.d"
  "libpixels_workload.a"
  "libpixels_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pixels_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
