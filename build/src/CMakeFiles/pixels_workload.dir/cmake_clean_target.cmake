file(REMOVE_RECURSE
  "libpixels_workload.a"
)
