# Empty compiler generated dependencies file for pixels_workload.
# This may be replaced when dependencies are built.
