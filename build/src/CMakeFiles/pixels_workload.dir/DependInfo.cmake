
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cc" "src/CMakeFiles/pixels_workload.dir/workload/arrivals.cc.o" "gcc" "src/CMakeFiles/pixels_workload.dir/workload/arrivals.cc.o.d"
  "/root/repo/src/workload/loggen.cc" "src/CMakeFiles/pixels_workload.dir/workload/loggen.cc.o" "gcc" "src/CMakeFiles/pixels_workload.dir/workload/loggen.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/pixels_workload.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/pixels_workload.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pixels_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_format.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pixels_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
