# Empty compiler generated dependencies file for service_levels.
# This may be replaced when dependencies are built.
