file(REMOVE_RECURSE
  "CMakeFiles/service_levels.dir/service_levels.cpp.o"
  "CMakeFiles/service_levels.dir/service_levels.cpp.o.d"
  "service_levels"
  "service_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
