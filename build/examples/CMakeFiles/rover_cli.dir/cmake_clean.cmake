file(REMOVE_RECURSE
  "CMakeFiles/rover_cli.dir/rover_cli.cpp.o"
  "CMakeFiles/rover_cli.dir/rover_cli.cpp.o.d"
  "rover_cli"
  "rover_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rover_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
