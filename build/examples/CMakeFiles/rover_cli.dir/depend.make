# Empty dependencies file for rover_cli.
# This may be replaced when dependencies are built.
